#include "logic/fol.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/logging.h"

namespace reason {
namespace logic {

// ---------------------------------------------------------------------
// Terms
// ---------------------------------------------------------------------

Term
Term::var(std::string n)
{
    Term t;
    t.kind = Kind::Var;
    t.name = std::move(n);
    return t;
}

Term
Term::func(std::string n, std::vector<Term> a)
{
    Term t;
    t.kind = Kind::Func;
    t.name = std::move(n);
    t.args = std::move(a);
    return t;
}

bool
Term::operator==(const Term &o) const
{
    return kind == o.kind && name == o.name && args == o.args;
}

std::string
Term::toString() const
{
    if (isVar())
        return "?" + name;
    if (args.empty())
        return name;
    std::ostringstream os;
    os << name << "(";
    for (size_t i = 0; i < args.size(); ++i)
        os << (i ? "," : "") << args[i].toString();
    os << ")";
    return os.str();
}

Term
applySubst(const Term &t, const Substitution &s)
{
    if (t.isVar()) {
        auto it = s.find(t.name);
        if (it == s.end())
            return t;
        // Substitutions may chain (x -> y, y -> c); resolve recursively.
        return applySubst(it->second, s);
    }
    Term out = t;
    for (auto &arg : out.args)
        arg = applySubst(arg, s);
    return out;
}

namespace {

bool
occursIn(const std::string &var, const Term &t, const Substitution &s)
{
    if (t.isVar()) {
        if (t.name == var)
            return true;
        auto it = s.find(t.name);
        return it != s.end() && occursIn(var, it->second, s);
    }
    for (const auto &arg : t.args)
        if (occursIn(var, arg, s))
            return true;
    return false;
}

bool
unifyInto(const Term &a, const Term &b, Substitution &s)
{
    Term ra = applySubst(a, s);
    Term rb = applySubst(b, s);
    if (ra.isVar() && rb.isVar() && ra.name == rb.name)
        return true;
    if (ra.isVar()) {
        if (occursIn(ra.name, rb, s))
            return false;
        s[ra.name] = rb;
        return true;
    }
    if (rb.isVar()) {
        if (occursIn(rb.name, ra, s))
            return false;
        s[rb.name] = ra;
        return true;
    }
    if (ra.name != rb.name || ra.args.size() != rb.args.size())
        return false;
    for (size_t i = 0; i < ra.args.size(); ++i)
        if (!unifyInto(ra.args[i], rb.args[i], s))
            return false;
    return true;
}

} // namespace

std::optional<Substitution>
unify(const Term &a, const Term &b, Substitution seed)
{
    if (unifyInto(a, b, seed))
        return seed;
    return std::nullopt;
}

// ---------------------------------------------------------------------
// Literals and formulas
// ---------------------------------------------------------------------

FolLiteral
FolLiteral::negatedCopy() const
{
    FolLiteral l = *this;
    l.negated = !l.negated;
    return l;
}

bool
FolLiteral::operator==(const FolLiteral &o) const
{
    return negated == o.negated && pred == o.pred && args == o.args;
}

std::string
FolLiteral::toString() const
{
    std::ostringstream os;
    if (negated)
        os << "~";
    os << pred;
    if (!args.empty()) {
        os << "(";
        for (size_t i = 0; i < args.size(); ++i)
            os << (i ? "," : "") << args[i].toString();
        os << ")";
    }
    return os.str();
}

namespace {
FolPtr
make(FolFormula::Kind k, std::string name, std::vector<Term> args,
     FolPtr lhs, FolPtr rhs)
{
    auto f = std::make_shared<FolFormula>();
    f->kind = k;
    f->name = std::move(name);
    f->args = std::move(args);
    f->lhs = std::move(lhs);
    f->rhs = std::move(rhs);
    return f;
}
} // namespace

FolPtr
FolFormula::pred(std::string name, std::vector<Term> args)
{
    return make(Kind::Pred, std::move(name), std::move(args), nullptr,
                nullptr);
}

FolPtr
FolFormula::lnot(FolPtr f)
{
    return make(Kind::Not, "", {}, std::move(f), nullptr);
}

FolPtr
FolFormula::land(FolPtr a, FolPtr b)
{
    return make(Kind::And, "", {}, std::move(a), std::move(b));
}

FolPtr
FolFormula::lor(FolPtr a, FolPtr b)
{
    return make(Kind::Or, "", {}, std::move(a), std::move(b));
}

FolPtr
FolFormula::implies(FolPtr a, FolPtr b)
{
    return make(Kind::Implies, "", {}, std::move(a), std::move(b));
}

FolPtr
FolFormula::iff(FolPtr a, FolPtr b)
{
    return make(Kind::Iff, "", {}, std::move(a), std::move(b));
}

FolPtr
FolFormula::forall(std::string var, FolPtr body)
{
    return make(Kind::ForAll, std::move(var), {}, std::move(body),
                nullptr);
}

FolPtr
FolFormula::exists(std::string var, FolPtr body)
{
    return make(Kind::Exists, std::move(var), {}, std::move(body),
                nullptr);
}

std::string
FolFormula::toString() const
{
    switch (kind) {
      case Kind::Pred: {
        FolLiteral l{false, name, args};
        return l.toString();
      }
      case Kind::Not:
        return "~(" + lhs->toString() + ")";
      case Kind::And:
        return "(" + lhs->toString() + " & " + rhs->toString() + ")";
      case Kind::Or:
        return "(" + lhs->toString() + " | " + rhs->toString() + ")";
      case Kind::Implies:
        return "(" + lhs->toString() + " -> " + rhs->toString() + ")";
      case Kind::Iff:
        return "(" + lhs->toString() + " <-> " + rhs->toString() + ")";
      case Kind::ForAll:
        return "forall " + name + ". " + lhs->toString();
      case Kind::Exists:
        return "exists " + name + ". " + lhs->toString();
    }
    panic("unreachable formula kind");
}

// ---------------------------------------------------------------------
// Clausification
// ---------------------------------------------------------------------

namespace {

using Kind = FolFormula::Kind;

/** Rewrite -> and <-> into &, |, ~. */
FolPtr
eliminateArrows(const FolPtr &f)
{
    switch (f->kind) {
      case Kind::Pred:
        return f;
      case Kind::Not:
        return FolFormula::lnot(eliminateArrows(f->lhs));
      case Kind::And:
        return FolFormula::land(eliminateArrows(f->lhs),
                                eliminateArrows(f->rhs));
      case Kind::Or:
        return FolFormula::lor(eliminateArrows(f->lhs),
                               eliminateArrows(f->rhs));
      case Kind::Implies:
        return FolFormula::lor(
            FolFormula::lnot(eliminateArrows(f->lhs)),
            eliminateArrows(f->rhs));
      case Kind::Iff: {
        FolPtr a = eliminateArrows(f->lhs);
        FolPtr b = eliminateArrows(f->rhs);
        return FolFormula::land(
            FolFormula::lor(FolFormula::lnot(a), b),
            FolFormula::lor(FolFormula::lnot(b), a));
      }
      case Kind::ForAll:
        return FolFormula::forall(f->name, eliminateArrows(f->lhs));
      case Kind::Exists:
        return FolFormula::exists(f->name, eliminateArrows(f->lhs));
    }
    panic("unreachable");
}

/** Push negations down to predicates (negation normal form). */
FolPtr
toNnf(const FolPtr &f, bool negate_ctx)
{
    switch (f->kind) {
      case Kind::Pred: {
        FolPtr p = FolFormula::pred(f->name, f->args);
        return negate_ctx ? FolFormula::lnot(p) : p;
      }
      case Kind::Not:
        return toNnf(f->lhs, !negate_ctx);
      case Kind::And: {
        FolPtr a = toNnf(f->lhs, negate_ctx);
        FolPtr b = toNnf(f->rhs, negate_ctx);
        return negate_ctx ? FolFormula::lor(a, b)
                          : FolFormula::land(a, b);
      }
      case Kind::Or: {
        FolPtr a = toNnf(f->lhs, negate_ctx);
        FolPtr b = toNnf(f->rhs, negate_ctx);
        return negate_ctx ? FolFormula::land(a, b)
                          : FolFormula::lor(a, b);
      }
      case Kind::ForAll: {
        FolPtr body = toNnf(f->lhs, negate_ctx);
        return negate_ctx ? FolFormula::exists(f->name, body)
                          : FolFormula::forall(f->name, body);
      }
      case Kind::Exists: {
        FolPtr body = toNnf(f->lhs, negate_ctx);
        return negate_ctx ? FolFormula::forall(f->name, body)
                          : FolFormula::exists(f->name, body);
      }
      case Kind::Implies:
      case Kind::Iff:
        panic("arrows must be eliminated before NNF");
    }
    panic("unreachable");
}

struct SkolemState
{
    uint64_t nextVar = 0;
    uint64_t nextSkolem = 0;
};

Term
substTermVars(const Term &t, const std::map<std::string, Term> &map)
{
    if (t.isVar()) {
        auto it = map.find(t.name);
        return it == map.end() ? t : it->second;
    }
    Term out = t;
    for (auto &a : out.args)
        a = substTermVars(a, map);
    return out;
}

/**
 * Standardize apart + Skolemize in one NNF traversal.
 * universals: the universally quantified variables currently in scope.
 */
FolPtr
skolemize(const FolPtr &f, std::map<std::string, Term> env,
          std::vector<Term> universals, SkolemState &st)
{
    switch (f->kind) {
      case Kind::Pred: {
        std::vector<Term> args;
        args.reserve(f->args.size());
        for (const auto &a : f->args)
            args.push_back(substTermVars(a, env));
        return FolFormula::pred(f->name, std::move(args));
      }
      case Kind::Not:
        return FolFormula::lnot(
            skolemize(f->lhs, env, universals, st));
      case Kind::And:
        return FolFormula::land(
            skolemize(f->lhs, env, universals, st),
            skolemize(f->rhs, env, universals, st));
      case Kind::Or:
        return FolFormula::lor(
            skolemize(f->lhs, env, universals, st),
            skolemize(f->rhs, env, universals, st));
      case Kind::ForAll: {
        std::string fresh = "V" + std::to_string(st.nextVar++);
        env[f->name] = Term::var(fresh);
        universals.push_back(Term::var(fresh));
        FolPtr body = skolemize(f->lhs, env, universals, st);
        return FolFormula::forall(fresh, body);
      }
      case Kind::Exists: {
        std::string sk = "sk" + std::to_string(st.nextSkolem++);
        env[f->name] = Term::func(sk, universals);
        return skolemize(f->lhs, env, universals, st);
      }
      case Kind::Implies:
      case Kind::Iff:
        panic("arrows must be eliminated before skolemization");
    }
    panic("unreachable");
}

/** Drop universal quantifiers (all variables are implicitly universal). */
FolPtr
dropUniversals(const FolPtr &f)
{
    switch (f->kind) {
      case Kind::Pred:
        return f;
      case Kind::Not:
        return FolFormula::lnot(dropUniversals(f->lhs));
      case Kind::And:
        return FolFormula::land(dropUniversals(f->lhs),
                                dropUniversals(f->rhs));
      case Kind::Or:
        return FolFormula::lor(dropUniversals(f->lhs),
                               dropUniversals(f->rhs));
      case Kind::ForAll:
        return dropUniversals(f->lhs);
      default:
        panic("unexpected kind after skolemization");
    }
}

/** CNF of a quantifier-free NNF formula, as clause sets. */
std::vector<FolClause>
distribute(const FolPtr &f)
{
    switch (f->kind) {
      case Kind::Pred:
        return {{FolLiteral{false, f->name, f->args}}};
      case Kind::Not: {
        reasonAssert(f->lhs->kind == Kind::Pred,
                     "NNF negation must wrap a predicate");
        return {{FolLiteral{true, f->lhs->name, f->lhs->args}}};
      }
      case Kind::And: {
        auto a = distribute(f->lhs);
        auto b = distribute(f->rhs);
        a.insert(a.end(), b.begin(), b.end());
        return a;
      }
      case Kind::Or: {
        auto a = distribute(f->lhs);
        auto b = distribute(f->rhs);
        std::vector<FolClause> out;
        out.reserve(a.size() * b.size());
        for (const auto &ca : a) {
            for (const auto &cb : b) {
                FolClause merged = ca;
                merged.insert(merged.end(), cb.begin(), cb.end());
                out.push_back(std::move(merged));
            }
        }
        return out;
      }
      default:
        panic("unexpected kind in distribution");
    }
}

} // namespace

std::vector<FolClause>
clausify(const FolPtr &formula)
{
    SkolemState st;
    FolPtr f = eliminateArrows(formula);
    f = toNnf(f, false);
    f = skolemize(f, {}, {}, st);
    f = dropUniversals(f);
    auto clauses = distribute(f);
    // Deduplicate literals within each clause.
    for (auto &c : clauses) {
        FolClause dedup;
        for (const auto &l : c) {
            if (std::find(dedup.begin(), dedup.end(), l) == dedup.end())
                dedup.push_back(l);
        }
        c = std::move(dedup);
    }
    return clauses;
}

std::vector<FolClause>
clausify(const std::vector<FolPtr> &formulas)
{
    std::vector<FolClause> out;
    for (const auto &f : formulas) {
        auto cs = clausify(f);
        out.insert(out.end(), cs.begin(), cs.end());
    }
    return out;
}

// ---------------------------------------------------------------------
// Grounding
// ---------------------------------------------------------------------

Grounder::Grounder(std::vector<std::string> domain_constants)
    : domain_(std::move(domain_constants))
{
    reasonAssert(!domain_.empty(), "grounding needs a non-empty domain");
}

uint32_t
Grounder::atomVar(const std::string &pred,
                  const std::vector<Term> &ground_args)
{
    std::ostringstream key;
    key << pred;
    for (const auto &a : ground_args) {
        reasonAssert(!a.isVar() && a.args.empty(),
                     "atomVar needs ground constant arguments");
        key << "/" << a.name;
    }
    auto [it, inserted] =
        atomOfKey_.emplace(key.str(), static_cast<uint32_t>(names_.size()));
    if (inserted)
        names_.push_back(key.str());
    return it->second;
}

const std::string &
Grounder::atomName(uint32_t var) const
{
    return names_.at(var);
}

void
Grounder::groundClause(const FolClause &clause, CnfFormula &out)
{
    // Collect distinct variables.
    std::vector<std::string> vars;
    for (const auto &lit : clause) {
        for (const auto &t : lit.args) {
            if (t.isVar() &&
                std::find(vars.begin(), vars.end(), t.name) == vars.end())
                vars.push_back(t.name);
            reasonAssert(t.isVar() || t.args.empty(),
                         "grounder supports function-free clauses only");
        }
    }
    // Enumerate all assignments of domain constants to variables.
    std::vector<size_t> idx(vars.size(), 0);
    while (true) {
        Substitution s;
        for (size_t i = 0; i < vars.size(); ++i)
            s[vars[i]] = Term::constant(domain_[idx[i]]);
        Clause prop;
        for (const auto &lit : clause) {
            std::vector<Term> ground_args;
            ground_args.reserve(lit.args.size());
            for (const auto &t : lit.args)
                ground_args.push_back(applySubst(t, s));
            uint32_t v = atomVar(lit.pred, ground_args);
            prop.push_back(Lit::make(v, lit.negated));
        }
        out.ensureVars(static_cast<uint32_t>(names_.size()));
        out.addClause(std::move(prop));
        // Odometer increment.
        size_t d = 0;
        while (d < idx.size()) {
            if (++idx[d] < domain_.size())
                break;
            idx[d] = 0;
            ++d;
        }
        if (d == idx.size())
            break;
        if (vars.empty())
            break;
    }
}

CnfFormula
Grounder::ground(const std::vector<FolClause> &clauses)
{
    CnfFormula out;
    for (const auto &c : clauses)
        groundClause(c, out);
    out.ensureVars(static_cast<uint32_t>(names_.size()));
    return out;
}

// ---------------------------------------------------------------------
// Resolution
// ---------------------------------------------------------------------

namespace {

/** Rename all variables in a clause with a unique suffix. */
FolClause
freshen(const FolClause &c, uint64_t suffix)
{
    std::map<std::string, Term> map;
    std::set<std::string> vars;
    for (const auto &l : c)
        for (const auto &t : l.args)
            if (t.isVar())
                vars.insert(t.name);
    for (const auto &v : vars)
        map[v] = Term::var(v + "_r" + std::to_string(suffix));
    FolClause out = c;
    for (auto &l : out)
        for (auto &t : l.args)
            t = substTermVars(t, map);
    return out;
}

FolClause
applySubstClause(const FolClause &c, const Substitution &s)
{
    FolClause out = c;
    for (auto &l : out)
        for (auto &t : l.args)
            t = applySubst(t, s);
    // Remove duplicate literals produced by the substitution.
    FolClause dedup;
    for (const auto &l : out)
        if (std::find(dedup.begin(), dedup.end(), l) == dedup.end())
            dedup.push_back(l);
    return dedup;
}

std::string
clauseKey(const FolClause &c)
{
    std::vector<std::string> parts;
    parts.reserve(c.size());
    for (const auto &l : c)
        parts.push_back(l.toString());
    std::sort(parts.begin(), parts.end());
    std::string key;
    for (const auto &p : parts)
        key += p + ";";
    return key;
}

bool
isTautology(const FolClause &c)
{
    for (size_t i = 0; i < c.size(); ++i)
        for (size_t j = i + 1; j < c.size(); ++j)
            if (c[i].pred == c[j].pred && c[i].negated != c[j].negated &&
                c[i].args == c[j].args)
                return true;
    return false;
}

} // namespace

ResolutionResult
resolutionRefute(std::vector<FolClause> clauses, uint64_t max_steps)
{
    ResolutionResult res;
    std::set<std::string> seen;
    std::vector<FolClause> all;
    for (auto &c : clauses) {
        if (c.empty()) {
            res.proved = true;
            return res;
        }
        if (isTautology(c))
            continue;
        std::string key = clauseKey(c);
        if (seen.insert(key).second)
            all.push_back(std::move(c));
    }

    uint64_t rename_counter = 0;
    // Given-clause saturation: process pairs in insertion order.
    for (size_t i = 0; i < all.size(); ++i) {
        for (size_t j = 0; j < i; ++j) {
            if (res.resolutionSteps >= max_steps) {
                res.maxClauseSetSize = all.size();
                return res;
            }
            FolClause a = all[i];
            FolClause b = freshen(all[j], ++rename_counter);
            for (size_t la = 0; la < a.size(); ++la) {
                for (size_t lb = 0; lb < b.size(); ++lb) {
                    if (a[la].pred != b[lb].pred ||
                        a[la].negated == b[lb].negated ||
                        a[la].args.size() != b[lb].args.size())
                        continue;
                    ++res.resolutionSteps;
                    Substitution s;
                    bool ok = true;
                    for (size_t k = 0; k < a[la].args.size() && ok; ++k) {
                        auto u = unify(a[la].args[k], b[lb].args[k], s);
                        if (!u) {
                            ok = false;
                        } else {
                            s = std::move(*u);
                        }
                    }
                    if (!ok)
                        continue;
                    FolClause resolvent;
                    for (size_t k = 0; k < a.size(); ++k)
                        if (k != la)
                            resolvent.push_back(a[k]);
                    for (size_t k = 0; k < b.size(); ++k)
                        if (k != lb)
                            resolvent.push_back(b[k]);
                    resolvent = applySubstClause(resolvent, s);
                    ++res.generatedClauses;
                    if (resolvent.empty()) {
                        res.proved = true;
                        res.maxClauseSetSize = all.size();
                        return res;
                    }
                    if (isTautology(resolvent))
                        continue;
                    std::string key = clauseKey(resolvent);
                    if (seen.insert(key).second)
                        all.push_back(std::move(resolvent));
                }
            }
        }
    }
    res.saturated = true;
    res.maxClauseSetSize = all.size();
    return res;
}

ResolutionResult
resolutionProve(const std::vector<FolPtr> &axioms, const FolPtr &goal,
                uint64_t max_steps)
{
    std::vector<FolClause> clauses = clausify(axioms);
    auto negated_goal = clausify(FolFormula::lnot(goal));
    clauses.insert(clauses.end(), negated_goal.begin(),
                   negated_goal.end());
    return resolutionRefute(std::move(clauses), max_steps);
}

} // namespace logic
} // namespace reason
