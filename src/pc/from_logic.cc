#include "pc/from_logic.h"

#include <vector>

#include "util/logging.h"

namespace reason {
namespace pc {

using logic::DnnfGraph;
using logic::LitWeights;
using logic::NnfId;
using logic::NnfNode;
using logic::NnfType;

namespace {

/** Sentinel PC id for True-valued NNF nodes (empty scope). */
constexpr NodeId kUnitPc = kInvalidNode;

/** Vars in `parent` missing from `child` (both sorted). */
std::vector<uint32_t>
scopeGap(const std::vector<uint32_t> &parent,
         const std::vector<uint32_t> &child)
{
    std::vector<uint32_t> gap;
    size_t ci = 0;
    for (uint32_t v : parent) {
        while (ci < child.size() && child[ci] < v)
            ++ci;
        if (ci < child.size() && child[ci] == v)
            continue;
        gap.push_back(v);
    }
    return gap;
}

} // namespace

Circuit
fromDnnf(const DnnfGraph &graph, const LitWeights &weights)
{
    reasonAssert(graph.numVars() > 0, "circuit needs at least one variable");
    auto scope = graph.scopes();
    auto value = graph.weightedValues(weights);
    if (value[graph.root()] <= 0.0)
        fatal("fromDnnf: formula is unsatisfiable under the weights "
              "(WMC = 0); the conditioned distribution does not exist");

    Circuit circuit(graph.numVars(), 2);

    // Marginal leaf P(v) ∝ (neg, pos), created on demand per variable.
    std::vector<NodeId> marginal(graph.numVars(), kInvalidNode);
    auto marginalLeaf = [&](uint32_t var) {
        if (marginal[var] == kInvalidNode)
            marginal[var] = circuit.addLeaf(
                var, {weights.neg[var], weights.pos[var]});
        return marginal[var];
    };
    // Product of `base` (optional) with marginal leaves over `gap`.
    auto padded = [&](NodeId base, const std::vector<uint32_t> &gap) {
        std::vector<NodeId> parts;
        if (base != kUnitPc)
            parts.push_back(base);
        for (uint32_t v : gap)
            parts.push_back(marginalLeaf(v));
        reasonAssert(!parts.empty(), "padding an empty scope");
        if (parts.size() == 1)
            return parts[0];
        return circuit.addProduct(std::move(parts));
    };

    // Only NNF nodes reachable from the root become circuit nodes.
    std::vector<bool> reachable(graph.numNodes(), false);
    reachable[graph.root()] = true;
    for (size_t i = graph.numNodes(); i-- > 0;) {
        if (!reachable[i])
            continue;
        for (NnfId c : graph.node(NnfId(i)).children)
            reachable[c] = true;
    }

    std::vector<NodeId> pcId(graph.numNodes(), kInvalidNode);
    for (size_t i = 0; i < graph.numNodes(); ++i) {
        if (!reachable[i])
            continue;
        const NnfNode &node = graph.node(NnfId(i));
        switch (node.type) {
          case NnfType::True:
            pcId[i] = kUnitPc;
            break;
          case NnfType::False:
            // The compiler folds False out of reachable positions except
            // a root-level contradiction, which the WMC guard rejected.
            panic("False node reachable in satisfiable d-DNNF");
            break;
          case NnfType::Lit: {
            uint32_t var = node.lit.var();
            std::vector<double> dist(2, 0.0);
            dist[node.lit.negated() ? 0 : 1] = 1.0;
            pcId[i] = circuit.addLeaf(var, std::move(dist));
            break;
          }
          case NnfType::And: {
            std::vector<NodeId> parts;
            for (NnfId c : node.children)
                if (pcId[c] != kUnitPc)
                    parts.push_back(pcId[c]);
            if (parts.empty())
                pcId[i] = kUnitPc;
            else if (parts.size() == 1)
                pcId[i] = parts[0];
            else
                pcId[i] = circuit.addProduct(std::move(parts));
            break;
          }
          case NnfType::Or: {
            std::vector<NodeId> children;
            std::vector<double> mix;
            for (NnfId c : node.children) {
                auto gap = scopeGap(scope[i], scope[c]);
                double w = value[c];
                for (uint32_t v : gap)
                    w *= weights.pos[v] + weights.neg[v];
                if (w <= 0.0)
                    continue; // dead branch under these weights
                children.push_back(padded(pcId[c], gap));
                mix.push_back(w);
            }
            reasonAssert(!children.empty(), "Or with no live branch");
            if (children.size() == 1)
                pcId[i] = children[0];
            else
                pcId[i] = circuit.addSum(std::move(children),
                                         std::move(mix));
            break;
          }
        }
    }

    // Pad the root out to the full variable set.
    std::vector<uint32_t> all_gap;
    {
        const auto &rs = scope[graph.root()];
        size_t si = 0;
        for (uint32_t v = 0; v < graph.numVars(); ++v) {
            while (si < rs.size() && rs[si] < v)
                ++si;
            if (si < rs.size() && rs[si] == v)
                continue;
            all_gap.push_back(v);
        }
    }
    NodeId root = padded(pcId[graph.root()], all_gap);
    circuit.markRoot(root);
    circuit.validate();
    return circuit;
}

Circuit
compileCnf(const logic::CnfFormula &formula)
{
    return compileCnf(formula, LitWeights::uniform(formula.numVars()));
}

Circuit
compileCnf(const logic::CnfFormula &formula, const LitWeights &weights)
{
    return fromDnnf(logic::compileToDnnf(formula), weights);
}

} // namespace pc
} // namespace reason
