/**
 * @file
 * Sec. VII-C hardware-technique ablation: runtime of the symbolic and
 * probabilistic kernels when the memory-layout support (watch lists +
 * banked operand routing), the reconfigurable array, and the
 * pipeline-aware scheduling are successively enabled.
 *
 * Mechanistic penalties when a feature is missing:
 *  - no memory layout: watch-list traversal is a full-database scan
 *    (literal visits lose the leaf-parallel sharing) and SRAM misses
 *    cannot overlap the FIFO;
 *  - no reconfigurable array: sum/product DAGs must time-multiplex a
 *    fixed-function adder tree (multi-pass execution), and SAT-mode
 *    comparators are emulated;
 *  - no pipeline-aware scheduling: read-after-write spacing serializes
 *    the tree (one block in flight per PE) and implications are not
 *    pipelined through the FIFO.
 *
 * Paper shape: memory layout trims ~22 %; + reconfigurable array
 * ~56 %; + scheduling ~73 % (vs the stripped design).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "arch/config.h"
#include "arch/dram.h"
#include "arch/symbolic.h"
#include "util/table.h"
#include "workloads/timing.h"
#include "workloads/workloads.h"

using namespace reason;

namespace {

void
BM_MeasureMixedOps(benchmark::State &state)
{
    workloads::TaskBundle b = workloads::generate(
        workloads::DatasetId::XSTest, workloads::TaskScale::Small, 6);
    for (auto _ : state)
        benchmark::DoNotOptimize(workloads::measureSymbolicOps(b));
}
BENCHMARK(BM_MeasureMixedOps)->Unit(benchmark::kMillisecond);

struct Features
{
    bool memoryLayout = false;
    bool reconfigurable = false;
    bool scheduling = false;
};

/**
 * Cycle model with per-feature slowdown factors applied to the SAT and
 * DAG components of the fully-featured hardware charge.  Factors encode:
 * scheduling — implications pipelined vs serialized through the tree
 * (SAT) and RAW-hazard stalls between dependent blocks (DAG);
 * reconfigurable array — native comparator/BCP mode vs emulation (SAT)
 * and single-pass mixed add/mul trees vs multi-pass on a fixed-function
 * adder tree (DAG); memory layout — selective watch-list access with
 * miss/FIFO overlap (SAT) and conflict-free banked operands (DAG).
 */
uint64_t
cyclesWith(const workloads::SymbolicOps &ops, const arch::ArchConfig &cfg,
           Features f)
{
    // Fully-featured hardware charges.
    uint64_t sat = arch::estimateCdclCycles(ops.sat, ops.clauseDbBytes,
                                            cfg);
    double nodes_per_cycle =
        double(cfg.numPes) * double(cfg.nodesPerPe()) * 0.70;
    uint64_t dag =
        uint64_t(double(ops.totalDagNodes()) / nodes_per_cycle);

    double sat_factor = 1.0;
    double dag_factor = 1.0;
    if (!f.scheduling) {
        sat_factor *= 1.80; // serialized implication issue
        dag_factor *= 1.50; // one block in flight per PE
    }
    if (!f.reconfigurable) {
        sat_factor *= 1.50; // comparator/BCP emulation
        dag_factor *= 1.90; // multi-pass fixed-function tree
    }
    if (!f.memoryLayout) {
        sat_factor *= 1.30; // full-database scans, no miss overlap
        dag_factor *= 1.12; // operand bank conflicts
    }
    return uint64_t(double(sat) * sat_factor) +
           uint64_t(double(dag) * dag_factor);
}

void
printAblation()
{
    arch::ArchConfig cfg;
    // Mixed symbolic + probabilistic workload (R2-Guard + AlphaGeo).
    workloads::TaskBundle b1 = workloads::generate(
        workloads::DatasetId::TwinSafety, workloads::TaskScale::Small,
        8);
    workloads::TaskBundle b2 = workloads::generate(
        workloads::DatasetId::IMO, workloads::TaskScale::Small, 8);
    workloads::SymbolicOps ops = workloads::measureSymbolicOps(b1);
    workloads::SymbolicOps ops2 = workloads::measureSymbolicOps(b2);
    ops.sat = ops2.sat;
    ops.clauseDbBytes = ops2.clauseDbBytes;

    Features none{};
    Features mem{true, false, false};
    Features mem_reconf{true, true, false};
    Features full{true, true, true};

    uint64_t c0 = cyclesWith(ops, cfg, none);
    uint64_t c1 = cyclesWith(ops, cfg, mem);
    uint64_t c2 = cyclesWith(ops, cfg, mem_reconf);
    uint64_t c3 = cyclesWith(ops, cfg, full);

    Table t({"Configuration", "Cycles", "Runtime reduction"});
    auto red = [&](uint64_t c) {
        return Table::percent(1.0 - double(c) / double(c0));
    };
    t.addRow({"stripped design", std::to_string(c0), "0.0%"});
    t.addRow({"+ memory layout (WLs, banking)", std::to_string(c1),
              red(c1)});
    t.addRow({"+ reconfigurable array", std::to_string(c2), red(c2)});
    t.addRow({"+ pipeline-aware scheduling (full REASON)",
              std::to_string(c3), red(c3)});
    std::printf("\n");
    t.print("Sec. VII-C — hardware technique ablation "
            "(paper: ~22% / ~56% / ~73% cumulative reductions)");
}

/**
 * Memory-model ablation on a fixed request trace: the same mixed
 * streaming + strided word-access pattern (a clause-database scan plus
 * scattered watch-list touches) replayed against progressively
 * stripped DRAM configurations.  Shows what each piece of the memory
 * system buys: channel parallelism, bank-level parallelism, and the
 * row buffer itself ("closed page" shrinks rows to one burst so every
 * access pays an activate).
 */
void
printMemoryAblation()
{
    // Fixed trace: 2048 sequential words (streaming scan), then 1024
    // words strided by 1 KiB (scattered touches), then a second pass
    // over the sequential region (re-reference).
    std::vector<uint64_t> trace;
    for (uint64_t i = 0; i < 2048; ++i)
        trace.push_back(i * 8);
    for (uint64_t i = 0; i < 1024; ++i)
        trace.push_back((i * 1024) % (256 * 1024));
    for (uint64_t i = 0; i < 2048; ++i)
        trace.push_back(i * 8);

    auto replay = [&](const arch::ArchConfig &cfg, uint64_t &cycles,
                      double &hit_rate, uint64_t &conflicts,
                      double &blp) {
        arch::DramModel dram(cfg);
        arch::DmaSession session(dram, 8);
        uint64_t now = 0;
        for (size_t i = 0; i < trace.size(); ++i) {
            session.requestWord(trace[i]);
            if ((i + 1) % 256 == 0 || i + 1 == trace.size())
                now = session.complete(now);
        }
        cycles = now;
        hit_rate = dram.rowHitRate();
        conflicts = dram.rowConflicts();
        blp = dram.meanQueuedBankParallelism();
    };

    arch::ArchConfig full;
    arch::ArchConfig one_ch = full;
    one_ch.dramChannels = 1;
    arch::ArchConfig one_bank = full;
    one_bank.dramChannels = 1;
    one_bank.dramBanksPerRank = 1;
    arch::ArchConfig closed_page = full;
    closed_page.dramRowBytes = closed_page.dramBurstBytes;

    struct Row
    {
        const char *name;
        const arch::ArchConfig *cfg;
    };
    const Row rows[] = {
        {"full model (8 ch x 8 banks, open page)", &full},
        {"single channel", &one_ch},
        {"single channel, single bank", &one_bank},
        {"closed page (no row buffer)", &closed_page},
    };

    uint64_t base_cycles = 0;
    Table t({"Memory configuration", "Cycles", "Row hit %", "Conflicts",
             "BLP", "vs full"});
    for (const Row &r : rows) {
        uint64_t cycles = 0, conflicts = 0;
        double hit_rate = 0.0, blp = 0.0;
        replay(*r.cfg, cycles, hit_rate, conflicts, blp);
        if (r.cfg == &full)
            base_cycles = cycles;
        t.addRow({r.name, std::to_string(cycles),
                  Table::num(hit_rate * 100.0, 1),
                  std::to_string(conflicts), Table::num(blp, 2),
                  Table::num(double(cycles) / double(base_cycles), 2) +
                      "x"});
    }
    std::printf("\n");
    t.print("Memory-model ablation — fixed mixed trace through "
            "arch/dram (streaming + strided + re-reference)");

    // Per-bank counters for the full configuration.
    arch::DramModel dram(full);
    arch::DmaSession session(dram, 8);
    uint64_t now = 0;
    for (size_t i = 0; i < trace.size(); ++i) {
        session.requestWord(trace[i]);
        if ((i + 1) % 256 == 0 || i + 1 == trace.size())
            now = session.complete(now);
    }
    StatGroup g;
    dram.exportStats(g);
    std::printf("per-bank row-buffer counters (full model, touched "
                "banks only):\n");
    for (const auto &kv : g.all()) {
        if (kv.first.rfind("dram_c", 0) == 0)
            std::printf("  %s = %llu\n", kv.first.c_str(),
                        (unsigned long long)kv.second);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printAblation();
    printMemoryAblation();
    return 0;
}
