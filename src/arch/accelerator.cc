#include "arch/accelerator.h"

#include <algorithm>
#include <unordered_map>

#include "arch/dram.h"
#include "util/logging.h"
#include "util/numeric.h"

namespace reason {
namespace arch {

Accelerator::Accelerator(const ArchConfig &config) : config_(config)
{
    reasonAssert(config.numPes >= 1, "need at least one PE");
    reasonAssert(config.numBanks >= config.numPes,
                 "each PE needs an output bank");
}

double
Accelerator::evalBlock(const compiler::Program &program,
                       const compiler::Block &blk,
                       const std::vector<double> &regfile,
                       StatGroup &events) const
{
    const uint32_t depth = program.treeDepth;
    const size_t leaves = program.leavesPerPe();

    // Leaf level: fetch + affine transform.
    std::vector<double> level_vals(leaves, 0.0);
    for (size_t s = 0; s < leaves; ++s) {
        const compiler::OperandRef &op = blk.operands[s];
        if (!op.valid)
            continue;
        double x = 0.0;
        if (op.fetch) {
            x = regfile[size_t(op.bank) * stride_ + op.reg];
            events.inc("regfile_reads");
        }
        level_vals[s] = op.a * x + op.b;
        if (op.a != 0.0 && op.a != 1.0)
            events.inc("leaf_mul_ops");
        if (op.b != 0.0)
            events.inc("leaf_add_ops");
    }

    // Tree levels, bottom (level depth-1) to root (level 0).
    std::vector<double> cur = std::move(level_vals);
    for (uint32_t lvl = depth; lvl-- > 0;) {
        size_t width = size_t(1) << lvl;
        std::vector<double> next(width, 0.0);
        size_t base = (size_t(1) << lvl) - 1;
        for (size_t p = 0; p < width; ++p) {
            compiler::TreeOp op = blk.nodeOps[base + p];
            double l = cur[2 * p];
            double r = cur[2 * p + 1];
            switch (op) {
              case compiler::TreeOp::Add:
                next[p] = l + r;
                events.inc("tree_add_ops");
                break;
              case compiler::TreeOp::Mul:
                next[p] = l * r;
                events.inc("tree_mul_ops");
                break;
              case compiler::TreeOp::Max:
                next[p] = std::max(l, r);
                events.inc("tree_cmp_ops");
                break;
              case compiler::TreeOp::Min:
                next[p] = std::min(l, r);
                events.inc("tree_cmp_ops");
                break;
              case compiler::TreeOp::PassLeft:
                next[p] = l;
                break;
              case compiler::TreeOp::Nop:
                next[p] = 0.0;
                break;
            }
        }
        cur = std::move(next);
    }
    return cur[0];
}

ExecutionResult
Accelerator::run(const compiler::Program &program,
                 const std::vector<double> &inputs, bool preloaded) const
{
    ExecutionResult res;
    reasonAssert(program.numPes == config_.numPes &&
                     program.treeDepth == config_.treeDepth,
                 "program compiled for a different configuration");

    // Shadow register file: (bank, reg) -> value, addressed densely with
    // a per-program stride; spills beyond R still hold their value (the
    // scratchpad backs them) but pay timing.
    size_t max_reg = 1;
    for (const auto &blk : program.blocks) {
        max_reg = std::max<size_t>(max_reg, size_t(blk.dest.reg) + 1);
        for (const auto &op : blk.operands)
            if (op.valid && op.fetch)
                max_reg = std::max<size_t>(max_reg, size_t(op.reg) + 1);
    }
    for (const auto &p : program.inputs)
        max_reg = std::max<size_t>(max_reg, size_t(p.reg) + 1);
    const size_t stride = max_reg;
    std::vector<double> regfile(size_t(config_.numBanks) * stride, 0.0);

    // Input preload: DMA from the shared scratchpad into banks.
    uint64_t input_ready_cycle = 0;
    for (const auto &p : program.inputs) {
        reasonAssert(p.inputTag < inputs.size(),
                     "missing external input value");
        regfile[size_t(p.bank) * stride + p.reg] = inputs[p.inputTag];
    }
    if (!preloaded && !program.inputs.empty()) {
        uint64_t words = program.inputs.size();
        if (config_.dramModelEnabled) {
            // Program-session preload through the DRAM timing model:
            // the session coalesces the input words (laid out by input
            // tag in scratchpad DRAM) into same-row burst trains, so
            // sequential tag ranges become row hits striped across
            // channels.
            DramModel dram(config_);
            DmaSession session(dram, 8);
            for (const auto &p : program.inputs)
                session.requestWord(uint64_t(p.inputTag) * 8);
            input_ready_cycle = session.complete(0);
            dram.exportStats(res.events);
            res.events.inc("dma_session_words", session.wordsRequested());
            res.events.inc("dma_session_runs", session.runsIssued());
        } else {
            // Legacy flat model: fixed latency plus a wide DMA moving
            // `numBanks` words per cycle from the scratchpad.
            input_ready_cycle =
                config_.dmaLatencyCycles +
                ceilDiv<uint64_t>(words, config_.numBanks);
        }
        res.events.inc("dma_bytes", words * 8);
        res.dmaStallCycles = input_ready_cycle;
    }

    // Replay the schedule in order, per PE, enforcing hazards.
    const uint32_t latency = config_.pipelineLatency();
    std::vector<uint64_t> pe_free(config_.numPes, input_ready_cycle);
    std::vector<uint64_t> value_ready(program.blocks.size(), 0);
    // Bank read-port usage per cycle: bank -> (cycle -> uses).
    std::vector<std::unordered_map<uint64_t, uint32_t>> bank_use(
        config_.numBanks);
    // Producer block of each (bank, reg) destination.
    std::unordered_map<uint64_t, uint32_t> producer_of;
    for (uint32_t b = 0; b < program.blocks.size(); ++b) {
        const auto &dest = program.blocks[b].dest;
        producer_of[uint64_t(dest.bank) << 32 | dest.reg] = b;
    }

    res.blockValues.assign(program.blocks.size(), 0.0);
    uint64_t last_complete = input_ready_cycle;
    uint64_t total_issue_opportunities = 0;
    uint64_t issued_blocks = 0;

    for (const auto &slot : program.schedule) {
        const compiler::Block &blk = program.blocks[slot.block];

        // Earliest cycle data dependencies allow.
        uint64_t ready = pe_free[slot.pe];
        for (uint32_t dep : blk.depends)
            ready = std::max(ready, value_ready[dep]);
        ready = std::max(ready, input_ready_cycle);

        // Structural hazard: register-bank read ports.  Retry until all
        // operand banks have a free port in the same cycle.
        uint64_t t = ready;
        while (true) {
            // Count reads per bank at cycle t.
            std::unordered_map<uint32_t, uint32_t> need;
            for (const auto &op : blk.operands)
                if (op.valid && op.fetch)
                    ++need[op.bank];
            bool ok = true;
            for (const auto &kv : need) {
                uint32_t in_use = 0;
                auto it = bank_use[kv.first].find(t);
                if (it != bank_use[kv.first].end())
                    in_use = it->second;
                if (in_use >= config_.bankReadPorts) {
                    ok = false;
                    break;
                }
            }
            if (ok) {
                // Multi-read serialization: a block needing k reads from
                // one bank occupies ceil(k/ports) consecutive cycles.
                uint64_t extra = 0;
                for (const auto &kv : need) {
                    uint64_t span = ceilDiv<uint64_t>(
                        kv.second, config_.bankReadPorts);
                    extra = std::max<uint64_t>(extra, span - 1);
                    for (uint64_t c = 0; c < span; ++c)
                        bank_use[kv.first][t + c] +=
                            std::min<uint32_t>(kv.second,
                                               config_.bankReadPorts);
                }
                res.bankStallCycles += extra;
                t += extra; // issue completes after serialized reads
                break;
            }
            ++t;
            ++res.bankStallCycles;
        }

        if (t > pe_free[slot.pe])
            res.idlePeCycles += t - pe_free[slot.pe];
        total_issue_opportunities += 1;

        // Execute functionally.
        stride_ = stride;
        res.blockValues[slot.block] =
            evalBlock(program, blk, regfile, res.events);
        const auto &dest = blk.dest;
        regfile[size_t(dest.bank) * stride + dest.reg] =
            res.blockValues[slot.block];
        res.events.inc("regfile_writes");
        res.events.inc("blocks_executed");

        // Spill timing: destinations beyond R pay a scratchpad write
        // (one extra cycle before the value is consumable).
        uint64_t spill_penalty = 0;
        if (dest.reg >= config_.regsPerBank) {
            res.events.inc("spill_writes");
            res.events.inc("sram_accesses");
            spill_penalty = 2;
        }

        uint64_t done = t + latency + spill_penalty;
        value_ready[slot.block] = done;
        pe_free[slot.pe] = t + 1; // pipelined: next issue next cycle
        last_complete = std::max(last_complete, done);
        ++issued_blocks;
    }

    res.cycles = last_complete;
    res.rootValue = res.blockValues.empty()
                        ? 0.0
                        : res.blockValues[program.rootBlock];
    double busy = static_cast<double>(issued_blocks);
    double capacity = static_cast<double>(last_complete) *
                      static_cast<double>(config_.numPes);
    res.peUtilization = capacity > 0.0 ? busy / capacity : 0.0;
    res.events.inc("cycles", res.cycles);
    (void)total_issue_opportunities;
    return res;
}

} // namespace arch
} // namespace reason
