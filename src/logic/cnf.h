/**
 * @file
 * Propositional CNF representation: literals, clauses, formulas, DIMACS
 * input/output, and random instance generation used across the repository.
 *
 * Encoding follows the MiniSat convention: a variable is an index in
 * [0, numVars); a literal packs variable and sign as 2*var + (negated?1:0).
 */

#ifndef REASON_LOGIC_CNF_H
#define REASON_LOGIC_CNF_H

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace reason {

class Rng;

namespace logic {

/** Packed literal: 2*var for positive, 2*var+1 for negated. */
class Lit
{
  public:
    Lit() : code_(~0u) {}

    /** Build from variable index and sign (sign=true means negated). */
    static Lit make(uint32_t var, bool negated)
    {
        return Lit((var << 1) | (negated ? 1u : 0u));
    }

    /** Build from a DIMACS-style signed integer (1-based, nonzero). */
    static Lit fromDimacs(int64_t d);

    uint32_t var() const { return code_ >> 1; }
    bool negated() const { return code_ & 1u; }
    uint32_t code() const { return code_; }
    bool valid() const { return code_ != ~0u; }

    /** Complementary literal. */
    Lit operator~() const { return Lit(code_ ^ 1u); }

    bool operator==(const Lit &o) const { return code_ == o.code_; }
    bool operator!=(const Lit &o) const { return code_ != o.code_; }
    bool operator<(const Lit &o) const { return code_ < o.code_; }

    /** DIMACS-style signed integer (1-based). */
    int64_t toDimacs() const;

    std::string toString() const;

  private:
    explicit Lit(uint32_t code) : code_(code) {}
    uint32_t code_;
};

/** Truth value of a variable or literal in a partial assignment. */
enum class LBool : uint8_t { False = 0, True = 1, Undef = 2 };

/** Negate an LBool, leaving Undef fixed. */
inline LBool
negate(LBool v)
{
    if (v == LBool::Undef)
        return v;
    return v == LBool::True ? LBool::False : LBool::True;
}

/** A disjunction of literals. */
using Clause = std::vector<Lit>;

/**
 * CNF formula: conjunction of clauses over numVars variables.
 */
class CnfFormula
{
  public:
    CnfFormula() = default;
    explicit CnfFormula(uint32_t num_vars) : numVars_(num_vars) {}

    uint32_t numVars() const { return numVars_; }
    size_t numClauses() const { return clauses_.size(); }

    /** Total number of literal occurrences across all clauses. */
    size_t numLiterals() const;

    const std::vector<Clause> &clauses() const { return clauses_; }
    const Clause &clause(size_t i) const { return clauses_.at(i); }

    /** Ensure at least n variables exist. */
    void ensureVars(uint32_t n);

    /** Add a clause; extends the variable count if needed. */
    void addClause(Clause c);

    /** Convenience for small clauses. */
    void addClause(std::initializer_list<int64_t> dimacs_lits);

    /**
     * Evaluate under a complete assignment (index = var).
     * @return true iff every clause has a satisfied literal.
     */
    bool evaluate(const std::vector<bool> &assignment) const;

    /**
     * Exhaustive satisfiability check, for testing only.
     * @param model receives a satisfying assignment when SAT.
     * @return true iff satisfiable.  Requires numVars() <= 24.
     */
    bool bruteForceSat(std::vector<bool> *model = nullptr) const;

    /** Count satisfying assignments exhaustively (numVars() <= 24). */
    uint64_t bruteForceCountModels() const;

    /** Serialize to DIMACS CNF format. */
    std::string toDimacs() const;

    /** Parse DIMACS CNF text; fatal() on malformed input. */
    static CnfFormula parseDimacs(const std::string &text);

  private:
    uint32_t numVars_ = 0;
    std::vector<Clause> clauses_;
};

/**
 * Random k-SAT instance with the given clause/variable ratio.
 * Clauses have distinct variables; duplicate clauses are permitted, as in
 * the standard fixed-clause-length model.
 */
CnfFormula randomKSat(Rng &rng, uint32_t num_vars, uint32_t num_clauses,
                      uint32_t k = 3);

/**
 * Random satisfiable k-SAT instance: a hidden assignment is drawn first and
 * every clause is forced to contain at least one literal it satisfies.
 */
CnfFormula plantedKSat(Rng &rng, uint32_t num_vars, uint32_t num_clauses,
                       uint32_t k = 3,
                       std::vector<bool> *hidden = nullptr);

/**
 * Planted k-SAT against a *given* hidden assignment, so multiple clause
 * groups can be planted consistently into one satisfiable formula.
 */
CnfFormula plantedKSatWithModel(Rng &rng, const std::vector<bool> &model,
                                uint32_t num_clauses, uint32_t k);

/**
 * Pigeonhole principle instance PHP(holes+1, holes): unsatisfiable and
 * exponentially hard for resolution; exercises conflict analysis.
 */
CnfFormula pigeonhole(uint32_t holes);

} // namespace logic
} // namespace reason

#endif // REASON_LOGIC_CNF_H
