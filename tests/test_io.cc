/**
 * @file
 * Tests for serialization: d-DNNF c2d `.nnf` round trips (structure,
 * model counts, weighted counts), probabilistic-circuit rpc text round
 * trips (structure and likelihoods), and malformed-input rejection.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "logic/cnf.h"
#include "logic/knowledge.h"
#include "logic/nnf_io.h"
#include "pc/from_logic.h"
#include "pc/io.h"
#include "pc/pc.h"
#include "util/rng.h"

using namespace reason;
using namespace reason::logic;

class NnfIoSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(NnfIoSweep, C2dRoundTripPreservesSemantics)
{
    Rng rng(GetParam());
    CnfFormula f = randomKSat(rng, 10, 32, 3);
    DnnfGraph g = compileToDnnf(f);

    std::string text = toC2dFormat(g);
    DnnfGraph h = parseC2dFormat(text);
    h.validate();

    // Export drops unreachable (hash-consed but unused) nodes.
    EXPECT_LE(h.numNodes(), g.numNodes());
    EXPECT_EQ(h.numVars(), g.numVars());
    EXPECT_DOUBLE_EQ(h.modelCount(), g.modelCount());

    LitWeights w = LitWeights::random(rng, 10);
    EXPECT_DOUBLE_EQ(h.wmc(w), g.wmc(w));

    for (int trial = 0; trial < 16; ++trial) {
        std::vector<bool> x(10);
        for (uint32_t v = 0; v < 10; ++v)
            x[v] = rng.bernoulli(0.5);
        EXPECT_EQ(h.isModel(x), g.isModel(x));
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, NnfIoSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(NnfIo, TrivialGraphs)
{
    CnfFormula empty(3);
    DnnfGraph g = parseC2dFormat(toC2dFormat(compileToDnnf(empty)));
    EXPECT_DOUBLE_EQ(g.modelCount(), 8.0);

    CnfFormula contra(2);
    contra.addClause({1});
    contra.addClause({-1});
    DnnfGraph h = parseC2dFormat(toC2dFormat(compileToDnnf(contra)));
    EXPECT_DOUBLE_EQ(h.modelCount(), 0.0);
}

TEST(NnfIo, HeaderCountsMatchBody)
{
    CnfFormula f(2);
    f.addClause({1, 2});
    DnnfGraph g = compileToDnnf(f);
    std::string text = toC2dFormat(g);
    DnnfGraph h = parseC2dFormat(text);
    std::string expected = "nnf " + std::to_string(h.numNodes()) + " " +
                           std::to_string(h.numEdges()) + " 2";
    EXPECT_EQ(text.substr(0, expected.size()), expected);
}

TEST(NnfIo, RejectsMalformedInput)
{
    EXPECT_DEATH(parseC2dFormat("garbage"), "header");
    EXPECT_DEATH(parseC2dFormat("nnf 1 0 2\nX 1"), "unknown node tag");
    EXPECT_DEATH(parseC2dFormat("nnf 2 1 2\nL 1\nA 1 5"),
                 "bad child reference");
    EXPECT_DEATH(parseC2dFormat("nnf 3 0 2\nL 1"), "declared");
}

// ---------------------------------------------------------------------------
// Probabilistic-circuit rpc text format
// ---------------------------------------------------------------------------

class PcIoSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(PcIoSweep, RoundTripPreservesLikelihoods)
{
    Rng rng(GetParam());
    uint32_t arity = 2 + GetParam() % 3;
    pc::Circuit c = pc::randomCircuit(rng, 7, arity, 2, 3);

    pc::Circuit d = pc::parseText(pc::toText(c));
    EXPECT_EQ(d.numNodes(), c.numNodes());
    EXPECT_EQ(d.numEdges(), c.numEdges());
    EXPECT_EQ(d.numVars(), c.numVars());
    EXPECT_EQ(d.arity(), c.arity());
    EXPECT_EQ(d.isSmoothAndDecomposable(), c.isSmoothAndDecomposable());

    for (int trial = 0; trial < 24; ++trial) {
        pc::Assignment x(7);
        for (auto &v : x) {
            v = uint32_t(rng.uniformInt(0, arity));
            if (v == arity)
                v = pc::kMissing; // exercise marginalized slots too
        }
        EXPECT_NEAR(d.logLikelihood(x), c.logLikelihood(x), 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PcIoSweep,
                         ::testing::Values(10, 11, 12, 13, 14, 15));

TEST(PcIo, CompiledGuardCircuitRoundTrips)
{
    Rng rng(9);
    CnfFormula rules = plantedKSat(rng, 8, 18, 3);
    pc::Circuit c = pc::compileCnf(rules, LitWeights::random(rng, 8));
    pc::Circuit d = pc::parseText(pc::toText(c));
    pc::Assignment q(8, pc::kMissing);
    q[3] = 1;
    EXPECT_NEAR(d.logLikelihood(q), c.logLikelihood(q), 1e-12);
}

TEST(PcIo, RejectsMalformedInput)
{
    EXPECT_DEATH(pc::parseText("spn 1"), "header");
    EXPECT_DEATH(pc::parseText("rpc 1\nvars 0 arity 2\nroot 0"),
                 "dimension");
    EXPECT_DEATH(pc::parseText("rpc 1\nvars 2 arity 2\nl 5 0.5 0.5\n"
                               "root 0"),
                 "leaf variable");
    EXPECT_DEATH(pc::parseText("rpc 1\nvars 2 arity 2\nl 0 0.5 0.5\n"
                               "p 1 7\nroot 1"),
                 "child reference");
    EXPECT_DEATH(pc::parseText("rpc 1\nvars 2 arity 2\nl 0 0.5 0.5\n"),
                 "missing root");
}

TEST(PcIo, TextIsHumanReadable)
{
    pc::Circuit c(2, 2);
    auto l0 = c.addLeaf(0, {0.25, 0.75});
    auto l1 = c.addLeaf(1, {0.5, 0.5});
    c.markRoot(c.addProduct({l0, l1}));
    std::string text = pc::toText(c);
    EXPECT_NE(text.find("rpc 1"), std::string::npos);
    EXPECT_NE(text.find("vars 2 arity 2"), std::string::npos);
    EXPECT_NE(text.find("l 0 0.25 0.75"), std::string::npos);
    EXPECT_NE(text.find("p 2 0 1"), std::string::npos);
    EXPECT_NE(text.find("root 2"), std::string::npos);
}
