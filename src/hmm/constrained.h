/**
 * @file
 * Constrained and k-best HMM decoding: the Ctrl-G / GeLaTo inference
 * patterns (Table I) where text infilling must honor hard keyword
 * constraints while staying probable under the sequence model.
 *
 * Constraints pin or forbid hidden states at given positions; decoding
 * maximizes path probability subject to them.  k-best decoding returns
 * the top alternatives (candidate infills); the constrained forward pass
 * gives the total probability mass of constraint-satisfying paths, the
 * quantity Ctrl-G uses to steer generation.
 */

#ifndef REASON_HMM_CONSTRAINED_H
#define REASON_HMM_CONSTRAINED_H

#include <cstdint>
#include <vector>

#include "hmm/hmm.h"

namespace reason {
namespace hmm {

/** Hard decoding constraints over hidden states. */
struct DecodeConstraints
{
    /** (position, state): the path must pass through state at position. */
    std::vector<std::pair<uint32_t, uint32_t>> required;
    /** (position, state): the path must avoid state at position. */
    std::vector<std::pair<uint32_t, uint32_t>> forbidden;

    /** True when state `s` is admissible at position `t`. */
    bool admits(uint32_t t, uint32_t s) const;

    /** fatal()s on out-of-range or contradictory entries. */
    void validate(uint32_t num_states, size_t length) const;
};

/**
 * Viterbi decoding under hard constraints.  Returns logProb == -inf and
 * an empty path when no admissible path exists.
 */
ViterbiResult constrainedViterbi(const Hmm &hmm, const Sequence &obs,
                                 const DecodeConstraints &constraints);

/**
 * log P(x_{1:T}, all constraints hold): the forward pass restricted to
 * admissible states.  -inf when infeasible.
 */
double constrainedLogLikelihood(const Hmm &hmm, const Sequence &obs,
                                const DecodeConstraints &constraints);

/**
 * Probability that a random path (given the observations) satisfies the
 * constraints: exp(constrained - unconstrained log-likelihood).
 */
double constraintSatisfactionProbability(
    const Hmm &hmm, const Sequence &obs,
    const DecodeConstraints &constraints);

/**
 * k-best list Viterbi: the k highest-probability hidden paths in
 * descending order (fewer when the model admits fewer distinct paths).
 * k = 1 reduces to viterbi().
 */
std::vector<ViterbiResult> kBestPaths(const Hmm &hmm, const Sequence &obs,
                                      uint32_t k);

/**
 * Posterior (minimum symbol-error) decoding: argmax_s P(z_t = s | x)
 * per step.  Unlike Viterbi this may yield a zero-probability path; it
 * minimizes expected per-position error instead.
 */
std::vector<uint32_t> posteriorDecode(const Hmm &hmm, const Sequence &obs);

} // namespace hmm
} // namespace reason

#endif // REASON_HMM_CONSTRAINED_H
