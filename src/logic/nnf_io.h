/**
 * @file
 * d-DNNF serialization in the standard c2d `.nnf` format, the
 * interchange format of the knowledge-compilation ecosystem (c2d,
 * Dsharp, d4, miniC2D), so compiled knowledge bases can be exchanged
 * with external tools.
 *
 * Format (one node per line, children refer to earlier lines):
 *
 *     nnf <numNodes> <numEdges> <numVars>
 *     L <dimacs-literal>
 *     A <k> <child...>            (conjunction; A 0 is TRUE)
 *     O <decision-var> <k> <child...>   (disjunction; O 0 0 is FALSE)
 *
 * Reading is built on NnfStreamParser, a line-oriented pull parser
 * that yields one node at a time without materializing a pointer
 * graph, so consumers can stream arbitrarily large files straight
 * into flat CSR arrays (pc::streamNnfToFlat).  The parser is
 * malformed-tolerant in the wire-decoder sense (sys/wire.h): every
 * violation — truncated lines, dangling or forward (cyclic) child
 * references, out-of-range literals, counts that disagree with the
 * header, declared sizes large enough to wrap size computations —
 * produces a clean NnfError with the offending 1-based line number,
 * never a crash, and the parser never trusts a declared count for an
 * allocation before seeing the bytes that back it.
 *
 * parseC2dFormat() wraps the same parser into whole-graph loads: the
 * two-argument form reports errors through NnfError, the legacy
 * single-argument form fatal()s with the same message (CLI paths).
 */

#ifndef REASON_LOGIC_NNF_IO_H
#define REASON_LOGIC_NNF_IO_H

#include <cstdint>
#include <istream>
#include <span>
#include <string>
#include <vector>

#include "logic/knowledge.h"

namespace reason {
namespace logic {

/** Serialize a compiled d-DNNF to c2d text (reachable nodes only,
 *  renumbered topologically, root last). */
std::string toC2dFormat(const DnnfGraph &graph);

/** Outcome of a tolerant `.nnf` parse; ok() iff message is empty. */
struct NnfError
{
    /** Human-readable description of the first violation; empty = ok. */
    std::string message;
    /** 1-based line of the violation (0 when input ended early). */
    size_t line = 0;

    bool ok() const { return message.empty(); }
};

/** Declared `.nnf` header counts. */
struct NnfHeader
{
    uint64_t numNodes = 0;
    uint64_t numEdges = 0;
    uint32_t numVars = 0;
};

/**
 * Line-oriented streaming `.nnf` pull parser.
 *
 * The constructor consumes and validates the header; next() then
 * yields one node per call in file order.  Child ids are the file's
 * own 0-based numbering and always reference earlier nodes (forward
 * and self references are rejected, so cycles cannot be expressed).
 * The children span aliases an internal buffer valid until the next
 * next() call — peak memory is one line of children, not the graph.
 *
 * Hardening contract: any malformed input moves the parser to the
 * Error state with a message and line number.  Declared header counts
 * are bounds-checked against the id domains (numNodes/numEdges below
 * 2^32-1, numVars below 2^31) before any use, and per-node arities are
 * checked against the remaining declared edge budget before any
 * reservation, so hostile counts cannot wrap a size computation or
 * trigger an oversized allocation.
 */
class NnfStreamParser
{
  public:
    enum class Status
    {
        Node, ///< *out holds the next node
        End,  ///< all declared nodes read and counts check out
        Error ///< malformed input; see error()
    };

    /** One parsed node.  `children` is valid until the next next(). */
    struct Node
    {
        NnfType type = NnfType::True;
        Lit lit;                          ///< Lit nodes
        uint32_t decisionVar = 0;         ///< Or nodes
        std::span<const NnfId> children;  ///< And/Or nodes
    };

    /** Reads and validates the header; on failure the first next()
     *  reports the error. */
    explicit NnfStreamParser(std::istream &in);

    Status next(Node *out);

    const NnfHeader &header() const { return header_; }
    const NnfError &error() const { return error_; }
    /** Nodes successfully yielded so far (the next node's id). */
    size_t nodesSeen() const { return nodesSeen_; }
    /** 1-based line number of the most recently read line. */
    size_t line() const { return lineNo_; }

  private:
    bool fail(size_t line, std::string message);
    bool nextLine();
    bool nextToken(std::string_view *out);
    bool parseInt(int64_t *out, const char *what);
    bool parseCount(uint64_t *out, const char *what);
    bool readChildren(size_t count);

    std::istream &in_;
    NnfHeader header_;
    NnfError error_;
    bool failed_ = false;
    bool headerOk_ = false;
    std::string line_;
    size_t linePos_ = 0;
    size_t lineNo_ = 0;
    size_t nodesSeen_ = 0;
    uint64_t edgesSeen_ = 0;
    std::vector<NnfId> children_;
};

/**
 * Tolerant whole-text parse: on success returns the graph (validated,
 * including decomposability of And nodes) and leaves *err ok; on any
 * violation returns an empty graph and fills *err with the message
 * and line.  Never crashes, whatever the input.
 */
DnnfGraph parseC2dFormat(const std::string &text, NnfError *err);

/**
 * Legacy strict parse: fatal()s on malformed input with the NnfError
 * message and line.  `num_vars` of the resulting graph is taken from
 * the header.
 */
DnnfGraph parseC2dFormat(const std::string &text);

} // namespace logic
} // namespace reason

#endif // REASON_LOGIC_NNF_IO_H
