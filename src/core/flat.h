/**
 * @file
 * Flat CSR kernel engine for the unified reasoning DAG (REASON Sec. IV-A).
 *
 * `Dag` stores one fan-in vector per node — convenient to build, but every
 * evaluation pointer-chases heap-scattered vectors and allocates a fresh
 * O(numNodes) result buffer.  The paper's observation is that all three
 * substrates stream the *same* operation sequence over a fixed topology,
 * which is exactly what hardware wants: contiguous opcode/edge arrays and
 * a static schedule.  `FlatGraph` lowers a `Dag` once into CSR-style
 * arrays (opcodes, edge offsets/targets, packed edge weights, a level
 * schedule), and `Evaluator` owns reusable scratch so repeated passes are
 * allocation-free and cache-friendly.
 *
 * Use `Dag::evaluate` as the readable reference walker and cross-check;
 * use `Evaluator` whenever the same DAG is evaluated more than a handful
 * of times (sampling, EM, benches, batched serving).
 */

#ifndef REASON_CORE_FLAT_H
#define REASON_CORE_FLAT_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/dag.h"

namespace reason {
namespace core {

/**
 * Flat opcode.  Mirrors DagOp, but splits Sum into plain/weighted forms
 * so the hot loop dispatches without testing weight presence per node.
 */
enum class FlatOp : uint8_t
{
    Input,
    Const,
    Sum,         ///< unweighted addition over fan-in
    WeightedSum, ///< weighted addition; weights packed in edgeWeight
    Product,
    Max,
    Min,
    Not
};

/** Printable opcode name. */
const char *flatOpName(FlatOp op);

/**
 * CSR lowering of a Dag: structure-of-arrays, contiguous, immutable.
 *
 * Node i's operands are edgeTarget[edgeOffset[i] .. edgeOffset[i+1]) with
 * per-edge weights in the same index range of edgeWeight (1.0 for
 * non-weighted ops, so the arrays stay aligned).  Input and Const leaves
 * are listed separately so evaluators can pre-fill scratch and the hot
 * loop touches only operation nodes.
 *
 * The level schedule groups operation nodes by dependence depth: all
 * nodes of level L depend only on levels < L, so each level is a
 * data-parallel wavefront (the software analogue of the paper's pipelined
 * tree-PE issue schedule).
 */
struct FlatGraph
{
    /** Per-node opcode (FlatOp), indexed by original NodeId. */
    std::vector<uint8_t> ops;
    /** CSR fan-in offsets; size numNodes()+1. */
    std::vector<uint32_t> edgeOffset;
    /** Operand node ids, child-order preserved from the Dag. */
    std::vector<uint32_t> edgeTarget;
    /** Per-edge weight, aligned with edgeTarget (1.0 when unweighted). */
    std::vector<double> edgeWeight;
    /** (node, input tag) for every Input leaf. */
    std::vector<std::pair<uint32_t, uint32_t>> inputs;
    /** (node, value) for every Const leaf. */
    std::vector<std::pair<uint32_t, double>> consts;
    /** Wavefront offsets into levelNodes; size numLevels()+1. */
    std::vector<uint32_t> levelOffset;
    /** Operation nodes grouped by level, topological within a level. */
    std::vector<uint32_t> levelNodes;
    /** External input slot count (max tag + 1). */
    uint32_t numInputs = 0;
    /** Root node id. */
    uint32_t root = kInvalidNode;

    size_t numNodes() const { return ops.size(); }
    size_t numEdges() const { return edgeTarget.size(); }
    size_t
    numLevels() const
    {
        return levelOffset.empty() ? 0 : levelOffset.size() - 1;
    }
    /** Actual storage footprint of the flat arrays in bytes. */
    size_t memoryBytes() const;

    /** Structural invariants (offsets, targets, schedule); panics. */
    void validate() const;
};

/** Lower a Dag into flat CSR form.  O(nodes + edges). */
FlatGraph lowerDag(const Dag &dag);

/**
 * Allocation-free evaluator over a FlatGraph.
 *
 * Owns one scratch buffer of per-node values, pre-filled with constants
 * at construction; every evaluate() reuses it.  The referenced FlatGraph
 * must outlive the evaluator.  Results are identical to Dag::evaluate
 * (same operation order, same floating-point expression shapes).
 */
class Evaluator
{
  public:
    explicit Evaluator(const FlatGraph &graph);

    /**
     * Evaluate for one input row (indexed by input tag; size must be
     * >= numInputs).  Returns a view of per-node values valid until the
     * next evaluate call.
     */
    std::span<const double> evaluate(std::span<const double> inputs);

    /** Evaluate and return only the root value. */
    double evaluateRoot(std::span<const double> inputs);

    /**
     * Batched evaluation over `num_rows` row-major input rows of
     * numInputs values each; writes one root value per row.  Rows are
     * streamed through the same scratch, so the whole batch performs
     * zero heap allocations.
     */
    void evaluateBatch(std::span<const double> rows, size_t num_rows,
                       std::span<double> roots_out);

    const FlatGraph &graph() const { return graph_; }
    /** Per-node values of the most recent evaluate(). */
    const std::vector<double> &values() const { return values_; }

  private:
    const FlatGraph &graph_;
    std::vector<double> values_;
};

} // namespace core
} // namespace reason

#endif // REASON_CORE_FLAT_H
