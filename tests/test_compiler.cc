/**
 * @file
 * Compiler tests (Sec. V-C): block shape invariants, operand/bank
 * mapping consistency, pipeline-aware schedule legality, and the
 * central equivalence property — compiled programs executed on the
 * cycle simulator reproduce Dag::evaluateRoot exactly.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "arch/accelerator.h"
#include "compiler/compile.h"
#include "core/builders.h"
#include "dag_test_util.h"
#include "util/numeric.h"
#include "util/rng.h"

using namespace reason;
using namespace reason::compiler;

namespace {

double
runCompiled(const core::Dag &dag, const std::vector<double> &inputs,
            const TargetConfig &target = {})
{
    Program prog = compile(dag, target);
    arch::ArchConfig cfg;
    cfg.treeDepth = target.treeDepth;
    cfg.numPes = target.numPes;
    cfg.numBanks = target.numBanks;
    cfg.regsPerBank = target.regsPerBank;
    arch::Accelerator accel(cfg);
    return accel.run(prog, inputs).rootValue;
}

} // namespace

TEST(Compile, TrivialInputRoot)
{
    core::Dag dag;
    dag.markRoot(dag.addInput());
    Program p = compile(dag);
    EXPECT_EQ(p.blocks.size(), 1u);
    EXPECT_DOUBLE_EQ(runCompiled(dag, {7.5}), 7.5);
}

TEST(Compile, ConstantRoot)
{
    core::Dag dag;
    dag.markRoot(dag.addConst(3.25));
    EXPECT_DOUBLE_EQ(runCompiled(dag, {}), 3.25);
}

TEST(Compile, NotFoldedIntoLeafAffine)
{
    core::Dag dag;
    core::NodeId a = dag.addInput();
    core::NodeId n = dag.addOp(core::DagOp::Not, {a});
    core::NodeId s = dag.addOp(core::DagOp::Sum, {n, a});
    dag.markRoot(s);
    Program p = compile(dag);
    // Not must not create its own block.
    EXPECT_EQ(p.blocks.size(), 1u);
    EXPECT_DOUBLE_EQ(runCompiled(dag, {0.3}), 1.0);
}

TEST(Compile, WeightedSumUsesLeafScaling)
{
    core::Dag dag;
    core::NodeId a = dag.addInput();
    core::NodeId b = dag.addInput();
    core::NodeId s =
        dag.addOp(core::DagOp::Sum, {a, b}, {0.25, 4.0});
    dag.markRoot(s);
    EXPECT_DOUBLE_EQ(runCompiled(dag, {8.0, 0.5}), 4.0);
}

TEST(Compile, SharedSubexpressionMaterializedOnce)
{
    core::Dag dag;
    core::NodeId a = dag.addInput();
    core::NodeId b = dag.addInput();
    core::NodeId shared = dag.addOp(core::DagOp::Sum, {a, b});
    core::NodeId p1 = dag.addOp(core::DagOp::Product, {shared, a});
    core::NodeId p2 = dag.addOp(core::DagOp::Product, {shared, b});
    core::NodeId root = dag.addOp(core::DagOp::Sum, {p1, p2});
    dag.markRoot(root);
    Program p = compile(dag);
    // Blocks: root(+fused products?) and the shared sum.  The shared
    // node must appear exactly once as a block root.
    size_t shared_blocks = 0;
    for (const auto &blk : p.blocks)
        if (blk.dagRoot == shared)
            ++shared_blocks;
    EXPECT_EQ(shared_blocks, 1u);
    // (a+b)*a + (a+b)*b = (a+b)^2
    EXPECT_DOUBLE_EQ(runCompiled(dag, {2.0, 3.0}), 25.0);
}

TEST(Compile, DeepChainSplitsIntoBlocks)
{
    // A multiply chain deeper than the tree must split into dependent
    // blocks and still evaluate correctly.
    core::Dag dag;
    core::NodeId acc = dag.addInput();
    for (int i = 0; i < 20; ++i) {
        core::NodeId b = dag.addInput();
        acc = dag.addOp(core::DagOp::Product, {acc, b});
    }
    dag.markRoot(acc);
    Program p = compile(dag);
    EXPECT_GT(p.blocks.size(), 3u);
    std::vector<double> inputs(21, 1.1);
    double want = std::pow(1.1, 21);
    EXPECT_NEAR(runCompiled(dag, inputs), want, want * 1e-12);
}

TEST(Compile, BlockShapesRespectHardware)
{
    Rng rng(777);
    core::Dag dag = testutil::randomDag(rng, 8, 60, 5);
    TargetConfig target;
    Program p = compile(dag, target);
    for (const auto &blk : p.blocks) {
        EXPECT_EQ(blk.operands.size(), p.leavesPerPe());
        EXPECT_EQ(blk.nodeOps.size(), p.nodesPerPe());
        EXPECT_LE(blk.dest.bank, target.numPes - 1);
    }
    EXPECT_GT(p.stats.avgLeafUtilization, 0.0);
    EXPECT_LE(p.stats.avgLeafUtilization, 1.0);
}

TEST(Compile, ScheduleRespectsDependencies)
{
    Rng rng(778);
    core::Dag dag = testutil::randomDag(rng, 8, 80, 4);
    TargetConfig target;
    Program p = compile(dag, target);
    // Map block -> issue cycle.
    std::vector<uint64_t> issue(p.blocks.size(), ~0ull);
    std::vector<uint32_t> pe(p.blocks.size(), 0);
    for (const auto &slot : p.schedule) {
        issue[slot.block] = slot.cycle;
        pe[slot.block] = slot.pe;
    }
    uint32_t latency = target.pipelineLatency();
    for (uint32_t b = 0; b < p.blocks.size(); ++b) {
        ASSERT_NE(issue[b], ~0ull) << "every block scheduled";
        for (uint32_t d : p.blocks[b].depends)
            EXPECT_GE(issue[b], issue[d] + latency)
                << "dependent blocks must be spaced by the pipeline";
    }
    // No PE double-issues in a cycle.
    std::map<std::pair<uint64_t, uint32_t>, int> slot_use;
    for (const auto &slot : p.schedule) {
        int uses = ++slot_use[std::make_pair(slot.cycle, slot.pe)];
        EXPECT_EQ(uses, 1);
    }
}

TEST(Compile, OperandBankReferencesAreValid)
{
    Rng rng(779);
    core::Dag dag = testutil::randomDag(rng, 10, 50, 4);
    TargetConfig target;
    Program p = compile(dag, target);
    for (const auto &blk : p.blocks)
        for (const auto &op : blk.operands)
            if (op.valid && op.fetch) {
                EXPECT_LT(op.bank, target.numBanks);
                EXPECT_NE(op.reg, 0xffff) << "sentinel must be patched";
            }
}

/** The central equivalence sweep: simulate == evaluate. */
class CompileEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(CompileEquivalence, SimulatedValueMatchesDagEvaluation)
{
    Rng rng(GetParam() * 15101 + 23);
    uint32_t inputs_n = 4 + GetParam() % 8;
    uint32_t ops_n = 10 + (GetParam() * 13) % 120;
    bool logical = GetParam() % 4 == 1;
    core::Dag dag =
        testutil::randomDag(rng, inputs_n, ops_n, 5, logical);
    auto inputs =
        testutil::randomInputs(rng, inputs_n,
                               logical ? 0.0 : 0.1,
                               logical ? 1.0 : 1.4);
    if (logical)
        for (auto &x : inputs)
            x = x < 0.5 ? 0.0 : 1.0;
    double want = dag.evaluateRoot(inputs);
    double got = runCompiled(dag, inputs);
    EXPECT_TRUE(nearlyEqual(want, got, 1e-9, 1e-12))
        << "want " << want << " got " << got;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CompileEquivalence,
                         ::testing::Range(0, 40));

/** Equivalence holds across hardware shapes (DSE configurations). */
class CompileAcrossConfigs : public ::testing::TestWithParam<int>
{
};

TEST_P(CompileAcrossConfigs, DepthAndBanksDoNotChangeResults)
{
    Rng rng(4242);
    core::Dag dag = testutil::randomDag(rng, 6, 40, 4);
    auto inputs = testutil::randomInputs(rng, 6);
    double want = dag.evaluateRoot(inputs);

    TargetConfig t;
    int p = GetParam();
    t.treeDepth = 2 + p % 3;         // D in {2,3,4}
    t.numPes = 4 + 4 * (p % 4);      // 4..16
    t.numBanks = t.numPes + 16 * (1 + p % 3);
    t.regsPerBank = 8 << (p % 3);
    double got = runCompiled(dag, inputs, t);
    EXPECT_TRUE(nearlyEqual(want, got, 1e-9, 1e-12))
        << "D=" << t.treeDepth << " PEs=" << t.numPes;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CompileAcrossConfigs,
                         ::testing::Range(0, 12));

TEST(Compile, RealKernelsCompile)
{
    Rng rng(31);
    // A CNF DAG.
    logic::CnfFormula f = logic::randomKSat(rng, 12, 40, 3);
    core::Dag cnf_dag = core::buildFromCnf(f);
    std::vector<double> assign(12);
    std::vector<bool> ba(12);
    for (int v = 0; v < 12; ++v) {
        ba[v] = rng.bernoulli(0.5);
        assign[v] = ba[v] ? 1.0 : 0.0;
    }
    EXPECT_DOUBLE_EQ(runCompiled(cnf_dag, assign),
                     f.evaluate(ba) ? 1.0 : 0.0);

    // A PC DAG.
    pc::Circuit c = pc::randomCircuit(rng, 6, 2);
    std::vector<pc::NodeId> leaf_order;
    core::Dag pc_dag = core::buildFromCircuit(c, &leaf_order);
    auto x = pc::sampleDataset(rng, c, 1)[0];
    auto leaf_inputs = core::circuitLeafInputs(c, leaf_order, x);
    EXPECT_NEAR(runCompiled(pc_dag, leaf_inputs),
                std::exp(c.logLikelihood(x)), 1e-9);

    // An HMM DAG.
    hmm::Hmm h = hmm::Hmm::random(rng, 4, 5);
    hmm::Sequence obs;
    h.sample(rng, 8, &obs);
    core::Dag hmm_dag = core::buildFromHmm(h, obs);
    double want = std::exp(hmm::sequenceLogLikelihood(h, obs));
    EXPECT_NEAR(runCompiled(hmm_dag, {}), want, 1e-9 * want + 1e-12);
}

TEST(Compile, StatsAccounting)
{
    Rng rng(32);
    core::Dag dag = testutil::randomDag(rng, 8, 60, 4);
    Program p = compile(dag);
    EXPECT_EQ(p.stats.numBlocks, p.blocks.size());
    EXPECT_GT(p.stats.fusedNodes, 0u);
    EXPECT_EQ(p.schedule.size(), p.blocks.size());
    EXPECT_GT(p.stats.scheduleLength, 0u);
}
