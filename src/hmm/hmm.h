/**
 * @file
 * Hidden Markov Model substrate (REASON Sec. II-C, Eq. 2): scaled
 * forward/backward inference, posterior smoothing, Viterbi decoding,
 * Baum-Welch training, sampling, and posterior-based transition/emission
 * pruning (Sec. IV-B).
 */

#ifndef REASON_HMM_HMM_H
#define REASON_HMM_HMM_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/parallel.h"

namespace reason {

class Rng;

namespace hmm {

/** Observation sequence: symbol indices in [0, numSymbols). */
using Sequence = std::vector<uint32_t>;

/**
 * Discrete-emission HMM with `numStates` hidden states and `numSymbols`
 * observation symbols.  Probabilities are stored densely; pruned entries
 * are exact zeros.
 */
class Hmm
{
  public:
    Hmm(uint32_t num_states, uint32_t num_symbols);

    uint32_t numStates() const { return numStates_; }
    uint32_t numSymbols() const { return numSymbols_; }

    double initial(uint32_t s) const { return initial_[s]; }
    double transition(uint32_t from, uint32_t to) const
    {
        return trans_[size_t(from) * numStates_ + to];
    }
    double emission(uint32_t state, uint32_t sym) const
    {
        return emit_[size_t(state) * numSymbols_ + sym];
    }

    /** Contiguous initial distribution (numStates entries). */
    const double *initialData() const { return initial_.data(); }
    /** Contiguous transition row `from -> *` (numStates entries). */
    const double *transitionRow(uint32_t from) const
    {
        return trans_.data() + size_t(from) * numStates_;
    }
    /** Contiguous emission row of `state` (numSymbols entries). */
    const double *emissionRow(uint32_t state) const
    {
        return emit_.data() + size_t(state) * numSymbols_;
    }

    void setInitial(std::vector<double> pi);
    void setTransitionRow(uint32_t from, std::vector<double> row);
    void setEmissionRow(uint32_t state, std::vector<double> row);

    /** Count of structurally nonzero transition entries. */
    size_t numActiveTransitions() const;
    /** Count of structurally nonzero emission entries. */
    size_t numActiveEmissions() const;

    /** Renormalize all rows; fatal if a row has no mass. */
    void normalize();

    /** Uniformly random fully-connected model. */
    static Hmm random(Rng &rng, uint32_t num_states, uint32_t num_symbols,
                      double concentration = 1.0);

    /**
     * Banded model: state s transitions only to [s-band, s+band] mod N.
     * Mirrors the sparse transition structure of constrained-decoding
     * HMMs (Ctrl-G / GeLaTo).  `concentration` < 1 yields peaked rows
     * (most probability mass on few successors/symbols), the regime in
     * which posterior-usage pruning is both effective and harmless.
     */
    static Hmm banded(Rng &rng, uint32_t num_states, uint32_t num_symbols,
                      uint32_t band, double concentration = 1.0);

    /** Sample a state/observation path of the given length. */
    void sample(Rng &rng, size_t length, Sequence *obs,
                std::vector<uint32_t> *states = nullptr) const;

  private:
    uint32_t numStates_;
    uint32_t numSymbols_;
    std::vector<double> initial_;
    std::vector<double> trans_;
    std::vector<double> emit_;
};

/** Scaled forward/backward quantities for one sequence. */
struct ForwardBackward
{
    /** alpha[t][s], scaled so each row sums to 1. */
    std::vector<std::vector<double>> alpha;
    /** beta[t][s] under the same scaling. */
    std::vector<std::vector<double>> beta;
    /** Per-step scaling factors c_t. */
    std::vector<double> scale;
    /** gamma[t][s] = P(z_t = s | x_{1:T}). */
    std::vector<std::vector<double>> gamma;
    /** xi[t][i*N+j] = P(z_t=i, z_{t+1}=j | x); length T-1. */
    std::vector<std::vector<double>> xi;
    /** log P(x_{1:T}). */
    double logLikelihood = 0.0;
};

/** Run scaled forward-backward on one observation sequence. */
ForwardBackward forwardBackward(const Hmm &hmm, const Sequence &obs);

/**
 * Flat forward-backward workspace: the same quantities as
 * ForwardBackward, stored in contiguous row-major buffers
 * (alpha/beta/gamma are T x N, xi is (T-1) x N*N) that are reused across
 * sequences.  Training and pruning loops run forward-backward once per
 * sequence per iteration; the nested-vector layout of ForwardBackward
 * costs O(T) allocations per call, this costs zero once warm.
 */
struct FbWorkspace
{
    std::vector<double> alpha; ///< [t * N + s], rows scaled to sum 1
    std::vector<double> beta;  ///< [t * N + s]
    std::vector<double> gamma; ///< [t * N + s]
    std::vector<double> xi;    ///< [t * N * N + i * N + j], length T-1
    std::vector<double> scale; ///< [t]
    /**
     * SIMD leaf-batching tables, rebuilt per call from the model:
     * emitT[sym * N + s] = emission(s, sym) — one contiguous
     * "emission column" per observed symbol, so per-step leaf scoring
     * is SIMD-width loads instead of stride-numSymbols gathers — and
     * transT[j * N + i] = transition(i, j) for the backward matvec.
     */
    std::vector<double> emitT;
    std::vector<double> transT;
    double logLikelihood = 0.0;
    size_t T = 0;
    uint32_t N = 0;
};

/**
 * Scaled forward-backward into a reused workspace; allocation-free once
 * the buffers have grown to the largest (T, N) seen.  Identical math to
 * forwardBackward().
 *
 * `reuse_tables` skips rebuilding the workspace's emitT/transT
 * transpose tables (O(N*(N+M)) per call): pass true ONLY when the
 * previous call on this workspace used the same model with unchanged
 * parameters — the pattern of a fixed-model sweep over many sequences
 * (Baum-Welch E-step within one iteration, posterior pruning).
 */
void forwardBackwardInto(const Hmm &hmm, const Sequence &obs,
                         FbWorkspace &ws, bool reuse_tables = false);

/** log P(x) only (forward pass). */
double sequenceLogLikelihood(const Hmm &hmm, const Sequence &obs);

/**
 * log P(x) for every sequence of a dataset, written into `out`
 * (out.size() >= data.size()).  Sequences are independent forward
 * passes, so they are split across the worker pool (nullptr selects the
 * global pool) in deterministic contiguous chunks; each out[i] is
 * computed by exactly one worker with the per-sequence serial code, so
 * results are bit-identical for any thread count.  Used by baumWelch's
 * per-iteration dataset likelihood.
 */
void sequenceLogLikelihoods(const Hmm &hmm,
                            const std::vector<Sequence> &data,
                            std::vector<double> &out,
                            util::ThreadPool *pool = nullptr);

/** Viterbi decoding result. */
struct ViterbiResult
{
    std::vector<uint32_t> path;
    double logProb = 0.0;
};

/** Most likely hidden state path. */
ViterbiResult viterbi(const Hmm &hmm, const Sequence &obs);

/**
 * Brute-force log P(x) by path enumeration (testing only):
 * requires numStates^T small.
 */
double bruteForceLogLikelihood(const Hmm &hmm, const Sequence &obs);

/** Baum-Welch training trace. */
struct BaumWelchTrace
{
    std::vector<double> logLikelihood;
    uint32_t iterations = 0;
};

/**
 * Baum-Welch options.  The sharding fields default to the process-wide
 * util::ReductionPolicy (the --shards / --fast-reductions knob);
 * explicit assignment overrides it.
 */
struct BaumWelchOptions
{
    uint32_t maxIterations = 20;
    /** Stop when LL improves by less than this per sequence. */
    double tolerance = 1e-6;
    /** Pseudo-count added to every expected count. */
    double smoothing = 1e-3;
    /**
     * Sequence shards of the E-step statistic accumulation; 0 = auto
     * (a fixed count when deterministic, one per pool worker
     * otherwise) and 1 = the legacy serial left fold.
     */
    unsigned shards = util::reductionPolicy().shards;
    /**
     * Deterministic (default): shard count and fixed-shape tree
     * reduction never depend on the worker count, so the trained model
     * and trace are bit-identical for any thread count.  Fast mode
     * (false) shards per worker, relaxing only the reduction shape.
     */
    bool deterministic = util::reductionPolicy().deterministic;
};

/**
 * Baum-Welch EM over a set of sequences; trains in place.  Sequences
 * are sharded into contiguous slices accumulated by pool workers
 * (nullptr selects the global pool) into private statistic buffers,
 * merged by a deterministic tree reduction; per-iteration dataset
 * likelihoods reuse the thread-parallel sequenceLogLikelihoods.
 */
BaumWelchTrace baumWelch(Hmm &hmm, const std::vector<Sequence> &data,
                         const BaumWelchOptions &options,
                         util::ThreadPool *pool = nullptr);

/** Positional-argument convenience overload (legacy signature). */
BaumWelchTrace baumWelch(Hmm &hmm, const std::vector<Sequence> &data,
                         uint32_t max_iterations = 20,
                         double tolerance = 1e-6,
                         double smoothing = 1e-3);

/** Result of posterior-usage-based pruning. */
struct HmmPruneResult
{
    Hmm pruned;
    uint64_t transitionsRemoved = 0;
    uint64_t emissionsRemoved = 0;
    /** Fraction of (transition+emission) parameters removed. */
    double parameterReduction = 0.0;

    HmmPruneResult() : pruned(1, 1) {}
};

/**
 * Prune transitions and emissions whose expected posterior usage over the
 * dataset (forward-backward xi/gamma mass) falls below `usage_threshold`
 * times the *average* usage of an active entry of the same type.  Each
 * state keeps at least one outgoing transition and one emission; rows are
 * renormalized.
 */
HmmPruneResult pruneByPosterior(const Hmm &hmm,
                                const std::vector<Sequence> &data,
                                double usage_threshold);

} // namespace hmm
} // namespace reason

#endif // REASON_HMM_HMM_H
