/**
 * @file
 * The four-step DAG-to-hardware compiler (REASON Sec. V-C):
 *
 *   Step 1  Block decomposition — greedy extraction of depth-bounded
 *           subtrees ("blocks") that issue as single tree instructions.
 *           Unary modifiers (Not, weight scaling) are folded into leaf
 *           affine transforms; weighted edges are pushed into fused
 *           subtrees where algebra allows (selective replication of
 *           cheap unary work).
 *   Step 2  PE and register-bank mapping — blocks are assigned to PEs by
 *           dependence level; each PE owns one output bank
 *           (one-bank-one-PE), external inputs are spread across the
 *           remaining banks conflict-aware.
 *   Step 3  Tree mapping — fused op subtrees are placed onto the physical
 *           node grid with pass-through routing for short paths.
 *   Step 4  Reordering — pipeline-aware list scheduling that spaces
 *           dependent blocks by the tree pipeline latency and interleaves
 *           independent work.
 */

#ifndef REASON_COMPILER_COMPILE_H
#define REASON_COMPILER_COMPILE_H

#include "compiler/program.h"
#include "core/dag.h"

namespace reason {
namespace compiler {

/** Hardware template parameters the compiler targets. */
struct TargetConfig
{
    uint32_t treeDepth = 3;   ///< D: levels of compute nodes
    uint32_t numPes = 12;
    uint32_t numBanks = 64;   ///< B
    uint32_t regsPerBank = 32; ///< R
    /** Cycles from issue to result visibility (route + D levels + WB). */
    uint32_t pipelineLatency() const { return treeDepth + 3; }
};

/**
 * Compile a DAG to a REASON program.  The DAG is regularized to
 * two-input form internally if needed.  The emitted program's simulated
 * execution yields exactly Dag::evaluateRoot for any input vector.
 */
Program compile(const core::Dag &dag, const TargetConfig &target = {});

} // namespace compiler
} // namespace reason

#endif // REASON_COMPILER_COMPILE_H
