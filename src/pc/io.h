/**
 * @file
 * Probabilistic-circuit serialization: a line-oriented text format
 * ("rpc 1") that round-trips Circuit structure and parameters exactly,
 * so trained or compiled circuits can be stored and shipped.
 *
 * Format:
 *
 *     rpc 1
 *     vars <numVars> arity <arity>
 *     l <var> <p_0> ... <p_{arity-1}>          leaf
 *     p <k> <child...>                          product
 *     s <k> <child> <weight> ...                sum
 *     root <id>
 *
 * Node ids are implicit line positions (0-based, in file order);
 * children must precede parents.  Probabilities are written with 17
 * significant digits so parsing reproduces them bit-exactly.
 */

#ifndef REASON_PC_IO_H
#define REASON_PC_IO_H

#include <string>

#include "pc/pc.h"

namespace reason {
namespace pc {

/** Serialize a circuit to rpc text. */
std::string toText(const Circuit &circuit);

/** Parse rpc text; fatal()s on malformed input. */
Circuit parseText(const std::string &text);

} // namespace pc
} // namespace reason

#endif // REASON_PC_IO_H
