/**
 * @file
 * Flat CSR kernel engine for the unified reasoning DAG (REASON Sec. IV-A).
 *
 * `Dag` stores one fan-in vector per node — convenient to build, but every
 * evaluation pointer-chases heap-scattered vectors and allocates a fresh
 * O(numNodes) result buffer.  The paper's observation is that all three
 * substrates stream the *same* operation sequence over a fixed topology,
 * which is exactly what hardware wants: contiguous opcode/edge arrays and
 * a static schedule.  `FlatGraph` lowers a `Dag` once into CSR-style
 * arrays (opcodes, edge offsets/targets, packed edge weights, a level
 * schedule), and `Evaluator` owns reusable scratch so repeated passes are
 * allocation-free and cache-friendly.
 *
 * Use `Dag::evaluate` as the readable reference walker and cross-check;
 * use `Evaluator` whenever the same DAG is evaluated more than a handful
 * of times (sampling, EM, benches, batched serving).
 */

#ifndef REASON_CORE_FLAT_H
#define REASON_CORE_FLAT_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/dag.h"

namespace reason {

namespace util {
class ThreadPool;
}

namespace core {

/**
 * Flat opcode.  Mirrors DagOp, but splits Sum into plain/weighted forms
 * so the hot loop dispatches without testing weight presence per node.
 */
enum class FlatOp : uint8_t
{
    Input,
    Const,
    Sum,         ///< unweighted addition over fan-in
    WeightedSum, ///< weighted addition; weights packed in edgeWeight
    Product,
    Max,
    Min,
    Not
};

/** Printable opcode name. */
const char *flatOpName(FlatOp op);

/**
 * CSR lowering of a Dag: structure-of-arrays, contiguous, immutable.
 *
 * Node i's operands are edgeTarget[edgeOffset[i] .. edgeOffset[i+1]) with
 * per-edge weights in the same index range of edgeWeight (1.0 for
 * non-weighted ops, so the arrays stay aligned).  Input and Const leaves
 * are listed separately so evaluators can pre-fill scratch and the hot
 * loop touches only operation nodes.
 *
 * The level schedule groups operation nodes by dependence depth: all
 * nodes of level L depend only on levels < L, so each level is a
 * data-parallel wavefront (the software analogue of the paper's pipelined
 * tree-PE issue schedule).
 */
struct FlatGraph
{
    /** Per-node opcode (FlatOp), indexed by original NodeId. */
    std::vector<uint8_t> ops;
    /** CSR fan-in offsets; size numNodes()+1. */
    std::vector<uint32_t> edgeOffset;
    /** Operand node ids, child-order preserved from the Dag. */
    std::vector<uint32_t> edgeTarget;
    /** Per-edge weight, aligned with edgeTarget (1.0 when unweighted). */
    std::vector<double> edgeWeight;
    /** (node, input tag) for every Input leaf. */
    std::vector<std::pair<uint32_t, uint32_t>> inputs;
    /** (node, value) for every Const leaf. */
    std::vector<std::pair<uint32_t, double>> consts;
    /** Wavefront offsets into levelNodes; size numLevels()+1. */
    std::vector<uint32_t> levelOffset;
    /** Operation nodes grouped by level, topological within a level. */
    std::vector<uint32_t> levelNodes;
    /** External input slot count (max tag + 1). */
    uint32_t numInputs = 0;
    /** Root node id. */
    uint32_t root = kInvalidNode;

    size_t numNodes() const { return ops.size(); }
    size_t numEdges() const { return edgeTarget.size(); }
    size_t
    numLevels() const
    {
        return levelOffset.empty() ? 0 : levelOffset.size() - 1;
    }
    /** Actual storage footprint of the flat arrays in bytes. */
    size_t memoryBytes() const;

    /** Structural invariants (offsets, targets, schedule); panics. */
    void validate() const;
};

/** Lower a Dag into flat CSR form.  O(nodes + edges). */
FlatGraph lowerDag(const Dag &dag);

/** A wavefront schedule: nodes grouped by level via offset slices. */
struct LevelSchedule
{
    /** Offsets into nodes; size numLevels+1. */
    std::vector<uint32_t> offset;
    /** Scheduled nodes, ascending id within a level. */
    std::vector<uint32_t> nodes;
};

/**
 * Compute the level (wavefront) schedule of a CSR DAG: a node's level
 * is one past its deepest operand (operand-free nodes are level 0).
 * `schedulable` restricts which nodes appear in the schedule (empty =
 * all); levels are always computed over every node, so filtered-out
 * leaves still anchor level 0.  Shared by core::lowerDag (operation
 * nodes only) and pc::FlatCircuit (all nodes).  O(nodes + edges).
 */
LevelSchedule buildLevelSchedule(size_t num_nodes,
                                 std::span<const uint32_t> edge_offset,
                                 std::span<const uint32_t> edge_target,
                                 std::span<const uint8_t> schedulable = {});

/**
 * Allocation-free evaluator over a FlatGraph.
 *
 * Owns one scratch buffer of per-node values, pre-filled with constants
 * at construction; every evaluate() reuses it.  The referenced FlatGraph
 * must outlive the evaluator.  Results are identical to Dag::evaluate
 * (same operation order, same floating-point expression shapes).
 *
 * **Threading.**  Pass a util::ThreadPool (or rely on the global pool)
 * and evaluate() executes each wavefront of the level schedule in
 * parallel: every node of a level depends only on earlier levels, each
 * node value has exactly one writer, and per-node expressions are
 * unchanged, so results are *bit-identical* to the serial path for any
 * thread count.  evaluateBatch() additionally splits the row dimension
 * across workers using one private per-worker value buffer each (lazily
 * allocated once, then reused).
 *
 * **Thread-safety contract.**  One Evaluator may be driven by one
 * caller at a time (the scratch is stateful); concurrent use requires
 * one Evaluator per thread, which may share a single FlatGraph —
 * FlatGraph is immutable after lowering and safe for unsynchronized
 * concurrent reads.
 */
class Evaluator
{
  public:
    /**
     * @param graph  lowered graph; must outlive the evaluator.
     * @param pool   worker pool for wavefront/batch parallelism;
     *               nullptr selects util::globalThreadPool().
     */
    explicit Evaluator(const FlatGraph &graph,
                       util::ThreadPool *pool = nullptr);

    /**
     * Evaluate for one input row (indexed by input tag; size must be
     * >= numInputs).  Returns a view of per-node values valid until the
     * next evaluate call.
     */
    std::span<const double> evaluate(std::span<const double> inputs);

    /** Evaluate and return only the root value. */
    double evaluateRoot(std::span<const double> inputs);

    /**
     * Batched evaluation over `num_rows` row-major input rows of
     * numInputs values each; writes one root value per row.  Rows are
     * split across pool workers (deterministic contiguous chunks, one
     * private value buffer per worker), so the batch is allocation-free
     * once warm and bit-identical to per-row evaluate() calls.
     */
    void evaluateBatch(std::span<const double> rows, size_t num_rows,
                       std::span<double> roots_out);

    const FlatGraph &graph() const { return graph_; }
    /**
     * Per-node values of the most recent evaluate().  Only meaningful
     * after evaluate(); evaluateBatch() does not update this view.
     */
    const std::vector<double> &values() const { return values_; }

  private:
    /** Smallest wavefront worth splitting across threads. */
    static constexpr size_t kMinNodesPerChunk = 2048;
    /** Smallest per-worker row count of the batched path. */
    static constexpr size_t kMinRowsPerChunk = 4;

    /** The explicit pool, or the (possibly reconfigured) global one. */
    util::ThreadPool &activePool() const;

    const FlatGraph &graph_;
    /** Explicit pool, or nullptr = resolve the global pool per call. */
    util::ThreadPool *pool_;
    std::vector<double> values_;
    /** Per-worker value buffers of the batched path (lazy). */
    std::vector<std::vector<double>> batchValues_;
};

} // namespace core
} // namespace reason

#endif // REASON_CORE_FLAT_H
