/**
 * @file
 * Lowering cache for the flat kernel engines.
 *
 * Every repeated-pass query lowers its Circuit (or Dag) into the flat
 * CSR form before evaluating; callers that issue many queries against
 * the same structure — posteriorMarginals per evidence set, EM's
 * meanLogLikelihood after each M-step, entropy sweeps, the CLI — used
 * to pay that O(nodes + edges + log() per weight) cost on every call.
 * The cache keys a lowering by *structural identity*: the object's
 * address plus a content fingerprint (node/edge counts and a 64-bit
 * FNV-1a hash over topology and parameters).  Address reuse and
 * in-place mutation (e.g. EM weight updates) change the fingerprint
 * and miss; hitting requires byte-equal structure, so a hit is always
 * safe to share.
 *
 * Entries are std::shared_ptr<const ...>: callers keep their lowering
 * alive independently of later evictions (small LRU, kMaxEntries).
 * All functions are thread-safe (internal mutex); the returned flat
 * structures are immutable and safe for concurrent reads.
 */

#ifndef REASON_PC_FLAT_CACHE_H
#define REASON_PC_FLAT_CACHE_H

#include <cstdint>
#include <memory>

#include "core/flat.h"
#include "pc/flat_pc.h"

namespace reason {
namespace pc {

/** Entry capacity of each LRU lowering cache (circuits and dags). */
inline constexpr size_t kFlatCacheCapacity = 16;

/**
 * Lowering of `circuit`, served from the cache when the circuit is
 * structurally unchanged since the previous call, freshly lowered (and
 * cached) otherwise.
 */
std::shared_ptr<const FlatCircuit> cachedLowering(const Circuit &circuit);

/** Dag counterpart: cached core::lowerDag. */
std::shared_ptr<const core::FlatGraph>
cachedLowering(const core::Dag &dag);

/**
 * 64-bit FNV-1a content fingerprint of an already-flat circuit:
 * topology (types, CSR edges, root), parameters (edge log-weights,
 * leaf variables and log-distributions), and meta (vars/arity).
 * Structurally identical circuits hash equal regardless of how they
 * were built — Circuit lowering, direct d-DNNF build, or streamed
 * `.nnf` load — so compiled knowledge bases can be deduplicated and
 * cache keys derived without a heap source object.
 */
uint64_t structuralFingerprint(const FlatCircuit &flat);

/** Hit/miss/eviction counters since process start (or last clear). */
struct FlatCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
};

FlatCacheStats flatCacheStats();

/** Drop every cached lowering and zero the counters (tests, reloads). */
void clearFlatCache();

} // namespace pc
} // namespace reason

#endif // REASON_PC_FLAT_CACHE_H
