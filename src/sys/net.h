/**
 * @file
 * Hardened socket I/O shared by the serving front-end and the
 * resilient client (sys/client, sys/server, reason_cli).
 *
 * Every helper is:
 *  - **EINTR-safe**: interrupted syscalls are retried, so a signal
 *    (SIGINT wired to drain, a profiler, a debugger) never tears a
 *    frame mid-transfer.
 *  - **SIGPIPE-free**: sends pass MSG_NOSIGNAL where available and
 *    netPrepareSocket sets SO_NOSIGPIPE where that is the mechanism,
 *    so a mid-write client disconnect surfaces as an EPIPE error
 *    return instead of killing the process.
 *  - **Fault-injected**: each call consults the globally installed
 *    sys::FaultPlan (sys/fault.h) and can be shortened, delayed, or
 *    turned into a connection reset — deterministically, which is how
 *    the reliability tests and the fault_recovery gate exercise every
 *    partial-transfer path.  Injected resets are realized with
 *    shutdown(2), so both ends observe a real torn connection.
 *
 * The REASON_HAS_SOCKETS gate mirrors the one the CLI uses: POSIX
 * sockets only; on other platforms the serving front-end is compiled
 * out and these helpers are absent.
 */

#ifndef REASON_SYS_NET_H
#define REASON_SYS_NET_H

#if defined(__unix__) || defined(__APPLE__)
#define REASON_HAS_SOCKETS 1
#else
#define REASON_HAS_SOCKETS 0
#endif

#if REASON_HAS_SOCKETS

#include <cstddef>

namespace reason {
namespace sys {

/**
 * One-time socket hygiene after socket()/accept(): suppress SIGPIPE
 * via SO_NOSIGPIPE on platforms without MSG_NOSIGNAL.  Best effort.
 */
void netPrepareSocket(int fd);

/**
 * Send all `n` bytes (looping over partial writes, retrying EINTR,
 * SIGPIPE suppressed).  Returns true when every byte went out; false
 * on a transport error or an injected reset (errno describes the
 * failure where the OS produced one).
 */
bool netSendAll(int fd, const void *data, size_t n);

/**
 * Receive up to `n` bytes (retrying EINTR).  Returns the byte count
 * (>0), 0 on orderly EOF, or -1 on a transport error / injected
 * reset.  May return fewer bytes than asked for any reason — callers
 * must loop (FrameDecoder::feed makes that natural).
 */
long netRecv(int fd, void *data, size_t n);

/**
 * Arm SO_RCVTIMEO so a blocked receive returns (with EAGAIN) after
 * `ms` milliseconds — the idle-connection timeout of the server.
 * 0 disables.  Returns false when the socket refuses the option.
 */
bool netSetRecvTimeoutMs(int fd, unsigned ms);

/** True when errno after a -1 receive is just the SO_RCVTIMEO expiry
 *  (EAGAIN/EWOULDBLOCK) rather than a real transport failure. */
bool netRecvTimedOut();

} // namespace sys
} // namespace reason

#endif // REASON_HAS_SOCKETS

#endif // REASON_SYS_NET_H
