/**
 * @file
 * Neural-stage (LLM) optimization stack model (Sec. VII-C, "REASON
 * neural optimization"): memory-efficient attention, chunked prefill,
 * speculative decoding, FlashAttention-3 kernels, FP8 KV-cache
 * quantization, and prefix caching.
 *
 * REASON accelerates the symbolic stage; these techniques are the
 * orthogonal levers for the GPU-side neural stage.  The paper reports
 * the stack yields a 2.8-3.3x latency reduction for unique prompts and
 * 4-5x when prefixes are reused.  We model each technique as a
 * phase-specific multiplier over a prefill/decode cost split derived
 * from the device's compute and memory roofs, so the composition (and
 * the resulting shift of the end-to-end bottleneck back to the symbolic
 * stage) can be quantified.
 */

#ifndef REASON_BASELINES_NEURAL_OPT_H
#define REASON_BASELINES_NEURAL_OPT_H

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/device.h"

namespace reason {
namespace baselines {

/** LLM serving workload shape. */
struct LlmConfig
{
    /** Model weights resident in device memory (bytes). */
    double paramBytes = 14e9; // 7B parameters at fp16
    /** Dense FLOPs per processed token (~2 x params). */
    double flopsPerToken = 14e9;
    /** KV-cache bytes appended per generated token. */
    double kvBytesPerToken = 0.5e6;
    uint32_t promptTokens = 512;
    uint32_t genTokens = 128;
    /** Fraction of prompt tokens covered by a cached shared prefix. */
    double prefixReuseFraction = 0.0;
    /** Fraction of runtime spent in attention kernels. */
    double attentionFraction = 0.35;
};

/** The six modeled techniques, in the paper's order. */
enum class NeuralOpt : uint8_t
{
    MemEffAttention,    ///< PagedAttention-style KV management
    ChunkedPrefill,     ///< prefill/decode phase overlap
    SpeculativeDecoding,///< draft-and-verify token generation
    FlashAttention3,    ///< fused low-precision attention kernels
    Fp8KvCache,         ///< quantized KV cache
    PrefixCaching       ///< shared-prefix prefill skip
};

const char *neuralOptName(NeuralOpt opt);

/** All techniques in application order. */
std::vector<NeuralOpt> fullNeuralOptStack();

/** Phase-specific multipliers (< 1 is faster / smaller). */
struct OptEffect
{
    double prefillMul = 1.0;
    double decodeMul = 1.0;
    double kvBytesMul = 1.0;
};

/** Effect of a technique for a workload (PrefixCaching depends on the
 * reuse fraction; everything else is workload-independent). */
OptEffect effectOf(NeuralOpt opt, const LlmConfig &config);

/** Cost split of the neural stage. */
struct NeuralStageCost
{
    double prefillSeconds = 0.0;
    double decodeSeconds = 0.0;
    double kvBytes = 0.0;

    double totalSeconds() const { return prefillSeconds + decodeSeconds; }
};

/**
 * Unoptimized cost: prefill at the device's dense-compute roof, decode
 * bound by streaming weights + KV per token from device memory.
 */
NeuralStageCost baselineNeuralCost(const LlmConfig &config,
                                   const DeviceModel &device);

/** Cost with a stack of techniques applied multiplicatively. */
NeuralStageCost optimizedNeuralCost(const LlmConfig &config,
                                    const DeviceModel &device,
                                    const std::vector<NeuralOpt> &stack);

/** End-to-end neural-stage speedup of a stack. */
double stackSpeedup(const LlmConfig &config, const DeviceModel &device,
                    const std::vector<NeuralOpt> &stack);

} // namespace baselines
} // namespace reason

#endif // REASON_BASELINES_NEURAL_OPT_H
