/**
 * @file
 * First-order logic substrate: terms, formulas, clausification to CNF,
 * grounding to propositional SAT, unification, and a resolution prover.
 *
 * This is the logic backbone used by the LINC- and AlphaGeometry-style
 * workloads (Sec. II-C): FOL theories are clausified, then either grounded
 * over a finite domain into propositional CNF (feeding the unified DAG) or
 * refuted directly by resolution.
 */

#ifndef REASON_LOGIC_FOL_H
#define REASON_LOGIC_FOL_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "logic/cnf.h"

namespace reason {
namespace logic {

/**
 * First-order term: a variable or a function application.  Constants are
 * 0-ary function applications.  Value type; trees are small.
 */
struct Term
{
    enum class Kind : uint8_t { Var, Func };

    Kind kind = Kind::Var;
    std::string name;
    std::vector<Term> args;

    static Term var(std::string n);
    static Term func(std::string n, std::vector<Term> a = {});
    static Term constant(std::string n) { return func(std::move(n)); }

    bool isVar() const { return kind == Kind::Var; }
    bool operator==(const Term &o) const;
    std::string toString() const;
};

/** Substitution: variable name -> term. */
using Substitution = std::map<std::string, Term>;

/** Apply a substitution to a term (repeatedly, until fixpoint per var). */
Term applySubst(const Term &t, const Substitution &s);

/**
 * Most general unifier of two terms, with occurs check.
 * @return nullopt when not unifiable.
 */
std::optional<Substitution> unify(const Term &a, const Term &b,
                                  Substitution seed = {});

/** First-order literal: possibly negated predicate over terms. */
struct FolLiteral
{
    bool negated = false;
    std::string pred;
    std::vector<Term> args;

    FolLiteral negatedCopy() const;
    bool operator==(const FolLiteral &o) const;
    std::string toString() const;
};

/** First-order clause: disjunction of literals. */
using FolClause = std::vector<FolLiteral>;

class FolFormula;
using FolPtr = std::shared_ptr<const FolFormula>;

/**
 * First-order formula AST.  Immutable; build with the factory helpers.
 */
class FolFormula
{
  public:
    enum class Kind : uint8_t
    {
        Pred, Not, And, Or, Implies, Iff, ForAll, Exists
    };

    Kind kind;
    std::string name;          ///< predicate name, or quantified variable
    std::vector<Term> args;    ///< predicate arguments
    FolPtr lhs;                ///< unary/binary child, or quantifier body
    FolPtr rhs;                ///< binary second child

    std::string toString() const;

    // Factory helpers.
    static FolPtr pred(std::string name, std::vector<Term> args = {});
    static FolPtr lnot(FolPtr f);
    static FolPtr land(FolPtr a, FolPtr b);
    static FolPtr lor(FolPtr a, FolPtr b);
    static FolPtr implies(FolPtr a, FolPtr b);
    static FolPtr iff(FolPtr a, FolPtr b);
    static FolPtr forall(std::string var, FolPtr body);
    static FolPtr exists(std::string var, FolPtr body);
};

/**
 * Clausify a formula: eliminate ->/<->, push negations to literals,
 * standardize variables apart, Skolemize existentials, drop universal
 * quantifiers, and distribute disjunction over conjunction.
 *
 * @return equisatisfiable clause set.
 */
std::vector<FolClause> clausify(const FolPtr &formula);

/** Clausify a conjunction of formulas. */
std::vector<FolClause> clausify(const std::vector<FolPtr> &formulas);

/**
 * Ground a clause set over a finite domain of constants and encode as
 * propositional CNF.  Each distinct ground atom becomes one variable.
 *
 * Function symbols of arity > 0 are not expanded (Herbrand depth 0); the
 * generators in src/workloads produce function-free theories.
 */
class Grounder
{
  public:
    explicit Grounder(std::vector<std::string> domain_constants);

    /** Ground all clauses; accumulates into the atom table. */
    CnfFormula ground(const std::vector<FolClause> &clauses);

    /** Propositional variable of a ground atom; creates it if missing. */
    uint32_t atomVar(const std::string &pred,
                     const std::vector<Term> &ground_args);

    size_t numAtoms() const { return atomOfKey_.size(); }

    /** Reverse lookup: textual atom for a propositional variable. */
    const std::string &atomName(uint32_t var) const;

  private:
    void groundClause(const FolClause &clause, CnfFormula &out);

    std::vector<std::string> domain_;
    std::map<std::string, uint32_t> atomOfKey_;
    std::vector<std::string> names_;
};

/** Result of a resolution refutation attempt. */
struct ResolutionResult
{
    /** True when the empty clause was derived (theory ∪ ¬goal is unsat,
     *  i.e. the goal is entailed). */
    bool proved = false;
    /** Saturation reached without refutation within limits. */
    bool saturated = false;
    uint64_t resolutionSteps = 0;
    uint64_t generatedClauses = 0;
    uint64_t maxClauseSetSize = 0;
};

/**
 * Resolution prover with factoring, identical-clause elimination, and a
 * given-clause loop.  Proves `goal` from `axioms` by refuting
 * axioms ∪ clausify(¬goal).
 *
 * @param max_steps inference budget; Unknown result when exhausted.
 */
ResolutionResult resolutionProve(const std::vector<FolPtr> &axioms,
                                 const FolPtr &goal,
                                 uint64_t max_steps = 20000);

/** Run resolution on an explicit clause set (refutation of the set). */
ResolutionResult resolutionRefute(std::vector<FolClause> clauses,
                                  uint64_t max_steps = 20000);

} // namespace logic
} // namespace reason

#endif // REASON_LOGIC_FOL_H
