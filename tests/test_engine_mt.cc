/**
 * @file
 * Scale-out serving tests (sys::ReasonEngine with multiple dispatcher
 * threads, bounded queues, and the socket wire protocol):
 *
 *  - bit-identity: outputs match one-at-a-time submission for every
 *    dispatcher count x queue policy combination (the determinism
 *    contract shedding and scale-out must not weaken);
 *  - backpressure: a full bounded queue rejects (RejectNew) or sheds
 *    (ShedOldest) with REASON_ERR_OVERLOAD, with exact deterministic
 *    accounting when the backlog is built under pause, and the queue
 *    depth never exceeds capacity;
 *  - fairness: a flooding session cannot starve a light session —
 *    per-session lanes are drained round-robin, so the light rows
 *    start well before the flood's tail;
 *  - linger autotuning smoke: EWMAs populate and outputs stay exact;
 *  - wire protocol: encode/decode round-trips every frame type with
 *    bit-exact doubles, and malformed input (truncations, bad
 *    lengths, unknown types, random garbage) poisons the decoder
 *    instead of crashing — this file is part of the TSan/ASan CI
 *    matrix, so the concurrency paths run under the sanitizers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <vector>

#include "random_circuit.h"
#include "sys/engine.h"
#include "sys/wire.h"
#include "util/rng.h"

using namespace reason;
using namespace reason::sys;

namespace {

bool
bitEqual(double a, double b)
{
    uint64_t ba, bb;
    std::memcpy(&ba, &a, sizeof ba);
    std::memcpy(&bb, &b, sizeof bb);
    return ba == bb;
}

/** One-at-a-time engine outputs: the coalescing-free reference. */
std::vector<double>
serveOneAtATime(const pc::Circuit &circuit,
                const std::vector<pc::Assignment> &rows)
{
    ServeOptions options;
    options.maxBatch = 1;
    ReasonEngine engine(options);
    Session session = engine.createSession(circuit);
    std::vector<double> out;
    for (const pc::Assignment &x : rows)
        out.push_back(session.wait(session.submit(x))->outputs[0]);
    return out;
}

} // namespace

// ---------------------------------------------------------------------------
// Bit-identity across dispatcher counts and queue policies.
// ---------------------------------------------------------------------------

TEST(EngineMt, BitIdenticalAcrossDispatchersAndPolicies)
{
    Rng rng(901);
    pc::Circuit circuit = pc::randomCircuit(rng, 28, 2, 4, 7);
    std::vector<pc::Assignment> rows =
        pc::sampleDataset(rng, circuit, 53);
    std::vector<double> reference = serveOneAtATime(circuit, rows);

    constexpr size_t kSessions = 3;
    for (unsigned dispatchers : {1u, 2u, 4u}) {
        for (QueuePolicy policy :
             {QueuePolicy::RejectNew, QueuePolicy::ShedOldest}) {
            ServeOptions options;
            options.maxBatch = 8;
            options.dispatchers = dispatchers;
            options.queuePolicy = policy;
            options.startPaused = true;
            ReasonEngine engine(options);
            std::vector<Session> sessions;
            for (size_t s = 0; s < kSessions; ++s)
                sessions.push_back(engine.createSession(circuit));
            std::vector<RequestHandle> handles;
            for (size_t i = 0; i < rows.size(); ++i)
                handles.push_back(
                    sessions[i % kSessions].submit(rows[i]));
            engine.resume();
            for (size_t i = 0; i < rows.size(); ++i) {
                std::shared_ptr<const Request> r =
                    sessions[i % kSessions].wait(handles[i]);
                ASSERT_EQ(r->error, REASON_OK)
                    << dispatchers << " dispatchers, request " << i;
                EXPECT_TRUE(bitEqual(r->outputs[0], reference[i]))
                    << dispatchers << " dispatchers, request " << i;
            }
            EngineStats stats = engine.stats();
            EXPECT_EQ(stats.completed, rows.size());
            EXPECT_EQ(stats.executed, rows.size());
            EXPECT_EQ(stats.shedRequests, 0u);
        }
    }
}

// ---------------------------------------------------------------------------
// Backpressure and load shedding on a bounded queue.
// ---------------------------------------------------------------------------

TEST(EngineMt, RejectNewFailsOverflowWithOverloadError)
{
    Rng rng(902);
    pc::Circuit circuit = pc::randomCircuit(rng, 20, 2, 3, 6);
    std::vector<pc::Assignment> rows =
        pc::sampleDataset(rng, circuit, 24);
    std::vector<double> reference = serveOneAtATime(circuit, rows);

    const size_t capacity = rows.size() / 2;
    ServeOptions options;
    options.maxBatch = 4;
    options.dispatchers = 2;
    options.queueCapacity = capacity;
    options.queuePolicy = QueuePolicy::RejectNew;
    options.startPaused = true;
    ReasonEngine engine(options);
    Session session = engine.createSession(circuit);
    std::vector<RequestHandle> handles;
    for (const pc::Assignment &x : rows)
        handles.push_back(session.submit(x));
    // RejectNew admits the first `capacity` submissions and fails the
    // rest immediately — before resume() even runs a batch.
    for (size_t i = capacity; i < rows.size(); ++i) {
        EXPECT_TRUE(session.poll(handles[i])) << "request " << i;
        EXPECT_EQ(session.wait(handles[i])->error,
                  REASON_ERR_OVERLOAD)
            << "request " << i;
    }
    engine.resume();
    for (size_t i = 0; i < capacity; ++i) {
        std::shared_ptr<const Request> r = session.wait(handles[i]);
        ASSERT_EQ(r->error, REASON_OK) << "request " << i;
        EXPECT_TRUE(bitEqual(r->outputs[0], reference[i]))
            << "request " << i;
    }
    EngineStats stats = engine.stats();
    EXPECT_EQ(stats.shedRequests, rows.size() - capacity);
    EXPECT_LE(stats.maxQueueDepth, capacity);
    // Latency means count only the requests that actually executed;
    // instant rejections must not drag the means toward zero.
    EXPECT_EQ(stats.completed, rows.size());
    EXPECT_EQ(stats.executed, capacity);
}

TEST(EngineMt, ShedOldestKeepsNewestAndBoundsDepth)
{
    Rng rng(903);
    pc::Circuit circuit = pc::randomCircuit(rng, 20, 2, 3, 6);
    std::vector<pc::Assignment> rows =
        pc::sampleDataset(rng, circuit, 26);
    std::vector<double> reference = serveOneAtATime(circuit, rows);

    const size_t capacity = rows.size() / 2;
    ServeOptions options;
    options.maxBatch = 4;
    options.dispatchers = 2;
    options.queueCapacity = capacity;
    options.queuePolicy = QueuePolicy::ShedOldest;
    options.startPaused = true;
    ReasonEngine engine(options);
    Session session = engine.createSession(circuit);
    std::vector<RequestHandle> handles;
    for (const pc::Assignment &x : rows)
        handles.push_back(session.submit(x));
    engine.resume();
    // ShedOldest evicts the globally oldest queued request per
    // over-capacity admission, so under a paused backlog exactly the
    // first half is shed and the newest half executes.
    for (size_t i = 0; i < rows.size(); ++i) {
        std::shared_ptr<const Request> r = session.wait(handles[i]);
        if (i < rows.size() - capacity) {
            EXPECT_EQ(r->error, REASON_ERR_OVERLOAD)
                << "request " << i;
        } else {
            ASSERT_EQ(r->error, REASON_OK) << "request " << i;
            EXPECT_TRUE(bitEqual(r->outputs[0], reference[i]))
                << "request " << i;
        }
    }
    EngineStats stats = engine.stats();
    EXPECT_EQ(stats.shedRequests, rows.size() - capacity);
    EXPECT_LE(stats.maxQueueDepth, capacity);
    EXPECT_EQ(stats.completed, rows.size());
    EXPECT_EQ(stats.executed, capacity);
}

// ---------------------------------------------------------------------------
// Per-session fairness under a flooding client.
// ---------------------------------------------------------------------------

TEST(EngineMt, LightSessionNotStarvedByFloodingSession)
{
    Rng rng(904);
    pc::Circuit circuit = pc::randomCircuit(rng, 24, 2, 3, 6);
    std::vector<pc::Assignment> flood_rows =
        pc::sampleDataset(rng, circuit, 64);
    std::vector<pc::Assignment> light_rows =
        pc::sampleDataset(rng, circuit, 4);

    ServeOptions options;
    options.maxBatch = 4;
    options.dispatchers = 2;
    options.startPaused = true;
    ReasonEngine engine(options);
    Session flooder = engine.createSession(circuit);
    Session light = engine.createSession(circuit);
    std::vector<RequestHandle> flood_handles;
    for (const pc::Assignment &x : flood_rows)
        flood_handles.push_back(flooder.submit(x));
    std::vector<RequestHandle> light_handles;
    for (const pc::Assignment &x : light_rows)
        light_handles.push_back(light.submit(x));
    engine.resume();

    uint64_t light_last_start = 0;
    for (const RequestHandle &h : light_handles) {
        std::shared_ptr<const Request> r = light.wait(h);
        ASSERT_EQ(r->error, REASON_OK);
        light_last_start = std::max(light_last_start, r->startedNs);
    }
    uint64_t flood_last_start = 0;
    for (const RequestHandle &h : flood_handles) {
        std::shared_ptr<const Request> r = flooder.wait(h);
        ASSERT_EQ(r->error, REASON_OK);
        flood_last_start = std::max(flood_last_start, r->startedNs);
    }
    // Session lanes are gathered round-robin, so the light session's
    // rows ride the earliest batches even though the flooder enqueued
    // its entire backlog first; the flood's tail starts strictly
    // later.
    EXPECT_LT(light_last_start, flood_last_start)
        << "light session waited behind the flood";
}

// ---------------------------------------------------------------------------
// Coalesce-linger autotuning smoke (EWMAs populate; bits unchanged).
// ---------------------------------------------------------------------------

TEST(EngineMt, AutoLingerTunesWithoutChangingBits)
{
    Rng rng(905);
    pc::Circuit circuit = pc::randomCircuit(rng, 20, 2, 3, 6);
    std::vector<pc::Assignment> rows =
        pc::sampleDataset(rng, circuit, 40);
    std::vector<double> reference = serveOneAtATime(circuit, rows);

    ServeOptions options;
    options.maxBatch = 8;
    options.dispatchers = 2;
    options.autoLingerWindow = true;
    ReasonEngine engine(options);
    Session session = engine.createSession(circuit);
    std::vector<RequestHandle> handles;
    for (const pc::Assignment &x : rows)
        handles.push_back(session.submit(x));
    for (size_t i = 0; i < rows.size(); ++i) {
        std::shared_ptr<const Request> r = session.wait(handles[i]);
        ASSERT_EQ(r->error, REASON_OK);
        EXPECT_TRUE(bitEqual(r->outputs[0], reference[i]));
    }
    EngineStats stats = engine.stats();
    // The EWMAs have seen real traffic; the tuned linger is clamped
    // to a sane non-negative window.
    EXPECT_GT(stats.ewmaExecUs, 0.0);
    EXPECT_GE(stats.ewmaInterArrivalUs, 0.0);
    EXPECT_GE(stats.lastLingerUs, 0.0);
}

// ---------------------------------------------------------------------------
// Wire protocol: round-trip and malformed-input robustness.
// ---------------------------------------------------------------------------

TEST(WireProtocol, RoundTripsEveryFrameTypeBitExact)
{
    namespace wire = reason::sys::wire;

    wire::SubmitFrame submit;
    submit.id = 0x0123456789abcdefull;
    submit.numVars = 3;
    submit.rows = {{0u, 1u, 0xffffffffu}, {2u, 0u, 1u}};

    wire::ResultFrame result;
    result.id = 42;
    result.error = REASON_ERR_OVERLOAD;
    // Exercise bit-exact transport: negative zero, a subnormal, and a
    // quiet NaN all survive only if doubles travel as raw bits.
    result.values = {-0.0, 5e-324,
                     std::numeric_limits<double>::quiet_NaN(),
                     -123.456789};

    std::vector<uint8_t> bytes;
    wire::appendHello(bytes);
    wire::appendHelloAck(bytes);
    wire::appendSubmit(bytes, submit);
    wire::appendResult(bytes, result);

    // Feed in 3-byte chunks so every frame crosses feed() boundaries.
    wire::FrameDecoder decoder;
    std::vector<wire::Frame> frames;
    for (size_t at = 0; at < bytes.size(); at += 3) {
        decoder.feed(bytes.data() + at,
                     std::min<size_t>(3, bytes.size() - at));
        wire::Frame f;
        while (decoder.next(&f) == wire::FrameDecoder::Status::Ok)
            frames.push_back(f);
    }
    ASSERT_FALSE(decoder.poisoned());
    ASSERT_EQ(frames.size(), 4u);

    EXPECT_EQ(frames[0].type, wire::FrameType::Hello);
    EXPECT_EQ(frames[0].helloVersion, wire::kProtocolVersion);
    EXPECT_EQ(frames[1].type, wire::FrameType::HelloAck);
    EXPECT_EQ(frames[1].helloVersion, wire::kProtocolVersion);

    EXPECT_EQ(frames[2].type, wire::FrameType::Submit);
    EXPECT_EQ(frames[2].submit.id, submit.id);
    EXPECT_EQ(frames[2].submit.numVars, submit.numVars);
    EXPECT_EQ(frames[2].submit.rows, submit.rows);

    EXPECT_EQ(frames[3].type, wire::FrameType::Result);
    EXPECT_EQ(frames[3].result.id, result.id);
    EXPECT_EQ(frames[3].result.error, result.error);
    ASSERT_EQ(frames[3].result.values.size(), result.values.size());
    for (size_t i = 0; i < result.values.size(); ++i)
        EXPECT_TRUE(bitEqual(frames[3].result.values[i],
                             result.values[i]))
            << "value " << i;

    // The checksum helpers agree on the decoded values, so remote and
    // in-process runs can prove bitwise equality.
    EXPECT_EQ(wire::checksumValues(frames[3].result.values.data(),
                                   frames[3].result.values.size()),
              wire::checksumValues(result.values.data(),
                                   result.values.size()));
}

TEST(WireProtocol, MalformedFramesPoisonInsteadOfCrashing)
{
    namespace wire = reason::sys::wire;
    using Status = wire::FrameDecoder::Status;

    auto decode_all = [](const std::vector<uint8_t> &bytes) {
        wire::FrameDecoder decoder;
        decoder.feed(bytes.data(), bytes.size());
        wire::Frame f;
        Status status;
        size_t guard = 0;
        while ((status = decoder.next(&f)) == Status::Ok) {
            if (++guard >= 10000u) {
                ADD_FAILURE() << "decoder failed to consume";
                break;
            }
        }
        return status;
    };

    // Zero length: frames carry at least the type byte.
    EXPECT_EQ(decode_all({0, 0, 0, 0, 1}), Status::Malformed);
    // Length beyond kMaxFrameBytes: framing-error guard.
    EXPECT_EQ(decode_all({0xff, 0xff, 0xff, 0xff, 1}),
              Status::Malformed);
    // Unknown frame type.
    EXPECT_EQ(decode_all({1, 0, 0, 0, 99}), Status::Malformed);
    // Hello with a short payload.
    EXPECT_EQ(decode_all({3, 0, 0, 0, 1, 0, 0}), Status::Malformed);
    // Submit whose row payload disagrees with its declared shape.
    {
        std::vector<uint8_t> bytes;
        wire::SubmitFrame submit;
        submit.id = 7;
        submit.numVars = 2;
        submit.rows = {{1u, 0u}};
        wire::appendSubmit(bytes, submit);
        bytes.pop_back(); // truncate the last row value
        bytes[0] -= 1;    // keep the length prefix consistent
        EXPECT_EQ(decode_all(bytes), Status::Malformed);
    }
    // Shape attacks: a Submit header with no row payload (body is
    // type + id(8) + numRows(4) + numVars(4) = 17 bytes) must never
    // turn its declared shape into a huge allocation.
    auto shape_frame = [](uint32_t num_rows, uint32_t num_vars) {
        std::vector<uint8_t> bytes = {
            17, 0, 0, 0, uint8_t(wire::FrameType::Submit)};
        bytes.insert(bytes.end(), 8, 0); // id
        for (int i = 0; i < 4; ++i)
            bytes.push_back(uint8_t(num_rows >> (8 * i)));
        for (int i = 0; i < 4; ++i)
            bytes.push_back(uint8_t(num_vars >> (8 * i)));
        return bytes;
    };
    // numVars == 0 must not validate an arbitrary declared row count
    // against the empty payload (a 21-byte frame would otherwise
    // resize ~4G rows and likely kill the server on bad_alloc).
    EXPECT_EQ(decode_all(shape_frame(0xffffffffu, 0)),
              Status::Malformed);
    // 2^31 rows x 2^31 vars x 4 bytes wraps 64-bit size_t to zero;
    // the division-based shape check still rejects it.
    EXPECT_EQ(decode_all(shape_frame(0x80000000u, 0x80000000u)),
              Status::Malformed);
    // An empty batch (numVars set, zero rows) stays decodable.
    {
        const std::vector<uint8_t> bytes = shape_frame(0, 4);
        wire::FrameDecoder decoder;
        decoder.feed(bytes.data(), bytes.size());
        wire::Frame f;
        EXPECT_EQ(decoder.next(&f), Status::Ok);
        EXPECT_EQ(f.submit.numVars, 4u);
        EXPECT_TRUE(f.submit.rows.empty());
    }
    // A truncated valid frame is NeedMore, not Malformed.
    {
        std::vector<uint8_t> bytes;
        wire::appendHello(bytes);
        bytes.resize(bytes.size() - 2);
        EXPECT_EQ(decode_all(bytes), Status::NeedMore);
    }
    // Once poisoned, the decoder stays poisoned even after good data.
    {
        wire::FrameDecoder decoder;
        const uint8_t bad[] = {0, 0, 0, 0, 1};
        decoder.feed(bad, sizeof bad);
        wire::Frame f;
        EXPECT_EQ(decoder.next(&f), Status::Malformed);
        std::vector<uint8_t> good;
        wire::appendHello(good);
        decoder.feed(good.data(), good.size());
        EXPECT_EQ(decoder.next(&f), Status::Malformed);
        EXPECT_TRUE(decoder.poisoned());
    }
}

TEST(WireProtocol, RandomGarbageNeverCrashesTheDecoder)
{
    namespace wire = reason::sys::wire;
    using Status = wire::FrameDecoder::Status;

    Rng rng(906);
    for (int trial = 0; trial < 200; ++trial) {
        wire::FrameDecoder decoder;
        const size_t total = 1 + size_t(rng() % 512);
        std::vector<uint8_t> bytes(total);
        for (uint8_t &b : bytes)
            b = uint8_t(rng());
        size_t at = 0;
        while (at < bytes.size()) {
            const size_t chunk = std::min<size_t>(
                1 + size_t(rng() % 64), bytes.size() - at);
            decoder.feed(bytes.data() + at, chunk);
            at += chunk;
            wire::Frame f;
            Status status;
            size_t guard = 0;
            while ((status = decoder.next(&f)) == Status::Ok)
                ASSERT_LT(++guard, 10000u)
                    << "decoder failed to consume";
            if (status == Status::Malformed)
                break; // poisoned: framing is lost by contract
        }
    }
}
