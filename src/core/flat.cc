#include "core/flat.h"

#include <algorithm>

#include "util/logging.h"

namespace reason {
namespace core {

const char *
flatOpName(FlatOp op)
{
    switch (op) {
      case FlatOp::Input: return "input";
      case FlatOp::Const: return "const";
      case FlatOp::Sum: return "sum";
      case FlatOp::WeightedSum: return "wsum";
      case FlatOp::Product: return "product";
      case FlatOp::Max: return "max";
      case FlatOp::Min: return "min";
      case FlatOp::Not: return "not";
    }
    return "?";
}

size_t
FlatGraph::memoryBytes() const
{
    return ops.size() * sizeof(uint8_t) +
           edgeOffset.size() * sizeof(uint32_t) +
           edgeTarget.size() * sizeof(uint32_t) +
           edgeWeight.size() * sizeof(double) +
           inputs.size() * sizeof(inputs[0]) +
           consts.size() * sizeof(consts[0]) +
           levelOffset.size() * sizeof(uint32_t) +
           levelNodes.size() * sizeof(uint32_t);
}

void
FlatGraph::validate() const
{
    const size_t n = numNodes();
    reasonAssert(root < n, "flat graph root out of range");
    reasonAssert(edgeOffset.size() == n + 1, "edge offset size mismatch");
    reasonAssert(edgeOffset.front() == 0 && edgeOffset.back() == numEdges(),
                 "edge offsets must span the edge array");
    reasonAssert(edgeWeight.size() == edgeTarget.size(),
                 "edge weights must align with edge targets");
    for (size_t i = 0; i < n; ++i) {
        reasonAssert(edgeOffset[i] <= edgeOffset[i + 1],
                     "edge offsets must be monotone");
        for (uint32_t e = edgeOffset[i]; e < edgeOffset[i + 1]; ++e)
            reasonAssert(edgeTarget[e] < i,
                         "operands must precede consumers");
    }
    size_t op_nodes = 0;
    for (uint8_t op : ops)
        if (FlatOp(op) != FlatOp::Input && FlatOp(op) != FlatOp::Const)
            ++op_nodes;
    reasonAssert(levelNodes.size() == op_nodes,
                 "level schedule must cover every operation node");
}

FlatGraph
lowerDag(const Dag &dag)
{
    dag.validate();
    const size_t n = dag.numNodes();
    FlatGraph g;
    g.ops.resize(n);
    g.edgeOffset.reserve(n + 1);
    g.edgeOffset.push_back(0);
    g.edgeTarget.reserve(dag.numEdges());
    g.edgeWeight.reserve(dag.numEdges());
    g.numInputs = dag.numInputs();
    g.root = dag.root();

    std::vector<uint32_t> level(n, 0);
    uint32_t max_level = 0;
    for (size_t i = 0; i < n; ++i) {
        const DagNode &node = dag.node(NodeId(i));
        FlatOp op;
        switch (node.op) {
          case DagOp::Input:
            op = FlatOp::Input;
            g.inputs.emplace_back(uint32_t(i), node.tag);
            break;
          case DagOp::Const:
            op = FlatOp::Const;
            g.consts.emplace_back(uint32_t(i), node.value);
            break;
          case DagOp::Sum:
            op = node.weights.empty() ? FlatOp::Sum : FlatOp::WeightedSum;
            break;
          case DagOp::Product: op = FlatOp::Product; break;
          case DagOp::Max: op = FlatOp::Max; break;
          case DagOp::Min: op = FlatOp::Min; break;
          case DagOp::Not: op = FlatOp::Not; break;
          default: panic("unknown DagOp in lowering");
        }
        g.ops[i] = uint8_t(op);
        for (size_t k = 0; k < node.inputs.size(); ++k) {
            g.edgeTarget.push_back(node.inputs[k]);
            g.edgeWeight.push_back(
                node.weights.empty() ? 1.0 : node.weights[k]);
        }
        g.edgeOffset.push_back(uint32_t(g.edgeTarget.size()));

        if (!node.inputs.empty()) {
            uint32_t lvl = 0;
            for (NodeId c : node.inputs)
                lvl = std::max(lvl, level[c] + 1);
            level[i] = lvl;
            max_level = std::max(max_level, lvl);
        }
    }

    // Wavefront schedule over operation nodes: counting sort by level.
    // Leaves (level 0 inputs/consts) are excluded — they are pre-filled.
    std::vector<uint32_t> count(max_level + 2, 0);
    for (size_t i = 0; i < n; ++i) {
        FlatOp op = FlatOp(g.ops[i]);
        if (op == FlatOp::Input || op == FlatOp::Const)
            continue;
        ++count[level[i] + 1];
    }
    g.levelOffset.resize(max_level + 2, 0);
    for (size_t l = 1; l < count.size(); ++l)
        g.levelOffset[l] = g.levelOffset[l - 1] + count[l];
    // Trim empty leading level 0 (op nodes always have level >= 1).
    g.levelNodes.resize(g.levelOffset.back());
    std::vector<uint32_t> cursor(g.levelOffset.begin(),
                                 g.levelOffset.end() - 1);
    for (size_t i = 0; i < n; ++i) {
        FlatOp op = FlatOp(g.ops[i]);
        if (op == FlatOp::Input || op == FlatOp::Const)
            continue;
        g.levelNodes[cursor[level[i]]++] = uint32_t(i);
    }
    g.validate();
    return g;
}

Evaluator::Evaluator(const FlatGraph &graph)
    : graph_(graph), values_(graph.numNodes(), 0.0)
{
    // Constants never change: write them once, skip them per call.
    for (auto [node, value] : graph_.consts)
        values_[node] = value;
}

std::span<const double>
Evaluator::evaluate(std::span<const double> inputs)
{
    reasonAssert(inputs.size() >= graph_.numInputs,
                 "not enough input values supplied");
    double *val = values_.data();
    for (auto [node, tag] : graph_.inputs)
        val[node] = inputs[tag];

    const uint8_t *ops = graph_.ops.data();
    const uint32_t *off = graph_.edgeOffset.data();
    const uint32_t *tgt = graph_.edgeTarget.data();
    const double *wgt = graph_.edgeWeight.data();
    const size_t n = graph_.numNodes();
    for (size_t i = 0; i < n; ++i) {
        const uint32_t lo = off[i];
        const uint32_t hi = off[i + 1];
        switch (FlatOp(ops[i])) {
          case FlatOp::Input:
          case FlatOp::Const:
            break; // pre-filled
          case FlatOp::Sum: {
            double acc = 0.0;
            for (uint32_t e = lo; e < hi; ++e)
                acc += val[tgt[e]];
            val[i] = acc;
            break;
          }
          case FlatOp::WeightedSum: {
            double acc = 0.0;
            for (uint32_t e = lo; e < hi; ++e)
                acc += wgt[e] * val[tgt[e]];
            val[i] = acc;
            break;
          }
          case FlatOp::Product: {
            double acc = 1.0;
            for (uint32_t e = lo; e < hi; ++e)
                acc *= val[tgt[e]];
            val[i] = acc;
            break;
          }
          case FlatOp::Max: {
            double acc = val[tgt[lo]];
            for (uint32_t e = lo + 1; e < hi; ++e)
                acc = std::max(acc, val[tgt[e]]);
            val[i] = acc;
            break;
          }
          case FlatOp::Min: {
            double acc = val[tgt[lo]];
            for (uint32_t e = lo + 1; e < hi; ++e)
                acc = std::min(acc, val[tgt[e]]);
            val[i] = acc;
            break;
          }
          case FlatOp::Not:
            val[i] = 1.0 - val[tgt[lo]];
            break;
        }
    }
    return {values_.data(), values_.size()};
}

double
Evaluator::evaluateRoot(std::span<const double> inputs)
{
    return evaluate(inputs)[graph_.root];
}

void
Evaluator::evaluateBatch(std::span<const double> rows, size_t num_rows,
                         std::span<double> roots_out)
{
    const size_t stride = graph_.numInputs;
    reasonAssert(rows.size() >= num_rows * stride,
                 "batch input buffer too small");
    reasonAssert(roots_out.size() >= num_rows,
                 "batch output buffer too small");
    for (size_t r = 0; r < num_rows; ++r)
        roots_out[r] =
            evaluate(rows.subspan(r * stride, stride))[graph_.root];
}

} // namespace core
} // namespace reason
