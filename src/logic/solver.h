/**
 * @file
 * Conflict-driven clause learning (CDCL) SAT solver.
 *
 * Implements the algorithm REASON maps onto hardware (Sec. II-C, V-D):
 * two-watched-literal Boolean constraint propagation, first-UIP conflict
 * analysis with clause learning and non-chronological backtracking, VSIDS
 * branching with phase saving, Luby restarts, and activity-driven learned
 * clause deletion.  Also serves as the functional reference and the CPU
 * baseline for the symbolic engine.
 */

#ifndef REASON_LOGIC_SOLVER_H
#define REASON_LOGIC_SOLVER_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "logic/cnf.h"

namespace reason {
namespace logic {

/** Result of a satisfiability query. */
enum class SolveResult : uint8_t { Sat, Unsat, Unknown };

/** Observable search-effort statistics, consumed by the timing models. */
struct SolverStats
{
    uint64_t decisions = 0;
    uint64_t propagations = 0;
    uint64_t conflicts = 0;
    uint64_t learnedClauses = 0;
    uint64_t learnedLiterals = 0;
    uint64_t restarts = 0;
    uint64_t deletedClauses = 0;
    uint64_t maxDecisionLevel = 0;
    /** Clause-database literal visits during propagation (memory proxy). */
    uint64_t literalVisits = 0;
};

/** Tunable solver knobs. */
struct SolverConfig
{
    /** Initial conflicts between restarts; scaled by the Luby sequence. */
    uint64_t restartBase = 128;
    /** Decay applied to all variable activities after each conflict. */
    double varDecay = 0.95;
    /** Decay applied to clause activities after each conflict. */
    double clauseDecay = 0.999;
    /** Start reducing the learned-clause DB beyond this many clauses. */
    uint64_t learntLimitBase = 4096;
    /** Give up after this many conflicts; 0 means never. */
    uint64_t conflictBudget = 0;
    /** Prefer saved phases when picking decision polarity. */
    bool phaseSaving = true;
};

/**
 * CDCL solver over a CnfFormula.
 *
 * Usage: construct with a formula, optionally add more clauses, then call
 * solve() or solve(assumptions).  After Sat, model() holds a complete
 * satisfying assignment.  The solver may be re-solved with different
 * assumptions; learned clauses persist across calls.
 */
class CdclSolver
{
  public:
    explicit CdclSolver(const CnfFormula &formula,
                        SolverConfig config = {});

    /** Solve with no assumptions. */
    SolveResult solve();

    /**
     * Solve under the given assumption literals (cube-and-conquer
     * "conquer" phase).  Assumptions are retracted afterwards.
     */
    SolveResult solve(const std::vector<Lit> &assumptions);

    /** Satisfying assignment after a Sat result (index = var). */
    const std::vector<bool> &model() const { return model_; }

    const SolverStats &stats() const { return stats_; }

    uint32_t numVars() const { return numVars_; }

    /** Number of clauses currently in the database (original + learned). */
    size_t numClauses() const { return clauses_.size(); }

  private:
    struct InternalClause
    {
        std::vector<Lit> lits;
        double activity = 0.0;
        bool learned = false;
    };

    /** Watcher entry: clause index plus blocker literal fast path. */
    struct Watcher
    {
        uint32_t clauseIdx;
        Lit blocker;
    };

    static constexpr uint32_t kNoReason = ~0u;

    // --- setup ---
    void attachClause(uint32_t idx);

    // --- core search ---
    SolveResult search();
    /** @return conflicting clause index, or kNoReason if no conflict. */
    uint32_t propagate();
    void analyze(uint32_t confl, std::vector<Lit> &learnt,
                 uint32_t &bt_level);
    void enqueue(Lit l, uint32_t reason_idx);
    void backtrack(uint32_t level);
    Lit pickBranchLit();
    void reduceLearnedDb();
    bool lubyRestartDue() const;
    static double luby(uint64_t i);

    // --- VSIDS ---
    void bumpVar(uint32_t var);
    void decayActivities();

    LBool litValue(Lit l) const;

    uint32_t numVars_;
    SolverConfig config_;
    std::vector<InternalClause> clauses_;
    size_t numOriginalClauses_ = 0;
    std::vector<std::vector<Watcher>> watches_; // indexed by lit code
    std::vector<LBool> assigns_;                // indexed by var
    std::vector<bool> savedPhase_;              // indexed by var
    std::vector<uint32_t> level_;               // indexed by var
    std::vector<uint32_t> reason_;              // indexed by var
    std::vector<Lit> trail_;
    std::vector<size_t> trailLim_;
    size_t qhead_ = 0;
    std::vector<double> activity_;
    double varInc_ = 1.0;
    double clauseInc_ = 1.0;
    std::vector<bool> seen_;
    std::vector<bool> model_;
    std::vector<Lit> assumptions_;
    uint64_t conflictsSinceRestart_ = 0;
    uint64_t restartLimit_ = 0;
    SolverStats stats_;
    bool unsatOnConstruction_ = false;
};

/**
 * One-shot convenience: solve a formula and optionally return the model.
 */
SolveResult solveCnf(const CnfFormula &formula,
                     std::vector<bool> *model = nullptr,
                     SolverStats *stats = nullptr);

} // namespace logic
} // namespace reason

#endif // REASON_LOGIC_SOLVER_H
