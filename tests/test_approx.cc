/**
 * @file
 * Differential harness for the approximate/anytime tier
 * (pc::ApproxEvaluator, pc::staticUpperBounds,
 * pc::estimateLogEvidence) over the adversarial 200-circuit corpus
 * (tests/random_circuit.h: shared sub-DAGs, zero weights and
 * all-zero-weight sums, non-smooth/non-decomposable structure):
 *
 *  - containment: the certified interval [lo, hi] contains the exact
 *    answer of *both* reference engines (seed walker and flat CSR) on
 *    every circuit x budget x query — zero violations tolerated;
 *  - monotonicity: growing the budget only prunes more, so lo weakly
 *    decreases and hi weakly increases along a budget sweep;
 *  - exact-mode identity: budget 0 is bit-identical to the exact
 *    engine, with lo == hi == value;
 *  - determinism: rebuilding the evaluator and re-running the query
 *    reproduces every result bit;
 *  - guide mode: posterior-guided pruning (calibration flows) keeps
 *    the interval sound;
 *  - importance sampling: fixed-seed reproducibility and statistical
 *    agreement with the exact evidence on a smooth random circuit.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "pc/approx.h"
#include "pc/flat_pc.h"
#include "pc/pc.h"
#include "random_circuit.h"
#include "util/numeric.h"
#include "util/parallel.h"
#include "util/rng.h"

using namespace reason;

namespace {

constexpr int kNumCircuits = 200;

/** Budget sweep, ascending: index 0 is the exact tier. */
constexpr double kBudgets[] = {0.0, 1e-3, 1e-2, 0.1, 0.5, 1.0};

bool
bitsEqual(double x, double y)
{
    return std::bit_cast<uint64_t>(x) == std::bit_cast<uint64_t>(y);
}

/**
 * Containment with log-zero awareness: a -inf exact answer must be
 * covered too (lo must be -inf, hi anything >=).
 */
::testing::AssertionResult
contains(const pc::ApproxResult &r, double exact)
{
    if (r.lo <= exact && exact <= r.hi)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "exact " << exact << " outside [" << r.lo << ", "
           << r.hi << "]";
}

/** Slack tolerance for cross-budget comparisons: the interval padding
 *  is ~1e-9 relative, so monotonicity holds up to that noise. */
double
monotoneTol(double x, double y)
{
    const double mag =
        std::max(std::isinf(x) ? 0.0 : std::fabs(x),
                 std::isinf(y) ? 0.0 : std::fabs(y));
    return 1e-7 * (1.0 + mag);
}

} // namespace

TEST(ApproxDifferential, BoundsContainExactOnCorpus)
{
    Rng rng(20260801);
    util::ThreadPool serial(1);
    size_t violations = 0;
    size_t checks = 0;
    for (int trial = 0; trial < kNumCircuits; ++trial) {
        pc::Circuit c = testutil::randomTestCircuit(rng);
        pc::FlatCircuit flat(c);
        pc::CircuitEvaluator eval(flat, &serial);
        const std::vector<pc::Assignment> rows =
            testutil::randomPartialAssignments(rng, c, 6, 0.3);
        for (double budget : kBudgets) {
            pc::ApproxOptions opts;
            opts.budget = budget;
            pc::ApproxEvaluator approx(flat, opts);
            for (const pc::Assignment &x : rows) {
                const double exact_flat = eval.logLikelihood(x);
                const double exact_seed = c.logLikelihood(x);
                const pc::ApproxResult r = approx.query(x);
                ++checks;
                if (!(r.lo <= exact_flat && exact_flat <= r.hi) ||
                    !(r.lo <= r.value && r.value <= r.hi))
                    ++violations;
                EXPECT_TRUE(contains(r, exact_flat))
                    << "trial " << trial << " budget " << budget;
                // The seed walker computes in a different order;
                // containment must still hold up to its agreement
                // tolerance with the flat engine (<= 1e-10 per
                // test_flat_random).
                if (exact_seed != kLogZero) {
                    EXPECT_TRUE(r.lo - 1e-9 <= exact_seed &&
                                exact_seed <= r.hi + 1e-9)
                        << "seed walker " << exact_seed
                        << " outside [" << r.lo << ", " << r.hi
                        << "], trial " << trial;
                }
            }
        }
    }
    EXPECT_EQ(violations, 0u);
    // 200 circuits x 6 budgets x 6 rows.
    EXPECT_EQ(checks, size_t(kNumCircuits) * 6 * 6);
}

TEST(ApproxDifferential, IntervalsWidenMonotonicallyWithBudget)
{
    Rng rng(20260802);
    util::ThreadPool serial(1);
    for (int trial = 0; trial < kNumCircuits; ++trial) {
        pc::Circuit c = testutil::randomTestCircuit(rng);
        pc::FlatCircuit flat(c);
        const std::vector<pc::Assignment> rows =
            testutil::randomPartialAssignments(rng, c, 4, 0.3);
        std::vector<pc::ApproxEvaluator> evals;
        for (double budget : kBudgets) {
            pc::ApproxOptions opts;
            opts.budget = budget;
            evals.emplace_back(flat, opts);
        }
        for (const pc::Assignment &x : rows) {
            pc::ApproxResult prev = evals[0].query(x);
            for (size_t b = 1; b < evals.size(); ++b) {
                const pc::ApproxResult r = evals[b].query(x);
                // Larger budget prunes a superset of edges: the kept
                // mass shrinks (lo down) and the certified remainder
                // grows (hi up).
                EXPECT_LE(r.lo, prev.lo + monotoneTol(r.lo, prev.lo))
                    << "trial " << trial << " budget " << kBudgets[b];
                EXPECT_GE(r.hi, prev.hi - monotoneTol(r.hi, prev.hi))
                    << "trial " << trial << " budget " << kBudgets[b];
                prev = r;
            }
        }
    }
}

TEST(ApproxDifferential, BudgetZeroIsBitIdenticalToExact)
{
    Rng rng(20260803);
    util::ThreadPool serial(1);
    for (int trial = 0; trial < kNumCircuits; ++trial) {
        pc::Circuit c = testutil::randomTestCircuit(rng);
        pc::FlatCircuit flat(c);
        pc::CircuitEvaluator eval(flat, &serial);
        pc::ApproxEvaluator approx(flat); // default budget 0
        EXPECT_TRUE(approx.isExact());
        const std::vector<pc::Assignment> rows =
            testutil::randomPartialAssignments(rng, c, 6, 0.3);
        for (const pc::Assignment &x : rows) {
            const double exact = eval.logLikelihood(x);
            const pc::ApproxResult r = approx.query(x);
            EXPECT_TRUE(bitsEqual(r.value, exact)) << "trial " << trial;
            EXPECT_TRUE(bitsEqual(r.lo, exact)) << "trial " << trial;
            EXPECT_TRUE(bitsEqual(r.hi, exact)) << "trial " << trial;
        }
    }
}

TEST(ApproxDifferential, RebuildAndRequeryAreDeterministic)
{
    Rng rng(20260804);
    for (int trial = 0; trial < 50; ++trial) {
        pc::Circuit c = testutil::randomTestCircuit(rng);
        pc::FlatCircuit flat(c);
        const std::vector<pc::Assignment> rows =
            testutil::randomPartialAssignments(rng, c, 4, 0.3);
        for (double budget : {1e-2, 0.5}) {
            pc::ApproxOptions opts;
            opts.budget = budget;
            pc::ApproxEvaluator a(flat, opts);
            pc::ApproxEvaluator b(flat, opts);
            EXPECT_EQ(a.keptNodes(), b.keptNodes());
            EXPECT_EQ(a.keptEdges(), b.keptEdges());
            for (const pc::Assignment &x : rows) {
                const pc::ApproxResult ra1 = a.query(x);
                const pc::ApproxResult ra2 = a.query(x);
                const pc::ApproxResult rb = b.query(x);
                EXPECT_TRUE(bitsEqual(ra1.value, ra2.value));
                EXPECT_TRUE(bitsEqual(ra1.lo, ra2.lo));
                EXPECT_TRUE(bitsEqual(ra1.hi, ra2.hi));
                EXPECT_TRUE(bitsEqual(ra1.value, rb.value));
                EXPECT_TRUE(bitsEqual(ra1.lo, rb.lo));
                EXPECT_TRUE(bitsEqual(ra1.hi, rb.hi));
            }
        }
    }
}

TEST(ApproxDifferential, QueryBatchMatchesSingleQueries)
{
    Rng rng(20260805);
    for (int trial = 0; trial < 50; ++trial) {
        pc::Circuit c = testutil::randomTestCircuit(rng);
        pc::FlatCircuit flat(c);
        pc::ApproxOptions opts;
        opts.budget = 0.1;
        pc::ApproxEvaluator approx(flat, opts);
        const std::vector<pc::Assignment> rows =
            testutil::randomPartialAssignments(rng, c, 7, 0.3);
        std::vector<pc::ApproxResult> batch;
        approx.queryBatch(rows, batch);
        ASSERT_EQ(batch.size(), rows.size());
        for (size_t i = 0; i < rows.size(); ++i) {
            const pc::ApproxResult r = approx.query(rows[i]);
            EXPECT_TRUE(bitsEqual(batch[i].value, r.value));
            EXPECT_TRUE(bitsEqual(batch[i].lo, r.lo));
            EXPECT_TRUE(bitsEqual(batch[i].hi, r.hi));
        }
    }
}

TEST(ApproxDifferential, PosteriorGuidedPruningStaysSound)
{
    Rng rng(20260806);
    util::ThreadPool serial(1);
    for (int trial = 0; trial < 100; ++trial) {
        pc::Circuit c = testutil::randomTestCircuit(rng);
        pc::FlatCircuit flat(c);
        pc::CircuitEvaluator eval(flat, &serial);
        // Calibration flows from a held-out sample set drive the
        // pruning decisions; soundness must not depend on how good
        // (or stale) the guide is.
        const std::vector<pc::Assignment> calib =
            testutil::randomPartialAssignments(rng, c, 8, 0.2);
        const pc::DatasetFlows flows =
            pc::accumulateDatasetFlows(flat, calib, {}, &serial);
        const std::vector<pc::Assignment> rows =
            testutil::randomPartialAssignments(rng, c, 4, 0.3);
        for (double budget : {0.05, 0.5}) {
            pc::ApproxOptions opts;
            opts.budget = budget;
            opts.guideEdgeFlow = &flows.edgeFlow;
            pc::ApproxEvaluator approx(flat, opts);
            for (const pc::Assignment &x : rows) {
                const double exact = eval.logLikelihood(x);
                EXPECT_TRUE(contains(approx.query(x), exact))
                    << "trial " << trial << " budget " << budget;
            }
        }
    }
}

TEST(ApproxDifferential, StaticUpperBoundsDominateQueries)
{
    Rng rng(20260807);
    util::ThreadPool serial(1);
    for (int trial = 0; trial < 100; ++trial) {
        pc::Circuit c = testutil::randomTestCircuit(rng);
        pc::FlatCircuit flat(c);
        pc::CircuitEvaluator eval(flat, &serial);
        const std::vector<double> ub = pc::staticUpperBounds(flat);
        ASSERT_EQ(ub.size(), flat.numNodes());
        const std::vector<pc::Assignment> rows =
            testutil::randomPartialAssignments(rng, c, 6, 0.4);
        for (const pc::Assignment &x : rows) {
            const double exact = eval.logLikelihood(x);
            // The static bound is assignment-free: it must dominate
            // every query, including fully marginalized ones.
            EXPECT_GE(ub[flat.root] + 1e-12, exact)
                << "trial " << trial;
        }
    }
}

TEST(ApproxImportanceSampling, FixedSeedIsReproducible)
{
    Rng rng(123);
    pc::Circuit c = pc::randomCircuit(rng, 16, 2, 4, 8);
    pc::FlatCircuit flat(c);
    pc::Assignment evidence(c.numVars(), pc::kMissing);
    evidence[0] = 1;
    evidence[3] = 0;
    const pc::LogEvidenceEstimate a =
        pc::estimateLogEvidence(flat, evidence, 5000, 42);
    const pc::LogEvidenceEstimate b =
        pc::estimateLogEvidence(flat, evidence, 5000, 42);
    EXPECT_TRUE(bitsEqual(a.logZ, b.logZ));
    EXPECT_TRUE(bitsEqual(a.stdError, b.stdError));
    EXPECT_EQ(a.samples, b.samples);
    // A different seed must actually resample.
    const pc::LogEvidenceEstimate d =
        pc::estimateLogEvidence(flat, evidence, 5000, 43);
    EXPECT_FALSE(bitsEqual(a.logZ, d.logZ));
}

TEST(ApproxImportanceSampling, AgreesWithExactEvidence)
{
    Rng rng(7);
    // Smooth/decomposable generator: likelihood weighting is unbiased
    // here (the estimator's documented contract).
    pc::Circuit c = pc::randomCircuit(rng, 24, 2, 4, 8);
    pc::FlatCircuit flat(c);
    util::ThreadPool serial(1);
    pc::CircuitEvaluator eval(flat, &serial);
    pc::Assignment evidence(c.numVars(), pc::kMissing);
    evidence[1] = 0;
    evidence[5] = 1;
    evidence[9] = 1;
    const double exact = eval.logLikelihood(evidence);
    const pc::LogEvidenceEstimate est =
        pc::estimateLogEvidence(flat, evidence, 20000, 2026);
    ASSERT_EQ(est.samples, size_t(20000));
    EXPECT_GT(est.stdError, 0.0);
    const double tol = std::max(5.0 * est.stdError, 0.05);
    EXPECT_NEAR(est.logZ, exact, tol);
}
