/**
 * @file
 * Tests for the portable 8-lane SIMD layer (util/simd.h) and the
 * canonical-kernel contract it underwrites:
 *
 *  - pack ops and the expNonPositive/logPositive pair are bit-exact
 *    against their scalar-lane twins on every backend (including the
 *    REASON_FORCE_SCALAR fallback — the CI leg builds this file both
 *    ways);
 *  - the transcendentals meet their documented accuracy contracts
 *    against libm;
 *  - masked loads/stores, fixed-shape reductions, logSumExpMasked,
 *    expMulOrZero, and addInto behave exactly as specified;
 *  - batched circuit evaluation is bit-identical to the single-row
 *    walk for every batch size (tail/remainder lanes) and thread
 *    count, and stays within 1e-10 of the seed reference walker.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "pc/flat_pc.h"
#include "pc/pc.h"
#include "util/numeric.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/simd_dispatch.h"

using namespace reason;

namespace {

uint64_t
bits(double x)
{
    return std::bit_cast<uint64_t>(x);
}

/** Relative error in units in the last place of the reference. */
double
ulpError(double got, double want)
{
    if (got == want)
        return 0.0;
    const double ulp = std::ldexp(1.0, std::ilogb(want) - 52);
    return std::fabs(got - want) / ulp;
}

std::vector<pc::Assignment>
randomAssignments(Rng &rng, const pc::Circuit &c, size_t count,
                  double missing_prob)
{
    std::vector<pc::Assignment> xs(count);
    for (auto &x : xs) {
        x.resize(c.numVars());
        for (uint32_t v = 0; v < c.numVars(); ++v)
            x[v] = rng.bernoulli(missing_prob)
                       ? pc::kMissing
                       : uint32_t(rng.uniformInt(0, c.arity() - 1));
    }
    return xs;
}

} // namespace

TEST(SimdPack, LaneOpsMatchScalarBitwise)
{
    Rng rng(11);
    for (int iter = 0; iter < 2000; ++iter) {
        double a[simd::kLanes], b[simd::kLanes], out[simd::kLanes];
        for (size_t i = 0; i < simd::kLanes; ++i) {
            a[i] = rng.uniformReal(-1e3, 1e3);
            b[i] = rng.uniformReal(-1e3, 1e3);
            if (rng.bernoulli(0.1))
                a[i] = kLogZero;
        }
        const simd::Pack pa = simd::load(a);
        const simd::Pack pb = simd::load(b);

        simd::store(out, simd::add(pa, pb));
        for (size_t i = 0; i < simd::kLanes; ++i)
            EXPECT_EQ(bits(out[i]), bits(a[i] + b[i]));
        simd::store(out, simd::sub(pa, pb));
        for (size_t i = 0; i < simd::kLanes; ++i)
            EXPECT_EQ(bits(out[i]), bits(a[i] - b[i]));
        simd::store(out, simd::mul(pa, pb));
        for (size_t i = 0; i < simd::kLanes; ++i)
            EXPECT_EQ(bits(out[i]), bits(a[i] * b[i]));
        simd::store(out, simd::div(pa, pb));
        for (size_t i = 0; i < simd::kLanes; ++i)
            EXPECT_EQ(bits(out[i]), bits(a[i] / b[i]));
        simd::store(out, simd::max(pa, pb));
        for (size_t i = 0; i < simd::kLanes; ++i)
            EXPECT_EQ(out[i], a[i] > b[i] ? a[i] : b[i]);
        simd::store(out, simd::min(pa, pb));
        for (size_t i = 0; i < simd::kLanes; ++i)
            EXPECT_EQ(out[i], a[i] < b[i] ? a[i] : b[i]);
        simd::store(out, simd::select(simd::cmpGt(pa, pb), pa, pb));
        for (size_t i = 0; i < simd::kLanes; ++i)
            EXPECT_EQ(out[i], a[i] > b[i] ? a[i] : b[i]);
    }
}

TEST(SimdPack, ExpNonPositiveBitExactWithScalarTwin)
{
    Rng rng(13);
    for (int iter = 0; iter < 20000; ++iter) {
        double in[simd::kLanes], out[simd::kLanes];
        for (size_t i = 0; i < simd::kLanes; ++i) {
            in[i] = rng.uniformReal(-750.0, 0.3);
            if (rng.bernoulli(0.05))
                in[i] = kLogZero; // clamp region
            if (rng.bernoulli(0.05))
                in[i] = 0.0;
        }
        simd::store(out, simd::expNonPositive(simd::load(in)));
        for (size_t i = 0; i < simd::kLanes; ++i)
            EXPECT_EQ(bits(out[i]), bits(fastExpNonPositive(in[i])))
                << "x=" << in[i];
    }
    // Exactness anchors of the accuracy contract.
    double x[simd::kLanes] = {0.0, -1.0, -0.5, -708.0,
                              kLogZero, -1e-300, -20.0, -100.0};
    double out[simd::kLanes];
    simd::store(out, simd::expNonPositive(simd::load(x)));
    EXPECT_EQ(out[0], 1.0); // exp(0) must be exactly 1
    EXPECT_GT(out[4], 0.0); // clamped, never flushed to zero
}

TEST(SimdPack, LogPositiveBitExactWithScalarTwinAndAccurate)
{
    Rng rng(17);
    double max_ulp = 0.0;
    for (int iter = 0; iter < 20000; ++iter) {
        double in[simd::kLanes], out[simd::kLanes];
        for (size_t i = 0; i < simd::kLanes; ++i) {
            switch (iter % 3) {
              case 0: // the logsumexp accumulator regime: [1, fan-in]
                in[i] = 1.0 + rng.uniformReal(0.0, 4000.0);
                break;
              case 1: // tiny positives from clamped exp sums
                in[i] = 5e-308 * (1.0 + rng.uniformReal(0.0, 1.0));
                break;
              default: // broad normal range
                in[i] = std::ldexp(1.0 + rng.uniformReal(0.0, 1.0),
                                   int(rng.uniformInt(-900, 900)));
                break;
            }
        }
        simd::store(out, simd::logPositive(simd::load(in)));
        for (size_t i = 0; i < simd::kLanes; ++i) {
            EXPECT_EQ(bits(out[i]), bits(simd::fastLogPositive(in[i])))
                << "x=" << in[i];
            const double want = std::log(in[i]);
            if (std::fabs(want) > 1e-12)
                max_ulp = std::max(max_ulp, ulpError(out[i], want));
        }
    }
    // Documented contract: < 2 ulp over positive finite normals.
    EXPECT_LT(max_ulp, 2.0);
    // log(1) must be exactly +0 (the single-term logsumexp identity).
    EXPECT_EQ(bits(simd::fastLogPositive(1.0)), bits(0.0));
}

TEST(SimdPack, ReductionsUseTheFixedTreeShape)
{
    double v[simd::kLanes] = {1e16, 1.0, -1e16, 1.0, 0.5, 0.25, -0.5,
                              2.0};
    const simd::Pack p = simd::load(v);
    const double want = ((v[0] + v[1]) + (v[2] + v[3])) +
                        ((v[4] + v[5]) + (v[6] + v[7]));
    EXPECT_EQ(bits(simd::reduceAdd(p)), bits(want));
    EXPECT_EQ(simd::reduceMax(p), 1e16);
    EXPECT_EQ(simd::reduceMin(p), -1e16);
}

TEST(SimdPack, MaskedLoadStoreTouchOnlyLiveLanes)
{
    double src[simd::kLanes] = {1, 2, 3, 4, 5, 6, 7, 8};
    for (size_t n = 0; n <= simd::kLanes; ++n) {
        double out[simd::kLanes];
        simd::store(out, simd::loadN(src, n, -9.0));
        for (size_t i = 0; i < simd::kLanes; ++i)
            EXPECT_EQ(out[i], i < n ? src[i] : -9.0) << "n=" << n;
        double sink[simd::kLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
        simd::storeN(sink, n, simd::load(src));
        for (size_t i = 0; i < simd::kLanes; ++i)
            EXPECT_EQ(sink[i], i < n ? src[i] : 0.0) << "n=" << n;
    }
}

TEST(SimdKernels, LogSumExpMaskedMatchesLogAddChain)
{
    Rng rng(19);
    double max_diff = 0.0;
    for (int iter = 0; iter < 5000; ++iter) {
        const size_t n = size_t(rng.uniformInt(0, 25));
        std::vector<double> xs(n);
        for (auto &x : xs) {
            x = rng.uniformReal(-60.0, 0.0);
            if (rng.bernoulli(0.3))
                x = kLogZero; // must act as an exact identity
        }
        double chain = kLogZero;
        for (double x : xs)
            chain = logAdd(chain, x);
        const double lse = simd::logSumExpMasked(xs.data(), n);
        if (chain == kLogZero) {
            EXPECT_EQ(lse, kLogZero) << "n=" << n;
            continue;
        }
        max_diff = std::max(max_diff, std::fabs(lse - chain));
    }
    EXPECT_LT(max_diff, 1e-13);

    // Single-term exactness: LSE({t}) == t bit for bit (the identity
    // the derivative gather's fan-in-1 fast path relies on).
    for (double t : {-3.25, 0.0, -700.0, kLogZero}) {
        double buf[2] = {t, kLogZero};
        EXPECT_EQ(bits(simd::logSumExpMasked(buf, 1)), bits(t));
        EXPECT_EQ(bits(simd::logSumExpMasked(buf, 2)), bits(t));
    }
    EXPECT_EQ(simd::logSumExpMasked(nullptr, 0), kLogZero);
}

TEST(SimdKernels, ExpMulOrZeroMasksExactly)
{
    Rng rng(23);
    for (size_t n : {size_t(1), size_t(5), size_t(8), size_t(19)}) {
        std::vector<double> args(n), scale(n), out(n);
        for (size_t i = 0; i < n; ++i) {
            args[i] = rng.bernoulli(0.3) ? kLogZero
                                         : rng.uniformReal(-50.0, 0.0);
            scale[i] = rng.uniformReal(0.0, 2.0);
        }
        simd::expMulOrZero(args.data(), scale.data(), out.data(), n);
        for (size_t i = 0; i < n; ++i) {
            const double want =
                args[i] == kLogZero
                    ? 0.0
                    : fastExpNonPositive(args[i]) * scale[i];
            EXPECT_EQ(bits(out[i]), bits(want)) << "lane " << i;
        }
    }
}

TEST(SimdKernels, AddIntoMatchesScalarLoop)
{
    Rng rng(27);
    for (size_t n : {size_t(0), size_t(3), size_t(8), size_t(29)}) {
        std::vector<double> dst(n), src(n), want(n);
        for (size_t i = 0; i < n; ++i) {
            dst[i] = rng.uniformReal(-5.0, 5.0);
            src[i] = rng.uniformReal(-5.0, 5.0);
            want[i] = dst[i] + src[i];
        }
        simd::addInto(dst.data(), src.data(), n);
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(bits(dst[i]), bits(want[i]));
    }
}

// ---------------------------------------------------------------------------
// Runtime ISA dispatch (util/simd_dispatch.h): every kernel table the
// host can run — the compile-time baseline plus any CPUID-gated
// wide-ISA tables the binary carries — must agree bit for bit on the
// same inputs, and the active table must be one of them.
// ---------------------------------------------------------------------------

TEST(SimdDispatch, AllRunnableKernelTablesAgreeBitwise)
{
    const simd::KernelTable *tables[8];
    const size_t count = simd::runnableKernelTables(tables, 8);
    ASSERT_GE(count, 1u);
    // Baseline first, and it is the compile-time backend.
    EXPECT_STREQ(tables[0]->isa, simd::isaName());

    Rng rng(41);
    for (int iter = 0; iter < 500; ++iter) {
        const size_t n = size_t(rng.uniformInt(0, 40));
        std::vector<double> xs(std::max<size_t>(n, 1));
        std::vector<double> scale(xs.size());
        for (size_t i = 0; i < n; ++i) {
            xs[i] = rng.bernoulli(0.25) ? kLogZero
                                        : rng.uniformReal(-80.0, 0.0);
            scale[i] = rng.uniformReal(0.0, 2.0);
        }
        const size_t fanin = 1 + n % 16;
        std::vector<double> terms(fanin * simd::kLanes);
        for (auto &t : terms)
            t = rng.bernoulli(0.2) ? kLogZero
                                   : rng.uniformReal(-60.0, 0.0);

        const double lse0 = tables[0]->logSumExpMasked(xs.data(), n);
        std::vector<double> emz0(xs.size());
        tables[0]->expMulOrZero(xs.data(), scale.data(), emz0.data(),
                                n);
        std::vector<double> add0(xs.begin(), xs.end());
        tables[0]->addInto(add0.data(), scale.data(), n);
        double slb0[simd::kLanes];
        tables[0]->sumLayerBlockStaged(fanin, terms.data(), slb0);

        for (size_t t = 1; t < count; ++t) {
            EXPECT_EQ(bits(tables[t]->logSumExpMasked(xs.data(), n)),
                      bits(lse0))
                << tables[t]->isa;
            std::vector<double> emz(xs.size());
            tables[t]->expMulOrZero(xs.data(), scale.data(),
                                    emz.data(), n);
            std::vector<double> add(xs.begin(), xs.end());
            tables[t]->addInto(add.data(), scale.data(), n);
            double slb[simd::kLanes];
            tables[t]->sumLayerBlockStaged(fanin, terms.data(), slb);
            for (size_t i = 0; i < n; ++i) {
                EXPECT_EQ(bits(emz[i]), bits(emz0[i]))
                    << tables[t]->isa << " lane " << i;
                EXPECT_EQ(bits(add[i]), bits(add0[i]))
                    << tables[t]->isa << " lane " << i;
            }
            for (size_t i = 0; i < simd::kLanes; ++i)
                EXPECT_EQ(bits(slb[i]), bits(slb0[i]))
                    << tables[t]->isa << " lane " << i;
        }
    }
}

TEST(SimdDispatch, ActiveTableIsARunnableTable)
{
    const simd::KernelTable *tables[8];
    const size_t count = simd::runnableKernelTables(tables, 8);
    const simd::KernelTable &active = simd::activeKernels();
    EXPECT_STREQ(active.isa, simd::activeIsaName());
    bool found = false;
    for (size_t i = 0; i < count; ++i)
        found = found || tables[i] == &active;
    EXPECT_TRUE(found);
#if defined(REASON_FORCE_SCALAR)
    // The scalar CI leg carries no wide tables by design.
    EXPECT_EQ(count, 1u);
    EXPECT_STREQ(active.isa, "scalar");
#endif
}

TEST(SimdProvenance, IsaNameAndFeaturesAreReported)
{
    const char *isa = simd::isaName();
    ASSERT_NE(isa, nullptr);
    EXPECT_GT(simd::nativeLanes(), 0u);
#if defined(REASON_FORCE_SCALAR)
    EXPECT_STREQ(isa, "scalar");
    EXPECT_EQ(simd::nativeLanes(), 1u);
#endif
    ASSERT_NE(simd::cpuFeatures(), nullptr);
    EXPECT_GT(std::string(simd::cpuFeatures()).size(), 0u);
}

// ---------------------------------------------------------------------------
// The canonical-kernel contract on a real circuit: every batch shape
// (tails included) and thread count must reproduce the single-row
// walk bit for bit, and the whole family must stay within 1e-10 of
// the seed reference walker.
// ---------------------------------------------------------------------------

TEST(SimdCircuit, EveryBatchShapeBitIdenticalToSingleRowWalk)
{
    Rng rng(31);
    pc::Circuit c = pc::randomCircuit(rng, 48, 3, 4, 8);
    pc::FlatCircuit flat(c);
    auto xs = randomAssignments(rng, c, 21, 0.25);

    util::ThreadPool serial(1);
    pc::CircuitEvaluator row_eval(flat, &serial);
    std::vector<double> want(xs.size());
    for (size_t i = 0; i < xs.size(); ++i)
        want[i] = row_eval.logLikelihood(xs[i]);

    for (unsigned threads : {1u, 2u, 4u}) {
        util::ThreadPool pool(threads);
        pc::CircuitEvaluator eval(flat, &pool);
        // Every batch size from a lone row through full blocks plus
        // every tail remainder.
        for (size_t n = 1; n <= xs.size(); ++n) {
            std::vector<pc::Assignment> rows(xs.begin(),
                                             xs.begin() + n);
            std::vector<double> got(n);
            eval.logLikelihoodBatch(rows, got);
            for (size_t i = 0; i < n; ++i)
                EXPECT_EQ(bits(got[i]), bits(want[i]))
                    << "batch=" << n << " row=" << i
                    << " threads=" << threads;
        }
    }
}

TEST(SimdCircuit, BatchStaysWithinDifferentialContractOfSeedWalker)
{
    Rng rng(37);
    pc::Circuit c = pc::randomCircuit(rng, 40, 2, 4, 8);
    pc::FlatCircuit flat(c);
    auto xs = randomAssignments(rng, c, 33, 0.2);

    util::ThreadPool serial(1);
    pc::CircuitEvaluator eval(flat, &serial);
    std::vector<double> got(xs.size());
    eval.logLikelihoodBatch(xs, got);
    for (size_t i = 0; i < xs.size(); ++i) {
        const double want = c.logLikelihood(xs[i]);
        if (want == kLogZero)
            EXPECT_EQ(got[i], kLogZero);
        else
            EXPECT_NEAR(got[i], want, 1e-10) << "row " << i;
    }
}
