/**
 * @file
 * sys::SocketServer — the wire-protocol socket front-end of the
 * serving engine, extracted from the `reason_cli serve --listen` demo
 * into a reusable, drainable server.
 *
 * One server owns a loopback TCP listener and a thread per accepted
 * connection.  Each connection speaks the sys/wire protocol (v3):
 *
 *  - **Handshake.**  The client's Hello carries its protocol version
 *    and clientId.  The server always answers HelloAck with *its own*
 *    version; on a mismatch it closes the connection right after the
 *    ack, so the client can surface an explicit version-mismatch
 *    error instead of a mute disconnect.
 *  - **Submits** become per-row engine submissions through the
 *    connection's private session (the queue's fair scheduler sees
 *    each connection as one tenant) and one Result frame in request
 *    order.  The v3 relative deadline is anchored at receipt, so
 *    queued rows expire under load exactly as in-process deadlines
 *    do.  Semantic violations answer an error Result; framing
 *    violations drop the connection.
 *  - **Ping** frames echo back as Pong — the heartbeat clients use to
 *    probe a quiet connection.
 *  - **Idempotent retry.**  For clients with a nonzero clientId the
 *    server keeps the encoded bytes of recently answered *successful*
 *    Results per (clientId, queryId).  A reconnecting client that
 *    re-sends an already-answered id gets the cached bytes back —
 *    byte-identical, without re-execution — which is what makes
 *    client retry loops idempotent.  Error results are never cached,
 *    so a retry after an expiry or overload genuinely re-attempts.
 *  - **Graceful drain.**  stop() closes admission via
 *    ReasonEngine::drain (queued work finishes within the configured
 *    deadline; the rest expires), then shuts the read side of every
 *    live connection so handlers answer what is in flight and exit,
 *    and joins every thread.  Wired to SIGINT/SIGTERM by the CLI.
 *
 * All socket I/O goes through sys/net — EINTR-safe, SIGPIPE-free, and
 * fault-injectable (sys/fault), which is how the fault_recovery gate
 * drives this server through resets, torn frames, and stalls.
 */

#ifndef REASON_SYS_SERVER_H
#define REASON_SYS_SERVER_H

#include "sys/net.h"

#if REASON_HAS_SOCKETS

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "pc/flat_pc.h"
#include "sys/engine.h"
#include "sys/wire.h"

namespace reason {
namespace sys {

/** Configuration of a SocketServer. */
struct ServerOptions
{
    /** TCP port on loopback; 0 binds an ephemeral port (see port()). */
    uint16_t port = 0;
    /** Largest accuracy budget accepted over the wire; < 0 = uncapped. */
    double maxBudget = -1.0;
    /**
     * Idle-connection timeout in milliseconds (SO_RCVTIMEO): a
     * connection that stays silent this long is dropped, so stalled
     * peers cannot pin handler threads forever.  0 disables.
     */
    unsigned idleTimeoutMs = 0;
    /** Drain deadline of stop(), relative nanoseconds (default 5 s). */
    uint64_t drainDeadlineNs = 5'000'000'000ull;
    /**
     * Per-client cap on cached duplicate-suppression results (FIFO
     * eviction).  Bounds server memory against a client that never
     * acknowledges by simply sending fresh ids.
     */
    size_t duplicateCacheCap = 1024;
};

/** Monotone counters of a SocketServer (snapshot). */
struct ServerStats
{
    uint64_t connections = 0;
    /** Hellos answered-and-closed for a protocol version mismatch. */
    uint64_t versionRejects = 0;
    /** Submits answered from the duplicate cache without execution. */
    uint64_t duplicatesSuppressed = 0;
    /** Submit frames executed (duplicates excluded). */
    uint64_t submits = 0;
};

/**
 * The socket front-end.  Construct, start(), and eventually stop();
 * the destructor stops too.  The engine and lowering must outlive the
 * server.  Thread-safe: accept and connection handlers run on
 * internal threads.
 */
class SocketServer
{
  public:
    SocketServer(ReasonEngine &engine,
                 std::shared_ptr<const pc::FlatCircuit> lowering,
                 const ServerOptions &options);
    ~SocketServer();

    SocketServer(const SocketServer &) = delete;
    SocketServer &operator=(const SocketServer &) = delete;

    /**
     * Bind the loopback listener and start accepting.  Returns false
     * (with *error set) when the socket cannot be created or bound.
     */
    bool start(std::string *error);

    /** The bound port (after start(); resolves port 0 requests). */
    uint16_t port() const { return port_; }

    /**
     * Graceful shutdown: drain the engine (admission closes, queued
     * work finishes within ServerOptions::drainDeadlineNs, the rest
     * expires), answer what is in flight on every connection, then
     * close them and join every thread.  Idempotent.  Returns true
     * when the drain finished without expiring queued work.
     */
    bool stop();

    ServerStats stats() const;

  private:
    struct DuplicateCache
    {
        /** queryId -> encoded successful Result frame bytes. */
        std::unordered_map<uint64_t, std::vector<uint8_t>> results;
        /** FIFO of cached ids for bounded eviction. */
        std::deque<uint64_t> order;
    };

    void acceptLoop();
    void handleConnection(int fd);
    void connectionLoop(int fd, Session &session);
    /** Execute one Submit into an encoded Result appended to out. */
    void handleSubmit(Session &session, const wire::SubmitFrame &frame,
                      uint64_t clientId, std::vector<uint8_t> &out);

    ReasonEngine &engine_;
    std::shared_ptr<const pc::FlatCircuit> lowering_;
    ServerOptions options_;

    int listenFd_ = -1;
    uint16_t port_ = 0;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> stopped_{false};
    std::thread acceptThread_;

    mutable std::mutex mutex_;
    std::vector<std::thread> handlers_;
    /** Live connection fds (for SHUT_RD at stop). */
    std::vector<int> activeFds_;
    std::unordered_map<uint64_t, DuplicateCache> duplicateCaches_;
    ServerStats stats_;
};

} // namespace sys
} // namespace reason

#endif // REASON_HAS_SOCKETS

#endif // REASON_SYS_SERVER_H
