#include "workloads/timing.h"

#include "core/builders.h"
#include "core/pipeline.h"
#include "logic/implication_graph.h"
#include "util/logging.h"

namespace reason {
namespace workloads {

SymbolicOps
measureSymbolicOps(const TaskBundle &bundle, bool optimized)
{
    SymbolicOps ops;

    // --- SAT suites -----------------------------------------------------
    for (const auto &instance : bundle.sat.instances) {
        const logic::CnfFormula *formula = &instance;
        logic::CnfFormula pruned_storage;
        if (optimized) {
            logic::CnfPruneResult pr = logic::pruneCnf(instance);
            pruned_storage = std::move(pr.pruned);
            formula = &pruned_storage;
        }
        logic::SolverConfig cfg;
        cfg.conflictBudget = bundle.sat.conflictBudget;
        logic::CdclSolver solver(*formula, cfg);
        solver.solve();
        const logic::SolverStats &st = solver.stats();
        ops.sat.decisions += st.decisions;
        ops.sat.propagations += st.propagations;
        ops.sat.conflicts += st.conflicts;
        ops.sat.learnedClauses += st.learnedClauses;
        ops.sat.learnedLiterals += st.learnedLiterals;
        ops.sat.restarts += st.restarts;
        ops.sat.literalVisits += st.literalVisits;
        for (const auto &c : formula->clauses())
            ops.clauseDbBytes += 8 + 4 * c.size();
    }

    // Regularization canonicalizes but does not change the arithmetic
    // work, so operation counting skips it (the compiler re-fuses the
    // intermediate two-input nodes anyway).
    core::PipelineConfig opt_cfg;
    opt_cfg.regularize = false;

    // --- PC suites --------------------------------------------------------
    for (const auto &circuit : bundle.pcs.classCircuits) {
        // Work unit: node evaluations plus edge accumulations — edges
        // are what flow pruning removes, so both must be counted.
        size_t nodes;
        if (optimized) {
            core::OptimizedKernel k = core::optimizeCircuit(
                circuit, bundle.pcs.calibration, opt_cfg);
            nodes = k.statsAfter.numNodes + k.statsAfter.numEdges;
        } else {
            core::DagStats st = core::buildFromCircuit(circuit).stats();
            nodes = st.numNodes + st.numEdges;
        }
        ops.pcDagNodes +=
            uint64_t(nodes) * bundle.pcs.queries.size();
        ops.probBytes += double(nodes) *
                         double(bundle.pcs.queries.size()) * 12.0;
    }
    ops.pcQueries =
        bundle.pcs.queries.size() * bundle.pcs.classCircuits.size();

    // --- HMM suites -------------------------------------------------------
    if (bundle.hasHmm()) {
        // All queries share the model; the unrolled DAG size depends on
        // sequence length, which is constant per suite.
        const hmm::Sequence &probe = bundle.hmms.queries.front();
        size_t nodes;
        if (optimized) {
            core::OptimizedKernel k = core::optimizeHmm(
                bundle.hmms.model, bundle.hmms.calibration, probe,
                opt_cfg);
            nodes = k.statsAfter.numNodes + k.statsAfter.numEdges;
        } else {
            core::DagStats st =
                core::buildFromHmm(bundle.hmms.model, probe).stats();
            nodes = st.numNodes + st.numEdges;
        }
        ops.hmmDagNodes +=
            uint64_t(nodes) * bundle.hmms.queries.size();
        ops.hmmQueries = bundle.hmms.queries.size();
        ops.probBytes += double(nodes) *
                         double(bundle.hmms.queries.size()) * 12.0;
    }
    return ops;
}

} // namespace workloads
} // namespace reason
