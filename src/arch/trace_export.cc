#include "arch/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "arch/dram.h"

namespace reason {
namespace arch {

namespace {

/** Stable unit ordering matching Fig. 9's row layout. */
const char *const kUnitOrder[] = {"broadcast", "reduce",   "fifo",
                                  "wl",        "dma",      "dram",
                                  "control",   "conflict"};

int
unitRank(const std::string &unit)
{
    for (size_t i = 0; i < std::size(kUnitOrder); ++i)
        if (unit == kUnitOrder[i])
            return int(i);
    return int(std::size(kUnitOrder)); // unknown units sort last
}

/** JSON string escaping (quotes, backslashes, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
renderTimeline(const std::vector<TraceEvent> &trace, uint64_t max_cycles)
{
    if (trace.empty())
        return "(empty trace)\n";

    uint64_t t0 = trace.front().cycle;
    uint64_t t1 = trace.front().cycle;
    for (const TraceEvent &e : trace) {
        t0 = std::min(t0, e.cycle);
        t1 = std::max(t1, e.cycle);
    }
    uint64_t span = std::min(t1 - t0 + 1, max_cycles);

    // Rows: unit -> cycle -> event index marker (a..z, then '*').
    std::map<int, std::string> unit_of_rank;
    std::map<std::string, std::string> rows;
    for (const TraceEvent &e : trace) {
        unit_of_rank.emplace(unitRank(e.unit), e.unit);
        rows.emplace(e.unit, std::string(span, '.'));
    }

    std::ostringstream legend;
    char marker = 'a';
    for (size_t i = 0; i < trace.size(); ++i) {
        const TraceEvent &e = trace[i];
        uint64_t col = e.cycle - t0;
        if (col >= span)
            continue; // clipped
        char m = marker <= 'z' ? marker : '*';
        std::string &row = rows[e.unit];
        row[col] = row[col] == '.' ? m : '*'; // '*' = multiple events
        legend << "  " << (marker <= 'z' ? std::string(1, m) : "*")
               << "  T" << e.cycle << " [" << e.unit << "] " << e.detail
               << "\n";
        if (marker <= 'z')
            ++marker;
    }

    std::ostringstream os;
    os << "cycle     " << "T" << t0 << " .. T" << (t0 + span - 1);
    if (t1 - t0 + 1 > span)
        os << " (clipped of T" << t1 << ")";
    os << "\n";
    size_t width = 0;
    for (const auto &[rank, unit] : unit_of_rank)
        width = std::max(width, unit.size());
    for (const auto &[rank, unit] : unit_of_rank) {
        os << unit << std::string(width - unit.size() + 2, ' ') << "|"
           << rows[unit] << "|\n";
    }
    os << "\nevents:\n" << legend.str();
    return os.str();
}

std::string
toChromeTrace(const std::vector<TraceEvent> &trace)
{
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < trace.size(); ++i) {
        const TraceEvent &e = trace[i];
        if (i)
            os << ",";
        os << "\n  {\"name\": \"" << jsonEscape(e.detail)
           << "\", \"cat\": \"" << jsonEscape(e.unit)
           << "\", \"ph\": \"i\", \"s\": \"t\", \"ts\": " << e.cycle
           << ", \"pid\": 1, \"tid\": " << (unitRank(e.unit) + 1) << "}";
    }
    // Thread-name metadata so tracks are labeled by unit.
    std::map<int, std::string> seen;
    for (const TraceEvent &e : trace)
        seen.emplace(unitRank(e.unit), e.unit);
    for (const auto &[rank, unit] : seen) {
        os << ","; // `seen` is nonempty only when `trace` was
        os << "\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
           << "\"tid\": " << (rank + 1) << ", \"args\": {\"name\": \""
           << jsonEscape(unit) << "\"}}";
    }
    os << "\n]\n";
    return os.str();
}

std::vector<TraceEvent>
dramSummaryEvents(const DramModel &dram, uint64_t cycle)
{
    std::vector<TraceEvent> out;
    {
        std::ostringstream d;
        d << "dram totals: " << dram.bursts() << " bursts, "
          << dram.rowHits() << " hits / " << dram.rowMisses()
          << " misses / " << dram.rowConflicts() << " conflicts"
          << ", hit rate "
          << uint64_t(dram.rowHitRate() * 100.0 + 0.5) << "%";
        out.push_back({cycle, "dram", d.str()});
    }
    const DramAddressMap &map = dram.map();
    for (uint32_t ch = 0; ch < map.channels(); ++ch) {
        for (uint32_t b = 0; b < map.banksPerChannel(); ++b) {
            const DramBankCounters &bc = dram.bankCounters(ch, b);
            if (bc.hits + bc.misses + bc.conflicts == 0)
                continue;
            std::ostringstream d;
            d << "c" << ch << ".b" << b << ": " << bc.hits << " hits, "
              << bc.misses << " misses, " << bc.conflicts
              << " conflicts";
            out.push_back({cycle, "dram", d.str()});
        }
    }
    return out;
}

std::vector<TraceEvent>
mergeTraces(const std::vector<std::vector<TraceEvent>> &traces)
{
    std::vector<TraceEvent> merged;
    for (const auto &t : traces)
        merged.insert(merged.end(), t.begin(), t.end());
    std::stable_sort(merged.begin(), merged.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.cycle < b.cycle;
                     });
    return merged;
}

} // namespace arch
} // namespace reason
