/**
 * @file
 * Flat CSR adapter for probabilistic circuits: the log-domain companion
 * of core/flat.h (REASON Sec. IV-A applied to the PC substrate).
 *
 * `Circuit::evaluate` walks per-node child vectors and heap-allocates a
 * full log-value buffer on every call; it also re-computes log(weight)
 * and log(dist) on every visit.  Every repeated-pass query —
 * likelihoods over a dataset, EM flows, entropy estimates, marginal
 * sweeps — pays that per sample.  `FlatCircuit` lowers the circuit once
 * into contiguous arrays with *pre-computed* edge log-weights and leaf
 * log-distributions; `CircuitEvaluator` and `FlowAccumulator` then run
 * upward/downward passes over reusable scratch, allocation-free and
 * bit-identical to the reference walkers.
 */

#ifndef REASON_PC_FLAT_PC_H
#define REASON_PC_FLAT_PC_H

#include <cstdint>
#include <span>
#include <vector>

#include "pc/pc.h"

namespace reason {
namespace pc {

/** CSR lowering of a Circuit with log-space constants baked in. */
class FlatCircuit
{
  public:
    enum NodeType : uint8_t { kLeaf = 0, kSum = 1, kProduct = 2 };

    explicit FlatCircuit(const Circuit &circuit);

    size_t numNodes() const { return types.size(); }
    size_t numEdges() const { return edgeTarget.size(); }
    size_t numLeaves() const { return leafVar.size(); }

    /** Per-node type (NodeType). */
    std::vector<uint8_t> types;
    /** CSR child offsets; size numNodes()+1. */
    std::vector<uint32_t> edgeOffset;
    /** Child node ids, order preserved. */
    std::vector<uint32_t> edgeTarget;
    /**
     * Per-edge log(weight) for sum edges with weight > 0, kLogZero for
     * non-positive weights (evaluators skip those) and non-sum edges.
     */
    std::vector<double> edgeLogWeight;
    /** Per-node leaf slot (dense leaf index), kInvalidNode otherwise. */
    std::vector<uint32_t> leafSlot;
    /** Per-leaf-slot variable index. */
    std::vector<uint32_t> leafVar;
    /** Packed per-leaf log distributions: [slot * arity + value]. */
    std::vector<double> leafLogDist;

    uint32_t numVars = 0;
    uint32_t arity = 0;
    uint32_t root = kInvalidNode;
};

/**
 * Allocation-free log-domain evaluator.  Matches Circuit::evaluate /
 * Circuit::logLikelihood exactly (same operation order and expressions).
 * The referenced FlatCircuit must outlive the evaluator.
 */
class CircuitEvaluator
{
  public:
    explicit CircuitEvaluator(const FlatCircuit &flat);

    /**
     * Upward pass; returns per-node log values valid until the next
     * evaluate call.  kMissing variables are marginalized out.
     */
    std::span<const double> evaluate(const Assignment &x);

    /** log P(x), reusing internal scratch. */
    double logLikelihood(const Assignment &x);

    /**
     * Batched log-likelihoods: one output per assignment.  Rows are
     * processed in blocks of kBlock laid out structure-of-arrays
     * (value[node][row]), so every operand load fills a whole cache
     * line and the per-edge loops vectorize across rows; the tail uses
     * the scalar path.  Zero allocations once warm.
     */
    void logLikelihoodBatch(const std::vector<Assignment> &xs,
                            std::span<double> out);

    /** Rows per SoA block of the batched path (one cache line). */
    static constexpr size_t kBlock = 8;

    const FlatCircuit &flat() const { return flat_; }
    const std::vector<double> &values() const { return logv_; }

  private:
    /** Evaluate kBlock rows into the SoA block scratch. */
    void evaluateBlock(const Assignment *rows, double *out);

    const FlatCircuit &flat_;
    std::vector<double> logv_;
    /** Per-sum-node term scratch (max fan-in), avoids a second gather. */
    std::vector<double> terms_;
    /** SoA scratch of the batched path: [node * kBlock + row]. */
    std::vector<double> blockVal_;
    /** Term scratch of the batched path: [edge-in-node * kBlock + row]. */
    std::vector<double> blockTerms_;
};

/**
 * Log-space backward (derivative) pass over the flat circuit, writing
 * log dRoot/dv_n into `logd` (resized to numNodes).  `logv` must be the
 * upward pass for the same assignment.  Matches pc::logDerivatives.
 */
void logDerivativesInto(const FlatCircuit &flat,
                        std::span<const double> logv,
                        std::vector<double> &logd);

/**
 * Streaming top-down circuit-flow accumulator (Sec. IV-B): one upward
 * and one downward pass per sample over reused scratch.  Replaces the
 * per-sample EdgeFlows allocation pattern of accumulateFlows/emTrain.
 */
class FlowAccumulator
{
  public:
    explicit FlowAccumulator(const FlatCircuit &flat);

    /** Accumulate the flows of one (possibly partial) assignment. */
    void add(const Assignment &x);

    size_t count() const { return count_; }
    /** Total edge flows, CSR-aligned with FlatCircuit::edgeTarget. */
    const std::vector<double> &edgeFlow() const { return edgeTotal_; }
    /** Total per-node flows. */
    const std::vector<double> &nodeFlow() const { return nodeTotal_; }
    /**
     * Total leaf flow attributed to the observed value, packed as
     * [leaf slot * arity + value]; the EM leaf statistic.
     */
    const std::vector<double> &leafValueFlow() const { return leafTotal_; }

  private:
    const FlatCircuit &flat_;
    CircuitEvaluator eval_;
    /** Per-sample downward flow scratch. */
    std::vector<double> flow_;
    std::vector<double> edgeTotal_;
    std::vector<double> nodeTotal_;
    std::vector<double> leafTotal_;
    size_t count_ = 0;
};

} // namespace pc
} // namespace reason

#endif // REASON_PC_FLAT_PC_H
