#include "util/table.h"

#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace reason {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    reasonAssert(!header_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    reasonAssert(row.size() == header_.size(),
                 "row arity must match header");
    rows_.push_back(std::move(row));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::percent(double frac, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, frac * 100.0);
    return buf;
}

std::string
Table::ratio(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", precision, v);
    return buf;
}

std::string
Table::toString() const
{
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto render_row = [&](const std::vector<std::string> &row) {
        std::ostringstream os;
        for (size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " | ");
            os << row[c];
            os << std::string(widths[c] - row[c].size(), ' ');
        }
        os << " |\n";
        return os.str();
    };

    std::ostringstream os;
    os << render_row(header_);
    os << "|";
    for (size_t c = 0; c < header_.size(); ++c)
        os << std::string(widths[c] + 2, '-') << "|";
    os << "\n";
    for (const auto &row : rows_)
        os << render_row(row);
    return os.str();
}

void
Table::print(const std::string &caption) const
{
    if (!caption.empty())
        std::printf("%s\n", caption.c_str());
    std::printf("%s", toString().c_str());
    std::fflush(stdout);
}

} // namespace reason
