/**
 * @file
 * Tests for the propositional logic substrate: literals, CNF, DIMACS,
 * the CDCL solver (validated against brute force on random instance
 * sweeps), DPLL with lookahead, cube-and-conquer, and implication-graph
 * pruning (validated by model-count preservation).
 */

#include <gtest/gtest.h>

#include "logic/cnf.h"
#include "logic/dpll.h"
#include "logic/implication_graph.h"
#include "logic/solver.h"
#include "util/rng.h"

using namespace reason;
using namespace reason::logic;

TEST(Lit, EncodingRoundTrip)
{
    Lit a = Lit::make(3, false);
    EXPECT_EQ(a.var(), 3u);
    EXPECT_FALSE(a.negated());
    EXPECT_TRUE((~a).negated());
    EXPECT_EQ((~a).var(), 3u);
    EXPECT_EQ(~~a, a);
    EXPECT_EQ(a.toDimacs(), 4);
    EXPECT_EQ((~a).toDimacs(), -4);
    EXPECT_EQ(Lit::fromDimacs(4), a);
    EXPECT_EQ(Lit::fromDimacs(-4), ~a);
}

TEST(Cnf, EvaluateBasic)
{
    CnfFormula f(2);
    f.addClause({1, 2});   // x0 | x1
    f.addClause({-1, 2});  // ~x0 | x1
    EXPECT_TRUE(f.evaluate({true, true}));
    EXPECT_TRUE(f.evaluate({false, true}));
    EXPECT_FALSE(f.evaluate({true, false}));
}

TEST(Cnf, DimacsRoundTrip)
{
    Rng rng(5);
    CnfFormula f = randomKSat(rng, 12, 40, 3);
    CnfFormula g = CnfFormula::parseDimacs(f.toDimacs());
    EXPECT_EQ(g.numVars(), f.numVars());
    ASSERT_EQ(g.numClauses(), f.numClauses());
    for (size_t i = 0; i < f.numClauses(); ++i)
        EXPECT_EQ(g.clause(i), f.clause(i));
}

TEST(Cnf, BruteForceCountsModels)
{
    CnfFormula f(2);
    f.addClause({1, 2});
    // Models: 01, 10, 11 -> 3 of 4.
    EXPECT_EQ(f.bruteForceCountModels(), 3u);
}

TEST(Cnf, PlantedInstancesAreSatisfiable)
{
    Rng rng(77);
    for (int i = 0; i < 10; ++i) {
        std::vector<bool> hidden;
        CnfFormula f = plantedKSat(rng, 30, 120, 3, &hidden);
        EXPECT_TRUE(f.evaluate(hidden));
    }
}

TEST(Cnf, PigeonholeShape)
{
    CnfFormula f = pigeonhole(3);
    EXPECT_EQ(f.numVars(), 4u * 3u);
    // 4 "somewhere" clauses + 3 * C(4,2)=18 exclusivity clauses.
    EXPECT_EQ(f.numClauses(), 4u + 18u);
}

TEST(Cdcl, SimpleSatAndModel)
{
    CnfFormula f(3);
    f.addClause({1, 2});
    f.addClause({-1, 3});
    f.addClause({-2, -3});
    std::vector<bool> model;
    EXPECT_EQ(solveCnf(f, &model), SolveResult::Sat);
    EXPECT_TRUE(f.evaluate(model));
}

TEST(Cdcl, EmptyClauseIsUnsat)
{
    CnfFormula f(1);
    f.addClause(Clause{});
    EXPECT_EQ(solveCnf(f), SolveResult::Unsat);
}

TEST(Cdcl, UnitConflictIsUnsat)
{
    CnfFormula f(1);
    f.addClause({1});
    f.addClause({-1});
    EXPECT_EQ(solveCnf(f), SolveResult::Unsat);
}

TEST(Cdcl, PigeonholeUnsat)
{
    for (uint32_t holes : {3u, 4u, 5u}) {
        SolverStats stats;
        EXPECT_EQ(solveCnf(pigeonhole(holes), nullptr, &stats),
                  SolveResult::Unsat);
        EXPECT_GT(stats.conflicts, 0u);
    }
}

TEST(Cdcl, AssumptionsRestrictSolutions)
{
    CnfFormula f(2);
    f.addClause({1, 2});
    CdclSolver solver(f);
    EXPECT_EQ(solver.solve({Lit::make(0, true)}), SolveResult::Sat);
    EXPECT_TRUE(solver.model()[1]); // ~x0 forces x1
    // Contradictory assumptions.
    EXPECT_EQ(solver.solve({Lit::make(0, true), Lit::make(1, true)}),
              SolveResult::Unsat);
    // Solver remains usable without assumptions.
    EXPECT_EQ(solver.solve(), SolveResult::Sat);
}

TEST(Cdcl, ConflictBudgetReturnsUnknown)
{
    SolverConfig cfg;
    cfg.conflictBudget = 1;
    CdclSolver solver(pigeonhole(7), cfg);
    EXPECT_EQ(solver.solve(), SolveResult::Unknown);
}

TEST(Cdcl, StatsArePopulated)
{
    Rng rng(123);
    CnfFormula f = randomKSat(rng, 40, 170, 3);
    SolverStats stats;
    solveCnf(f, nullptr, &stats);
    EXPECT_GT(stats.propagations, 0u);
    EXPECT_GT(stats.literalVisits, 0u);
}

/** Property sweep: CDCL agrees with brute force on random instances. */
class CdclRandom : public ::testing::TestWithParam<int>
{
};

TEST_P(CdclRandom, MatchesBruteForce)
{
    Rng rng(GetParam() * 7919 + 13);
    // Near the phase transition so both SAT and UNSAT appear.
    uint32_t vars = 10 + GetParam() % 6;
    uint32_t clauses = static_cast<uint32_t>(4.3 * vars);
    CnfFormula f = randomKSat(rng, vars, clauses, 3);
    bool expect_sat = f.bruteForceSat();
    std::vector<bool> model;
    SolveResult r = solveCnf(f, &model);
    ASSERT_NE(r, SolveResult::Unknown);
    EXPECT_EQ(r == SolveResult::Sat, expect_sat);
    if (r == SolveResult::Sat)
        EXPECT_TRUE(f.evaluate(model));
}

INSTANTIATE_TEST_SUITE_P(Sweep, CdclRandom, ::testing::Range(0, 40));

TEST(Dpll, SolvesSmallInstances)
{
    Rng rng(55);
    for (int i = 0; i < 10; ++i) {
        CnfFormula f = randomKSat(rng, 12, 50, 3);
        DpllSolver dpll(f);
        bool expect_sat = f.bruteForceSat();
        EXPECT_EQ(dpll.solve() == SolveResult::Sat, expect_sat);
    }
}

TEST(Dpll, LookaheadDetectsForcedLiterals)
{
    CnfFormula f(3);
    f.addClause({1});      // x0 forced
    f.addClause({-1, 2});  // then x1 forced
    DpllSolver dpll(f);
    EXPECT_EQ(dpll.solve(), SolveResult::Sat);
    EXPECT_TRUE(dpll.model()[0]);
    EXPECT_TRUE(dpll.model()[1]);
}

/** Cube-and-conquer must agree with plain CDCL. */
class CubeConquer : public ::testing::TestWithParam<int>
{
};

TEST_P(CubeConquer, EquivalentToCdcl)
{
    Rng rng(GetParam() * 104729 + 7);
    uint32_t vars = 14 + GetParam() % 8;
    uint32_t clauses = static_cast<uint32_t>(4.2 * vars);
    CnfFormula f = randomKSat(rng, vars, clauses, 3);
    SolveResult direct = solveCnf(f);
    CubeAndConquerResult cc = cubeAndConquer(f, 3);
    EXPECT_EQ(cc.result, direct);
    EXPECT_GE(cc.numCubes, 1u);
    if (cc.result == SolveResult::Sat)
        EXPECT_TRUE(f.evaluate(cc.model));
}

INSTANTIATE_TEST_SUITE_P(Sweep, CubeConquer, ::testing::Range(0, 16));

TEST(CubeSplitter, RefutedCubesAreGenuinelyUnsat)
{
    Rng rng(999);
    CnfFormula f = randomKSat(rng, 16, 80, 3);
    CubeSplitter splitter(f, 4);
    auto cubes = splitter.split();
    for (const auto &cube : cubes) {
        if (!cube.refuted)
            continue;
        CdclSolver solver(f);
        EXPECT_EQ(solver.solve(cube.lits), SolveResult::Unsat);
    }
}

TEST(ImplicationGraph, EdgesFromBinaryClauses)
{
    CnfFormula f(3);
    f.addClause({1, 2});       // ~x0 -> x1, ~x1 -> x0
    f.addClause({-2, 3});      // x1 -> x2, ~x2 -> ~x1
    ImplicationGraph g(f);
    EXPECT_EQ(g.numEdges(), 4u);
    Lit nx0 = Lit::make(0, true);
    Lit x1 = Lit::make(1, false);
    Lit x2 = Lit::make(2, false);
    EXPECT_TRUE(g.reachable(nx0, x1));
    EXPECT_TRUE(g.reachable(x1, x2));
    EXPECT_TRUE(g.reachable(nx0, x2)); // transitive
    EXPECT_FALSE(g.reachable(x2, x1));
}

TEST(ImplicationGraph, FailedLiteralDetection)
{
    // x0 -> x1 and x0 -> ~x1 makes x0 a failed literal.
    CnfFormula f(2);
    f.addClause({-1, 2});
    f.addClause({-1, -2});
    ImplicationGraph g(f);
    EXPECT_TRUE(g.isFailedLiteral(Lit::make(0, false)));
    EXPECT_FALSE(g.isFailedLiteral(Lit::make(0, true)));
}

TEST(PruneCnf, HiddenLiteralRemoved)
{
    // C = (a | b) with b -> a via (~b | a): b is droppable from C.
    CnfFormula f(2);
    f.addClause({1, 2});
    f.addClause({1, -2});
    CnfPruneResult pr = pruneCnf(f);
    EXPECT_GT(pr.literalsRemoved, 0u);
    EXPECT_EQ(f.bruteForceCountModels(),
              pr.pruned.bruteForceCountModels());
}

TEST(PruneCnf, UnsatByFailedLiterals)
{
    // Both polarities failed: x -> ~x and ~x -> x.
    CnfFormula f(2);
    f.addClause({-1, 2});
    f.addClause({-1, -2});
    f.addClause({1, 2});
    f.addClause({1, -2});
    CnfPruneResult pr = pruneCnf(f);
    EXPECT_EQ(solveCnf(pr.pruned), SolveResult::Unsat);
    EXPECT_EQ(solveCnf(f), SolveResult::Unsat);
}

/**
 * Key pruning invariant (Sec. IV-B): implication-graph pruning preserves
 * logical equivalence, therefore the exact model count.
 */
class PrunePreservesModels : public ::testing::TestWithParam<int>
{
};

TEST_P(PrunePreservesModels, ModelCountUnchanged)
{
    Rng rng(GetParam() * 6151 + 3);
    uint32_t vars = 8 + GetParam() % 5;
    // Mix binary and ternary clauses so the implication graph is rich.
    CnfFormula f = randomKSat(rng, vars, vars * 2, 2);
    CnfFormula f3 = randomKSat(rng, vars, vars, 3);
    for (const auto &c : f3.clauses())
        f.addClause(c);
    CnfPruneResult pr = pruneCnf(f);
    EXPECT_EQ(f.bruteForceCountModels(),
              pr.pruned.bruteForceCountModels())
        << "pruning must preserve equivalence";
    EXPECT_GE(pr.literalReduction, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PrunePreservesModels,
                         ::testing::Range(0, 25));

TEST(PruneCnf, ReductionReportedConsistently)
{
    Rng rng(31337);
    CnfFormula f = randomKSat(rng, 30, 60, 2);
    CnfPruneResult pr = pruneCnf(f);
    size_t before = f.numLiterals();
    size_t after = pr.pruned.numLiterals();
    EXPECT_NEAR(pr.literalReduction,
                1.0 - double(after) / double(before), 1e-12);
}
