/**
 * @file
 * Probabilistic Circuits (PCs): tractable probabilistic models over
 * discrete variables, represented as DAGs of sum, product, and leaf nodes
 * (REASON Sec. II-C, Eq. 1).
 *
 * Evaluation is performed in log space for numerical robustness.  The
 * circuit supports complete-evidence likelihood, marginal queries with
 * unobserved variables, MAP-style max-product queries, and the top-down
 * circuit flows used by adaptive pruning (Sec. IV-B).
 */

#ifndef REASON_PC_PC_H
#define REASON_PC_PC_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace reason {

class Rng;

namespace pc {

/** Node identifier inside a circuit. */
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = ~0u;

/** Kind of a circuit node. */
enum class PcNodeType : uint8_t { Leaf, Sum, Product };

/**
 * One circuit node.  Leaves are indicator-weighted categorical
 * distributions over a single variable; interior nodes combine children.
 */
struct PcNode
{
    PcNodeType type = PcNodeType::Leaf;
    /** Leaf only: variable index. */
    uint32_t var = 0;
    /** Leaf only: P(var = v) for each value v (normalized). */
    std::vector<double> dist;
    /** Interior only: children node ids. */
    std::vector<NodeId> children;
    /** Sum only: non-negative mixture weights, aligned with children. */
    std::vector<double> weights;
};

/** Complete or partial assignment: value per variable, or kMissing. */
inline constexpr uint32_t kMissing = ~0u;
using Assignment = std::vector<uint32_t>;

/**
 * A probabilistic circuit over `numVars` categorical variables with
 * `arity` values each.  Nodes are stored in topological order (children
 * before parents); the last node added with markRoot (or the final node)
 * is the root.
 */
class Circuit
{
  public:
    Circuit(uint32_t num_vars, uint32_t arity);

    uint32_t numVars() const { return numVars_; }
    uint32_t arity() const { return arity_; }
    size_t numNodes() const { return nodes_.size(); }
    size_t numEdges() const;
    NodeId root() const { return root_; }

    const PcNode &node(NodeId id) const { return nodes_.at(id); }
    PcNode &mutableNode(NodeId id) { return nodes_.at(id); }

    /** Add a categorical leaf over `var`; dist is normalized in place. */
    NodeId addLeaf(uint32_t var, std::vector<double> dist);

    /** Add a product node over children (must already exist). */
    NodeId addProduct(std::vector<NodeId> children);

    /** Add a sum node; weights normalized in place. */
    NodeId addSum(std::vector<NodeId> children,
                  std::vector<double> weights);

    /** Declare the root node. */
    void markRoot(NodeId id);

    /**
     * Log-likelihood of an assignment.  Variables set to kMissing are
     * marginalized out (their leaves evaluate to 1).
     */
    double logLikelihood(const Assignment &x) const;

    /** Per-node log values for an assignment (bottom-up pass). */
    std::vector<double> evaluate(const Assignment &x) const;

    /**
     * Max-product upward pass + downward decoding: most likely completion
     * of a partial assignment (approximate MAP for non-deterministic
     * circuits, exact for selective ones).
     */
    Assignment mapCompletion(const Assignment &x) const;

    /**
     * Brute-force log partition of the circuit: log sum over all complete
     * assignments of exp(logLikelihood).  Testing only; requires
     * arity^numVars to be small.
     */
    double bruteForceLogZ() const;

    /**
     * Structural checks: children precede parents, sum weights align with
     * children and are normalized, leaves have valid distributions.
     * panic()s on violation.
     */
    void validate() const;

    /**
     * True when every sum node's children cover the same variable scope
     * (smoothness) and every product node's children have disjoint scopes
     * (decomposability); such circuits admit exact marginals.
     */
    bool isSmoothAndDecomposable() const;

    /** Variable scope of each node (bottom-up union). */
    std::vector<std::vector<uint32_t>> scopes() const;

  private:
    uint32_t numVars_;
    uint32_t arity_;
    std::vector<PcNode> nodes_;
    NodeId root_ = kInvalidNode;
};

/**
 * Random smooth & decomposable circuit over `num_vars` variables
 * (RAT-SPN-like region construction): the variable set is recursively
 * split into balanced partitions; each region gets `num_sums` mixture
 * nodes over `num_inputs` random product combinations.
 */
Circuit randomCircuit(Rng &rng, uint32_t num_vars, uint32_t arity,
                      uint32_t num_sums = 2, uint32_t num_inputs = 4);

/** Draw i.i.d. samples from the circuit distribution. */
std::vector<Assignment> sampleDataset(Rng &rng, const Circuit &circuit,
                                      size_t count);

} // namespace pc
} // namespace reason

#endif // REASON_PC_PC_H
