#include "pc/flat_cache.h"

#include <bit>
#include <mutex>
#include <unordered_map>

#include "core/dag.h"

namespace reason {
namespace pc {

namespace {

/** 64-bit FNV-1a running hash. */
struct Fnv
{
    uint64_t h = 1469598103934665603ull;

    void
    mix(uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    }
    void mix(uint32_t v) { mix(uint64_t(v)); }
    void mix(double v) { mix(std::bit_cast<uint64_t>(v)); }
};

/** Content fingerprint: exact counts plus a topology/parameter hash. */
struct Identity
{
    uint64_t nodes = 0;
    uint64_t edges = 0;
    uint64_t meta = 0; // vars/arity (circuit) or inputs/root (dag)
    uint64_t hash = 0;

    bool
    operator==(const Identity &o) const
    {
        return nodes == o.nodes && edges == o.edges && meta == o.meta &&
               hash == o.hash;
    }
};

Identity
fingerprint(const Circuit &c)
{
    Identity id;
    id.nodes = c.numNodes();
    id.edges = c.numEdges();
    id.meta = (uint64_t(c.numVars()) << 32) | c.arity();
    Fnv f;
    f.mix(uint64_t(c.root()));
    for (size_t i = 0; i < c.numNodes(); ++i) {
        const PcNode &n = c.node(NodeId(i));
        f.mix(uint64_t(n.type));
        switch (n.type) {
          case PcNodeType::Leaf:
            f.mix(n.var);
            for (double d : n.dist)
                f.mix(d);
            break;
          case PcNodeType::Sum:
            for (size_t k = 0; k < n.children.size(); ++k) {
                f.mix(n.children[k]);
                f.mix(n.weights[k]);
            }
            break;
          case PcNodeType::Product:
            for (NodeId child : n.children)
                f.mix(child);
            break;
        }
    }
    id.hash = f.h;
    return id;
}

Identity
fingerprint(const core::Dag &dag)
{
    Identity id;
    id.nodes = dag.numNodes();
    id.edges = dag.numEdges();
    id.meta = (uint64_t(dag.numInputs()) << 32) | dag.root();
    Fnv f;
    for (size_t i = 0; i < dag.numNodes(); ++i) {
        const core::DagNode &n = dag.node(core::NodeId(i));
        f.mix(uint64_t(n.op));
        f.mix(n.tag);
        f.mix(n.value);
        for (core::NodeId in : n.inputs)
            f.mix(in);
        for (double w : n.weights)
            f.mix(w);
    }
    id.hash = f.h;
    return id;
}

/**
 * One pointer-bucketed LRU cache.  The pointer is only a bucket key —
 * correctness rests on the Identity comparison, so address reuse after
 * an object dies simply misses (different fingerprint) or legitimately
 * shares (byte-equal structure lowers to the same flat form).
 */
template <typename Flat>
class LoweringCache
{
  public:
    static constexpr size_t kMaxEntries = kFlatCacheCapacity;

    /**
     * Serve `src`'s lowering.  The fingerprint pass and (on a miss)
     * the lowering itself run *outside* the lock, so concurrent
     * queries only serialize on the map lookup/insert; two threads
     * racing to lower the same structure both lower, and the later
     * insert wins (both results are equivalent by construction).
     */
    template <typename Source, typename Lower>
    std::shared_ptr<const Flat>
    get(const Source &src, Lower lower)
    {
        const Identity id = fingerprint(src);
        const uintptr_t key = reinterpret_cast<uintptr_t>(&src);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = entries_.find(key);
            if (it != entries_.end() && it->second.id == id) {
                ++stats_.hits;
                it->second.tick = ++clock_;
                return it->second.flat;
            }
        }
        auto flat = std::make_shared<const Flat>(lower(src));
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            it->second = {id, flat, ++clock_};
            return flat;
        }
        if (entries_.size() >= kMaxEntries) {
            auto oldest = entries_.begin();
            for (auto e = entries_.begin(); e != entries_.end(); ++e)
                if (e->second.tick < oldest->second.tick)
                    oldest = e;
            entries_.erase(oldest);
            ++stats_.evictions;
        }
        entries_.emplace(key, Entry{id, flat, ++clock_});
        return flat;
    }

    void
    mergeStats(FlatCacheStats *out)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out->hits += stats_.hits;
        out->misses += stats_.misses;
        out->evictions += stats_.evictions;
    }

    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        entries_.clear();
        stats_ = FlatCacheStats{};
        clock_ = 0;
    }

  private:
    struct Entry
    {
        Identity id;
        std::shared_ptr<const Flat> flat;
        uint64_t tick = 0;
    };
    std::mutex mutex_;
    FlatCacheStats stats_;
    std::unordered_map<uintptr_t, Entry> entries_;
    uint64_t clock_ = 0;
};

LoweringCache<FlatCircuit> g_circuits;
LoweringCache<core::FlatGraph> g_dags;

} // namespace

std::shared_ptr<const FlatCircuit>
cachedLowering(const Circuit &circuit)
{
    return g_circuits.get(circuit,
                          [](const Circuit &c) { return FlatCircuit(c); });
}

std::shared_ptr<const core::FlatGraph>
cachedLowering(const core::Dag &dag)
{
    return g_dags.get(dag,
                      [](const core::Dag &d) { return core::lowerDag(d); });
}

uint64_t
structuralFingerprint(const FlatCircuit &flat)
{
    // Only the canonical arrays participate: the schedules and the
    // parent transpose are derived from them (finalizeTopology), so
    // mixing them would add cost without discriminating power.
    Fnv f;
    f.mix(uint64_t(flat.numVars));
    f.mix(uint64_t(flat.arity));
    f.mix(uint64_t(flat.root));
    f.mix(uint64_t(flat.numNodes()));
    f.mix(uint64_t(flat.numEdges()));
    for (uint8_t t : flat.types)
        f.mix(uint64_t(t));
    for (uint32_t o : flat.edgeOffset)
        f.mix(o);
    for (size_t e = 0; e < flat.edgeTarget.size(); ++e) {
        f.mix(flat.edgeTarget[e]);
        f.mix(flat.edgeLogWeight[e]);
    }
    for (size_t s = 0; s < flat.leafVar.size(); ++s)
        f.mix(flat.leafVar[s]);
    for (double d : flat.leafLogDist)
        f.mix(d);
    return f.h;
}

FlatCacheStats
flatCacheStats()
{
    FlatCacheStats stats;
    g_circuits.mergeStats(&stats);
    g_dags.mergeStats(&stats);
    return stats;
}

void
clearFlatCache()
{
    g_circuits.clear();
    g_dags.clear();
}

} // namespace pc
} // namespace reason
