/**
 * @file
 * Tests for thread-parallel wavefront execution and the lowering cache:
 * every parallel path (core::Evaluator single/batch, pc::CircuitEvaluator
 * single/batch, pc::FlowAccumulator upward+downward) must be
 * *bit-identical* to the serial flat path across thread counts
 * {1, 2, 4, 8}, and cachedLowering must hit on unchanged structures and
 * miss on mutation.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/dag.h"
#include "core/flat.h"
#include "pc/flat_cache.h"
#include "pc/flat_pc.h"
#include "pc/pc.h"
#include "util/numeric.h"
#include "util/parallel.h"
#include "util/rng.h"

using namespace reason;

namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 4, 8};

/** Bitwise equality that treats every double as its bit pattern. */
::testing::AssertionResult
bitIdentical(std::span<const double> got, std::span<const double> want)
{
    if (got.size() != want.size())
        return ::testing::AssertionFailure()
               << "size " << got.size() << " vs " << want.size();
    for (size_t i = 0; i < got.size(); ++i)
        if (std::bit_cast<uint64_t>(got[i]) !=
            std::bit_cast<uint64_t>(want[i]))
            return ::testing::AssertionFailure()
                   << "index " << i << ": " << got[i] << " vs "
                   << want[i];
    return ::testing::AssertionSuccess();
}

/** Random DAG exercising every opcode, with weighted and plain sums. */
core::Dag
randomDag(Rng &rng, uint32_t num_inputs, uint32_t num_consts,
          uint32_t num_ops)
{
    core::Dag dag;
    for (uint32_t i = 0; i < num_inputs; ++i)
        dag.addInput();
    for (uint32_t i = 0; i < num_consts; ++i)
        dag.addConst(rng.uniformReal(-2.0, 2.0));
    for (uint32_t i = 0; i < num_ops; ++i) {
        size_t existing = dag.numNodes();
        uint32_t fan_in = uint32_t(rng.uniformInt(1, 4));
        std::vector<core::NodeId> operands;
        for (uint32_t k = 0; k < fan_in; ++k)
            operands.push_back(
                core::NodeId(rng.uniformInt(0, int64_t(existing) - 1)));
        switch (rng.uniformInt(0, 4)) {
          case 0:
            if (rng.bernoulli(0.5)) {
                std::vector<double> weights;
                for (uint32_t k = 0; k < fan_in; ++k)
                    weights.push_back(rng.uniformReal(-1.5, 1.5));
                dag.addOp(core::DagOp::Sum, std::move(operands),
                          std::move(weights));
            } else {
                dag.addOp(core::DagOp::Sum, std::move(operands));
            }
            break;
          case 1:
            dag.addOp(core::DagOp::Product, std::move(operands));
            break;
          case 2:
            dag.addOp(core::DagOp::Max, std::move(operands));
            break;
          case 3:
            dag.addOp(core::DagOp::Min, std::move(operands));
            break;
          default:
            operands.resize(1);
            dag.addOp(core::DagOp::Not, std::move(operands));
            break;
        }
    }
    dag.validate();
    return dag;
}

/** Random partial assignments over the circuit's variables. */
std::vector<pc::Assignment>
randomAssignments(Rng &rng, const pc::Circuit &c, size_t count,
                  double missing_prob)
{
    std::vector<pc::Assignment> out(count);
    for (auto &x : out) {
        x.resize(c.numVars());
        for (uint32_t v = 0; v < c.numVars(); ++v)
            x[v] = rng.bernoulli(missing_prob)
                       ? pc::kMissing
                       : uint32_t(rng.uniformInt(0, c.arity() - 1));
    }
    return out;
}

} // namespace

TEST(ThreadPool, CoversRangeExactlyOnceWithValidWorkers)
{
    for (unsigned threads : kThreadCounts) {
        util::ThreadPool pool(threads);
        EXPECT_EQ(pool.numThreads(), threads);
        std::vector<int> hits(10000, 0);
        std::mutex m;
        unsigned max_worker = 0;
        pool.parallelFor(0, hits.size(), 1,
                         [&](size_t b, size_t e, unsigned worker) {
                             std::lock_guard<std::mutex> lock(m);
                             max_worker = std::max(max_worker, worker);
                             for (size_t i = b; i < e; ++i)
                                 ++hits[i];
                         });
        for (size_t i = 0; i < hits.size(); ++i)
            ASSERT_EQ(hits[i], 1) << "index " << i;
        EXPECT_LT(max_worker, threads);
    }
}

TEST(ThreadPool, RespectsMinGrain)
{
    util::ThreadPool pool(8);
    size_t calls = 0;
    // 100 items with min grain 64 -> only one chunk (inline).
    pool.parallelFor(0, 100, 64, [&](size_t b, size_t e, unsigned w) {
        ++calls;
        EXPECT_EQ(b, 0u);
        EXPECT_EQ(e, 100u);
        EXPECT_EQ(w, 0u);
    });
    EXPECT_EQ(calls, 1u);
}

TEST(ParallelEvaluator, DagBitIdenticalAcrossThreadCounts)
{
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        Rng rng(seed * 19);
        core::Dag dag = randomDag(rng, 8, 3, 3000);
        core::FlatGraph flat = core::lowerDag(dag);

        std::vector<double> inputs(dag.numInputs());
        for (auto &v : inputs)
            v = rng.uniformReal(-1.0, 1.0);

        util::ThreadPool serial(1);
        core::Evaluator ref(flat, &serial);
        std::span<const double> ref_vals = ref.evaluate(inputs);
        std::vector<double> want(ref_vals.begin(), ref_vals.end());

        for (unsigned threads : kThreadCounts) {
            util::ThreadPool pool(threads);
            core::Evaluator eval(flat, &pool);
            EXPECT_TRUE(bitIdentical(eval.evaluate(inputs), want))
                << "threads=" << threads;
        }
    }
}

TEST(ParallelEvaluator, DagBatchBitIdenticalAcrossThreadCounts)
{
    Rng rng(7);
    core::Dag dag = randomDag(rng, 12, 2, 800);
    core::FlatGraph flat = core::lowerDag(dag);

    const size_t rows = 64;
    std::vector<double> batch(rows * dag.numInputs());
    for (auto &v : batch)
        v = rng.uniformReal(-1.0, 1.0);

    util::ThreadPool serial(1);
    core::Evaluator ref(flat, &serial);
    std::vector<double> want(rows);
    ref.evaluateBatch(batch, rows, want);

    for (unsigned threads : kThreadCounts) {
        util::ThreadPool pool(threads);
        core::Evaluator eval(flat, &pool);
        std::vector<double> got(rows);
        eval.evaluateBatch(batch, rows, got);
        EXPECT_TRUE(bitIdentical(got, want)) << "threads=" << threads;
        // Reuse must not disturb results (scratch is warm now).
        eval.evaluateBatch(batch, rows, got);
        EXPECT_TRUE(bitIdentical(got, want)) << "threads=" << threads;
    }
}

TEST(ParallelCircuitEvaluator, ValuesBitIdenticalAcrossThreadCounts)
{
    Rng rng(23);
    // Large enough that level slices actually split across workers.
    pc::Circuit c = pc::randomCircuit(rng, 256, 2, 4, 8);
    pc::FlatCircuit flat(c);
    auto xs = randomAssignments(rng, c, 6, 0.25);

    util::ThreadPool serial(1);
    pc::CircuitEvaluator ref(flat, &serial);
    for (const auto &x : xs) {
        std::span<const double> ref_vals = ref.evaluate(x);
        std::vector<double> want(ref_vals.begin(), ref_vals.end());
        for (unsigned threads : kThreadCounts) {
            util::ThreadPool pool(threads);
            pc::CircuitEvaluator eval(flat, &pool);
            EXPECT_TRUE(bitIdentical(eval.evaluate(x), want))
                << "threads=" << threads;
        }
    }
}

TEST(ParallelCircuitEvaluator, BatchBitIdenticalAcrossThreadCounts)
{
    Rng rng(29);
    pc::Circuit c = pc::randomCircuit(rng, 64, 3, 3, 6);
    pc::FlatCircuit flat(c);
    // 67 rows: full blocks plus a scalar tail.
    auto xs = randomAssignments(rng, c, 67, 0.2);

    util::ThreadPool serial(1);
    pc::CircuitEvaluator ref(flat, &serial);
    std::vector<double> want(xs.size());
    ref.logLikelihoodBatch(xs, want);

    for (unsigned threads : kThreadCounts) {
        util::ThreadPool pool(threads);
        pc::CircuitEvaluator eval(flat, &pool);
        std::vector<double> got(xs.size());
        eval.logLikelihoodBatch(xs, got);
        EXPECT_TRUE(bitIdentical(got, want)) << "threads=" << threads;
        eval.logLikelihoodBatch(xs, got);
        EXPECT_TRUE(bitIdentical(got, want)) << "threads=" << threads;
    }
}

TEST(ParallelFlowAccumulator, TotalsBitIdenticalAcrossThreadCounts)
{
    Rng rng(31);
    pc::Circuit c = pc::randomCircuit(rng, 256, 2, 4, 8);
    pc::FlatCircuit flat(c);
    auto data = randomAssignments(rng, c, 12, 0.3);

    util::ThreadPool serial(1);
    pc::FlowAccumulator ref(flat, &serial);
    for (const auto &x : data)
        ref.add(x);

    for (unsigned threads : kThreadCounts) {
        util::ThreadPool pool(threads);
        pc::FlowAccumulator acc(flat, &pool);
        for (const auto &x : data)
            acc.add(x);
        EXPECT_EQ(acc.count(), ref.count());
        EXPECT_TRUE(bitIdentical(acc.edgeFlow(), ref.edgeFlow()))
            << "threads=" << threads;
        EXPECT_TRUE(bitIdentical(acc.nodeFlow(), ref.nodeFlow()))
            << "threads=" << threads;
        EXPECT_TRUE(bitIdentical(acc.leafValueFlow(),
                                 ref.leafValueFlow()))
            << "threads=" << threads;
    }
}

TEST(ParallelFlowAccumulator, ZeroProbabilityBranchesMatchSerial)
{
    // Deterministic leaves create exact log-zero children on sum edges
    // and zero-probability evidence, exercising every skip branch of
    // the downward pass in both formulations.
    pc::Circuit c(2, 2);
    pc::NodeId a0 = c.addLeaf(0, {1.0, 0.0});
    pc::NodeId a1 = c.addLeaf(1, {0.25, 0.75});
    pc::NodeId b0 = c.addLeaf(0, {0.0, 1.0});
    pc::NodeId b1 = c.addLeaf(1, {1.0, 0.0});
    pc::NodeId pa = c.addProduct({a0, a1});
    pc::NodeId pb = c.addProduct({b0, b1});
    c.markRoot(c.addSum({pa, pb}, {0.6, 0.4}));
    pc::FlatCircuit flat(c);

    std::vector<pc::Assignment> data{
        {0, 0}, {0, 1}, {1, 0}, {1, 1} /* impossible */,
        {pc::kMissing, 1}, {0, pc::kMissing}};

    util::ThreadPool serial(1);
    pc::FlowAccumulator ref(flat, &serial);
    for (const auto &x : data)
        ref.add(x);

    for (unsigned threads : kThreadCounts) {
        util::ThreadPool pool(threads);
        pc::FlowAccumulator acc(flat, &pool);
        for (const auto &x : data)
            acc.add(x);
        EXPECT_TRUE(bitIdentical(acc.edgeFlow(), ref.edgeFlow()));
        EXPECT_TRUE(bitIdentical(acc.nodeFlow(), ref.nodeFlow()));
        EXPECT_TRUE(
            bitIdentical(acc.leafValueFlow(), ref.leafValueFlow()));
    }
}

TEST(FlatCircuitSchedule, LevelsAndTransposeAreConsistent)
{
    Rng rng(37);
    pc::Circuit c = pc::randomCircuit(rng, 32, 2, 3, 5);
    pc::FlatCircuit flat(c);

    // Every node appears exactly once in the level schedule, and a
    // node's children all sit in strictly lower levels.
    std::vector<uint32_t> level_of(flat.numNodes(), ~0u);
    size_t scheduled = 0;
    for (size_t l = 0; l < flat.numLevels(); ++l)
        for (uint32_t k = flat.levelOffset[l]; k < flat.levelOffset[l + 1];
             ++k) {
            ASSERT_EQ(level_of[flat.levelNodes[k]], ~0u);
            level_of[flat.levelNodes[k]] = uint32_t(l);
            ++scheduled;
        }
    EXPECT_EQ(scheduled, flat.numNodes());
    for (size_t i = 0; i < flat.numNodes(); ++i)
        for (uint32_t e = flat.edgeOffset[i]; e < flat.edgeOffset[i + 1];
             ++e)
            EXPECT_LT(level_of[flat.edgeTarget[e]], level_of[i]);

    // The transpose lists each forward edge exactly once, under its
    // child, in descending parent order.
    std::vector<int> edge_seen(flat.numEdges(), 0);
    for (size_t c_id = 0; c_id < flat.numNodes(); ++c_id) {
        uint32_t prev_parent = ~0u;
        for (uint32_t pe = flat.parentOffset[c_id];
             pe < flat.parentOffset[c_id + 1]; ++pe) {
            const uint32_t e = flat.parentEdge[pe];
            ++edge_seen[e];
            EXPECT_EQ(flat.edgeTarget[e], c_id);
            const uint32_t parent = flat.edgeSource[e];
            EXPECT_LE(parent, prev_parent);
            prev_parent = parent;
        }
    }
    for (size_t e = 0; e < flat.numEdges(); ++e)
        EXPECT_EQ(edge_seen[e], 1) << "edge " << e;
}

TEST(FlatCache, HitsOnUnchangedCircuitAndMissesOnMutation)
{
    pc::clearFlatCache();
    Rng rng(41);
    pc::Circuit c = pc::randomCircuit(rng, 12, 2, 2, 3);

    auto first = pc::cachedLowering(c);
    auto second = pc::cachedLowering(c);
    EXPECT_EQ(first.get(), second.get());
    auto stats = pc::flatCacheStats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);

    // Parameter mutation (what EM does every iteration) must miss.
    for (pc::NodeId id = 0; id < c.numNodes(); ++id) {
        if (c.node(id).type == pc::PcNodeType::Leaf) {
            auto &dist = c.mutableNode(id).dist;
            std::swap(dist[0], dist[1]);
            break;
        }
    }
    auto third = pc::cachedLowering(c);
    EXPECT_NE(third.get(), first.get());
    stats = pc::flatCacheStats();
    EXPECT_EQ(stats.misses, 2u);

    // The fresh lowering reflects the mutation.
    util::ThreadPool serial(1);
    pc::CircuitEvaluator eval(*third, &serial);
    pc::Assignment x(c.numVars(), pc::kMissing);
    x[0] = 0;
    EXPECT_NEAR(eval.logLikelihood(x), c.logLikelihood(x), 1e-12);

    // The original lowering lives on through its shared_ptr.
    EXPECT_EQ(first->numNodes(), c.numNodes());
}

TEST(FlatCache, DagLoweringsAreCachedByIdentity)
{
    pc::clearFlatCache();
    Rng rng(43);
    core::Dag dag = randomDag(rng, 4, 2, 50);

    auto first = pc::cachedLowering(dag);
    auto second = pc::cachedLowering(dag);
    EXPECT_EQ(first.get(), second.get());

    // Structural growth changes the fingerprint.
    dag.addOp(core::DagOp::Not, {core::NodeId(0)});
    auto third = pc::cachedLowering(dag);
    EXPECT_NE(third.get(), first.get());
    EXPECT_EQ(third->numNodes(), dag.numNodes());

    auto stats = pc::flatCacheStats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 2u);
}
