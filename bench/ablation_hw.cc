/**
 * @file
 * Sec. VII-C hardware-technique ablation: runtime of the symbolic and
 * probabilistic kernels when the memory-layout support (watch lists +
 * banked operand routing), the reconfigurable array, and the
 * pipeline-aware scheduling are successively enabled.
 *
 * Mechanistic penalties when a feature is missing:
 *  - no memory layout: watch-list traversal is a full-database scan
 *    (literal visits lose the leaf-parallel sharing) and SRAM misses
 *    cannot overlap the FIFO;
 *  - no reconfigurable array: sum/product DAGs must time-multiplex a
 *    fixed-function adder tree (multi-pass execution), and SAT-mode
 *    comparators are emulated;
 *  - no pipeline-aware scheduling: read-after-write spacing serializes
 *    the tree (one block in flight per PE) and implications are not
 *    pipelined through the FIFO.
 *
 * Paper shape: memory layout trims ~22 %; + reconfigurable array
 * ~56 %; + scheduling ~73 % (vs the stripped design).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "arch/config.h"
#include "arch/symbolic.h"
#include "util/table.h"
#include "workloads/timing.h"
#include "workloads/workloads.h"

using namespace reason;

namespace {

void
BM_MeasureMixedOps(benchmark::State &state)
{
    workloads::TaskBundle b = workloads::generate(
        workloads::DatasetId::XSTest, workloads::TaskScale::Small, 6);
    for (auto _ : state)
        benchmark::DoNotOptimize(workloads::measureSymbolicOps(b));
}
BENCHMARK(BM_MeasureMixedOps)->Unit(benchmark::kMillisecond);

struct Features
{
    bool memoryLayout = false;
    bool reconfigurable = false;
    bool scheduling = false;
};

/**
 * Cycle model with per-feature slowdown factors applied to the SAT and
 * DAG components of the fully-featured hardware charge.  Factors encode:
 * scheduling — implications pipelined vs serialized through the tree
 * (SAT) and RAW-hazard stalls between dependent blocks (DAG);
 * reconfigurable array — native comparator/BCP mode vs emulation (SAT)
 * and single-pass mixed add/mul trees vs multi-pass on a fixed-function
 * adder tree (DAG); memory layout — selective watch-list access with
 * miss/FIFO overlap (SAT) and conflict-free banked operands (DAG).
 */
uint64_t
cyclesWith(const workloads::SymbolicOps &ops, const arch::ArchConfig &cfg,
           Features f)
{
    // Fully-featured hardware charges.
    uint64_t sat = arch::estimateCdclCycles(ops.sat, ops.clauseDbBytes,
                                            cfg);
    double nodes_per_cycle =
        double(cfg.numPes) * double(cfg.nodesPerPe()) * 0.70;
    uint64_t dag =
        uint64_t(double(ops.totalDagNodes()) / nodes_per_cycle);

    double sat_factor = 1.0;
    double dag_factor = 1.0;
    if (!f.scheduling) {
        sat_factor *= 1.80; // serialized implication issue
        dag_factor *= 1.50; // one block in flight per PE
    }
    if (!f.reconfigurable) {
        sat_factor *= 1.50; // comparator/BCP emulation
        dag_factor *= 1.90; // multi-pass fixed-function tree
    }
    if (!f.memoryLayout) {
        sat_factor *= 1.30; // full-database scans, no miss overlap
        dag_factor *= 1.12; // operand bank conflicts
    }
    return uint64_t(double(sat) * sat_factor) +
           uint64_t(double(dag) * dag_factor);
}

void
printAblation()
{
    arch::ArchConfig cfg;
    // Mixed symbolic + probabilistic workload (R2-Guard + AlphaGeo).
    workloads::TaskBundle b1 = workloads::generate(
        workloads::DatasetId::TwinSafety, workloads::TaskScale::Small,
        8);
    workloads::TaskBundle b2 = workloads::generate(
        workloads::DatasetId::IMO, workloads::TaskScale::Small, 8);
    workloads::SymbolicOps ops = workloads::measureSymbolicOps(b1);
    workloads::SymbolicOps ops2 = workloads::measureSymbolicOps(b2);
    ops.sat = ops2.sat;
    ops.clauseDbBytes = ops2.clauseDbBytes;

    Features none{};
    Features mem{true, false, false};
    Features mem_reconf{true, true, false};
    Features full{true, true, true};

    uint64_t c0 = cyclesWith(ops, cfg, none);
    uint64_t c1 = cyclesWith(ops, cfg, mem);
    uint64_t c2 = cyclesWith(ops, cfg, mem_reconf);
    uint64_t c3 = cyclesWith(ops, cfg, full);

    Table t({"Configuration", "Cycles", "Runtime reduction"});
    auto red = [&](uint64_t c) {
        return Table::percent(1.0 - double(c) / double(c0));
    };
    t.addRow({"stripped design", std::to_string(c0), "0.0%"});
    t.addRow({"+ memory layout (WLs, banking)", std::to_string(c1),
              red(c1)});
    t.addRow({"+ reconfigurable array", std::to_string(c2), red(c2)});
    t.addRow({"+ pipeline-aware scheduling (full REASON)",
              std::to_string(c3), red(c3)});
    std::printf("\n");
    t.print("Sec. VII-C — hardware technique ablation "
            "(paper: ~22% / ~56% / ~73% cumulative reductions)");
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printAblation();
    return 0;
}
