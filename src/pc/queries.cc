#include "pc/queries.h"

#include <cmath>
#include <span>
#include <vector>

#include "pc/flat_cache.h"
#include "pc/flat_pc.h"
#include "util/logging.h"
#include "util/numeric.h"
#include "util/rng.h"

namespace reason {
namespace pc {

double
conditionalLogProbability(const Circuit &circuit, const Assignment &query,
                          const Assignment &evidence)
{
    reasonAssert(query.size() == circuit.numVars() &&
                 evidence.size() == circuit.numVars(),
                 "assignments must cover all circuit variables");
    Assignment merged = evidence;
    for (uint32_t v = 0; v < circuit.numVars(); ++v) {
        if (query[v] == kMissing)
            continue;
        if (evidence[v] != kMissing && evidence[v] != query[v])
            fatal("conditionalLogProbability: query and evidence disagree "
                  "on variable %u", v);
        merged[v] = query[v];
    }
    double log_e = circuit.logLikelihood(evidence);
    if (log_e == kLogZero)
        return kLogZero;
    return circuit.logLikelihood(merged) - log_e;
}

std::vector<double>
logDerivatives(const Circuit &circuit, const Assignment &x)
{
    std::vector<double> logv = circuit.evaluate(x);
    std::vector<double> logd(circuit.numNodes(), kLogZero);
    logd[circuit.root()] = 0.0;

    for (size_t i = circuit.numNodes(); i-- > 0;) {
        const PcNode &node = circuit.node(NodeId(i));
        if (logd[i] == kLogZero)
            continue;
        switch (node.type) {
          case PcNodeType::Leaf:
            break;
          case PcNodeType::Sum:
            for (size_t k = 0; k < node.children.size(); ++k) {
                double w = node.weights[k];
                if (w <= 0.0)
                    continue;
                NodeId c = node.children[k];
                logd[c] = logAdd(logd[c], logd[i] + std::log(w));
            }
            break;
          case PcNodeType::Product: {
            // ∂v_n/∂v_c = prod of sibling values; handle zeros exactly.
            size_t zeros = 0;
            NodeId zero_child = kInvalidNode;
            double finite_sum = 0.0;
            for (NodeId c : node.children) {
                if (logv[c] == kLogZero) {
                    ++zeros;
                    zero_child = c;
                } else {
                    finite_sum += logv[c];
                }
            }
            if (zeros >= 2)
                break;
            if (zeros == 1) {
                logd[zero_child] =
                    logAdd(logd[zero_child], logd[i] + finite_sum);
                break;
            }
            for (NodeId c : node.children) {
                logd[c] = logAdd(logd[c],
                                 logd[i] + finite_sum - logv[c]);
            }
            break;
          }
        }
    }
    return logd;
}

MarginalTable
posteriorMarginals(const Circuit &circuit, const Assignment &evidence)
{
    reasonAssert(evidence.size() == circuit.numVars(),
                 "evidence must cover all circuit variables");
    // Flat path: the upward pass is shared between the evidence
    // likelihood and the backward derivative pass (one pass instead of
    // the two the reference walkers would make); the lowering itself is
    // shared across calls through the flat cache.
    std::shared_ptr<const FlatCircuit> flat = cachedLowering(circuit);
    CircuitEvaluator eval(*flat);
    std::span<const double> logv = eval.evaluate(evidence);
    double log_e = logv[flat->root];
    if (log_e == kLogZero)
        fatal("posteriorMarginals: evidence has zero probability");

    std::vector<double> logd;
    logDerivativesInto(*flat, logv, logd);

    MarginalTable table;
    table.prob.assign(circuit.numVars(),
                      std::vector<double>(circuit.arity(), 0.0));
    std::vector<bool> observed(circuit.numVars(), false);
    for (uint32_t v = 0; v < circuit.numVars(); ++v) {
        if (evidence[v] != kMissing) {
            observed[v] = true;
            table.prob[v][evidence[v]] = 1.0;
        }
    }

    // P(v = val, e) = sum over leaves of v of d_leaf * dist[val]; the
    // leaf log-densities are pre-computed in the flat lowering.
    std::vector<std::vector<double>> joint(
        circuit.numVars(), std::vector<double>(circuit.arity(), kLogZero));
    for (size_t i = 0; i < circuit.numNodes(); ++i) {
        if (flat->types[i] != FlatCircuit::kLeaf)
            continue;
        const uint32_t slot = flat->leafSlot[i];
        const uint32_t var = flat->leafVar[slot];
        if (observed[var] || logd[i] == kLogZero)
            continue;
        for (uint32_t val = 0; val < circuit.arity(); ++val) {
            double log_dist =
                flat->leafLogDist[size_t(slot) * circuit.arity() + val];
            if (log_dist == kLogZero)
                continue;
            joint[var][val] =
                logAdd(joint[var][val], logd[i] + log_dist);
        }
    }
    for (uint32_t v = 0; v < circuit.numVars(); ++v) {
        if (observed[v])
            continue;
        for (uint32_t val = 0; val < circuit.arity(); ++val)
            table.prob[v][val] = std::exp(joint[v][val] - log_e);
    }
    return table;
}

Assignment
sampleConditional(Rng &rng, const Circuit &circuit,
                  const Assignment &evidence)
{
    reasonAssert(evidence.size() == circuit.numVars(),
                 "evidence must cover all circuit variables");
    std::vector<double> logv = circuit.evaluate(evidence);
    if (logv[circuit.root()] == kLogZero)
        fatal("sampleConditional: evidence has zero probability");

    Assignment out(circuit.numVars(), kMissing);
    std::vector<NodeId> stack{circuit.root()};
    while (!stack.empty()) {
        NodeId id = stack.back();
        stack.pop_back();
        const PcNode &node = circuit.node(id);
        switch (node.type) {
          case PcNodeType::Leaf: {
            if (evidence[node.var] != kMissing) {
                out[node.var] = evidence[node.var];
            } else {
                out[node.var] = uint32_t(rng.categorical(node.dist));
            }
            break;
          }
          case PcNodeType::Product:
            for (NodeId c : node.children)
                stack.push_back(c);
            break;
          case PcNodeType::Sum: {
            // Choose a branch proportionally to theta * child value.
            double hi = kLogZero;
            for (size_t k = 0; k < node.children.size(); ++k)
                if (node.weights[k] > 0.0)
                    hi = std::max(hi, logv[node.children[k]]);
            std::vector<double> w(node.children.size(), 0.0);
            double total = 0.0;
            for (size_t k = 0; k < node.children.size(); ++k) {
                double lv = logv[node.children[k]];
                if (node.weights[k] > 0.0 && lv != kLogZero) {
                    w[k] = node.weights[k] * std::exp(lv - hi);
                    total += w[k];
                }
            }
            if (total <= 0.0) {
                // Evidence zeroed out every child (possible in
                // non-smooth circuits, or by underflow): fall back to
                // the prior mixture weights rather than handing
                // rng.categorical an all-zero vector.
                w = node.weights;
            }
            stack.push_back(node.children[rng.categorical(w)]);
            break;
          }
        }
    }
    return out;
}

double
exactEntropy(const Circuit &circuit)
{
    uint64_t combos = 0;
    reasonAssert(checkedIntPow(circuit.arity(), circuit.numVars(),
                               uint64_t(1) << 22, &combos),
                 "exactEntropy: state space too large to enumerate");
    std::shared_ptr<const FlatCircuit> flat = cachedLowering(circuit);
    CircuitEvaluator eval(*flat);
    Assignment x(circuit.numVars(), 0);
    double entropy = 0.0;
    for (uint64_t n = 0; n < combos; ++n) {
        uint64_t rem = n;
        for (uint32_t v = 0; v < circuit.numVars(); ++v) {
            x[v] = uint32_t(rem % circuit.arity());
            rem /= circuit.arity();
        }
        double ll = eval.logLikelihood(x);
        if (ll == kLogZero)
            continue;
        entropy -= std::exp(ll) * ll;
    }
    return entropy;
}

double
sampledEntropy(Rng &rng, const Circuit &circuit, size_t samples)
{
    reasonAssert(samples > 0, "need at least one sample");
    auto data = sampleDataset(rng, circuit, samples);
    std::shared_ptr<const FlatCircuit> flat = cachedLowering(circuit);
    CircuitEvaluator eval(*flat);
    std::vector<double> ll(data.size());
    eval.logLikelihoodBatch(data, ll);
    double acc = 0.0;
    for (double v : ll)
        acc += v;
    return -acc / double(samples);
}

double
expectedValue(const Circuit &circuit,
              const std::vector<std::vector<double>> &f,
              const Assignment &evidence)
{
    reasonAssert(f.size() == circuit.numVars(),
                 "statistic must cover all circuit variables");
    MarginalTable table = posteriorMarginals(circuit, evidence);
    double acc = 0.0;
    for (uint32_t v = 0; v < circuit.numVars(); ++v) {
        reasonAssert(f[v].size() == circuit.arity(),
                     "statistic row must cover the variable arity");
        for (uint32_t val = 0; val < circuit.arity(); ++val)
            acc += table.prob[v][val] * f[v][val];
    }
    return acc;
}

std::vector<std::vector<double>>
pairwiseMarginal(const Circuit &circuit, uint32_t a, uint32_t b)
{
    reasonAssert(a < circuit.numVars() && b < circuit.numVars() && a != b,
                 "pairwiseMarginal needs two distinct variables");
    std::vector<std::vector<double>> joint(
        circuit.arity(), std::vector<double>(circuit.arity(), 0.0));
    std::shared_ptr<const FlatCircuit> flat = cachedLowering(circuit);
    CircuitEvaluator eval(*flat);
    Assignment x(circuit.numVars(), kMissing);
    for (uint32_t i = 0; i < circuit.arity(); ++i) {
        for (uint32_t j = 0; j < circuit.arity(); ++j) {
            x[a] = i;
            x[b] = j;
            joint[i][j] = std::exp(eval.logLikelihood(x));
        }
    }
    return joint;
}

double
mutualInformation(const Circuit &circuit, uint32_t a, uint32_t b)
{
    auto joint = pairwiseMarginal(circuit, a, b);
    uint32_t arity = circuit.arity();
    std::vector<double> pa(arity, 0.0), pb(arity, 0.0);
    for (uint32_t i = 0; i < arity; ++i)
        for (uint32_t j = 0; j < arity; ++j) {
            pa[i] += joint[i][j];
            pb[j] += joint[i][j];
        }
    double mi = 0.0;
    for (uint32_t i = 0; i < arity; ++i) {
        for (uint32_t j = 0; j < arity; ++j) {
            double p = joint[i][j];
            if (p <= 0.0 || pa[i] <= 0.0 || pb[j] <= 0.0)
                continue;
            mi += p * std::log(p / (pa[i] * pb[j]));
        }
    }
    return std::max(0.0, mi);
}

} // namespace pc
} // namespace reason
