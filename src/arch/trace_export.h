/**
 * @file
 * Pipeline-trace rendering and export (Fig. 9): turn the symbolic
 * engine's cycle-stamped TraceEvents into a human-readable timeline
 * like the paper's case-study figure, or into Chrome trace-event JSON
 * (chrome://tracing, Perfetto) for interactive inspection.
 */

#ifndef REASON_ARCH_TRACE_EXPORT_H
#define REASON_ARCH_TRACE_EXPORT_H

#include <string>
#include <vector>

#include "arch/symbolic.h"

namespace reason {
namespace arch {

/**
 * Render a trace as a per-unit timeline table: one row per hardware
 * unit (broadcast, reduce, fifo, wl, dma, control, conflict), one
 * column per cycle with activity markers, followed by the event legend.
 * Suitable for small traces (the Fig. 9 case study); long traces are
 * clipped to `max_cycles`.
 */
std::string renderTimeline(const std::vector<TraceEvent> &trace,
                           uint64_t max_cycles = 64);

/**
 * Chrome trace-event JSON (the "trace event format" array form).  Each
 * TraceEvent becomes an instant event on its unit's track; cycles map
 * to microseconds so Perfetto's zoom labels read as cycle counts.
 */
std::string toChromeTrace(const std::vector<TraceEvent> &trace);

/**
 * Merge multiple episode traces (e.g. successive decide() calls) into
 * one stream, preserving cycle order.
 */
std::vector<TraceEvent> mergeTraces(
    const std::vector<std::vector<TraceEvent>> &traces);

class DramModel; // arch/dram.h

/**
 * Summarize a DRAM model's per-bank row-buffer counters as "dram"-unit
 * TraceEvents (one aggregate line plus one line per touched bank),
 * stamped at `cycle` — typically appended to a merged trace so the
 * co-sim export carries the memory-system view alongside the pipeline
 * units.
 */
std::vector<TraceEvent> dramSummaryEvents(const DramModel &dram,
                                          uint64_t cycle);

} // namespace arch
} // namespace reason

#endif // REASON_ARCH_TRACE_EXPORT_H
