/**
 * @file
 * Measurement of a task bundle's symbolic operation counts: the solver
 * search effort, DAG sizes, and query volumes that the device timing
 * models and the REASON simulator consume.
 */

#ifndef REASON_WORKLOADS_TIMING_H
#define REASON_WORKLOADS_TIMING_H

#include <cstdint>

#include "core/dag.h"
#include "logic/solver.h"
#include "workloads/workloads.h"

namespace reason {
namespace workloads {

/** Aggregate symbolic work of one task bundle. */
struct SymbolicOps
{
    /** SAT: summed CDCL search statistics over all instances. */
    logic::SolverStats sat;
    size_t clauseDbBytes = 0;
    /** PC: DAG node evaluations = nodes x queries (per class). */
    uint64_t pcDagNodes = 0;
    uint64_t pcQueries = 0;
    /** HMM: DAG node evaluations over all queries. */
    uint64_t hmmDagNodes = 0;
    uint64_t hmmQueries = 0;
    /** Bytes touched by probabilistic kernels (memory model input). */
    double probBytes = 0.0;

    uint64_t totalDagNodes() const { return pcDagNodes + hmmDagNodes; }
};

/**
 * Run the bundle's symbolic kernels once on the software substrates and
 * collect operation counts.  Deterministic for a given bundle.
 *
 * @param optimized measure the pruned+regularized DAGs instead of the
 *        unified Stage-1 DAGs (Table V's "REASON Algo." rows).
 */
SymbolicOps measureSymbolicOps(const TaskBundle &bundle,
                               bool optimized = false);

} // namespace workloads
} // namespace reason

#endif // REASON_WORKLOADS_TIMING_H
