/**
 * @file
 * Table II reproduction: hardware inefficiency analysis of neural,
 * symbolic, and probabilistic kernels on a GPU — compute throughput,
 * ALU utilization, cache behavior, DRAM bandwidth pressure, and control
 * divergence, from the analytic divergence/locality model.
 *
 * Paper shape: MatMul near-peak on everything; Logic/Marginal/Bayesian
 * kernels at 15-35 % compute throughput, <55 % cache hit rates,
 * 60-70 % DRAM BW utilization, ~50-60 % warp efficiency.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "baselines/device.h"
#include "util/table.h"

using namespace reason;
using namespace reason::baselines;

namespace {

void
BM_MetricsModel(benchmark::State &state)
{
    for (auto _ : state)
        for (auto cls : {KernelClass::DenseMatMul,
                         KernelClass::SymbolicBcp,
                         KernelClass::ProbCircuit})
            benchmark::DoNotOptimize(gpuKernelMetrics(cls));
}
BENCHMARK(BM_MetricsModel);

void
printTable2()
{
    std::vector<KernelClass> kernels = {
        KernelClass::DenseMatMul, KernelClass::Softmax,
        KernelClass::SparseMatVec, KernelClass::SymbolicBcp,
        KernelClass::ProbCircuit, KernelClass::HmmSequential};

    Table t({"Metric", "MatMul", "Softmax", "SpMV", "Logic",
             "Marginal", "Bayesian"});

    auto row = [&](const char *name, auto getter) {
        std::vector<std::string> r{name};
        for (KernelClass cls : kernels)
            r.push_back(Table::num(getter(gpuKernelMetrics(cls)), 1));
        t.addRow(r);
    };
    row("Compute Throughput (%)",
        [](const GpuKernelMetrics &m) { return m.computeThroughputPct; });
    row("ALU Utilization (%)",
        [](const GpuKernelMetrics &m) { return m.aluUtilizationPct; });
    row("L1 Cache Throughput (%)",
        [](const GpuKernelMetrics &m) { return m.l1ThroughputPct; });
    row("L2 Cache Throughput (%)",
        [](const GpuKernelMetrics &m) { return m.l2ThroughputPct; });
    row("L1 Cache Hit Rate (%)",
        [](const GpuKernelMetrics &m) { return m.l1HitRatePct; });
    row("L2 Cache Hit Rate (%)",
        [](const GpuKernelMetrics &m) { return m.l2HitRatePct; });
    row("DRAM BW Utilization (%)",
        [](const GpuKernelMetrics &m) { return m.dramBwUtilizationPct; });
    row("Warp Exec Efficiency (%)",
        [](const GpuKernelMetrics &m) {
            return m.warpExecEfficiencyPct;
        });
    row("Branch Efficiency (%)",
        [](const GpuKernelMetrics &m) { return m.branchEfficiencyPct; });
    row("Eligible Warps/Cycle (%)",
        [](const GpuKernelMetrics &m) { return m.eligibleWarpsPct; });

    std::printf("\n");
    t.print("Table II — GPU kernel inefficiency model "
            "(neural regular vs symbolic/probabilistic irregular)");
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printTable2();
    return 0;
}
