/**
 * @file
 * Fig. 9 reproduction: the cycle-by-cycle symbolic execution case
 * study.  A scripted CNF reproduces the paper's event sequence —
 * decision broadcast, pipelined implications through the BCP FIFO,
 * a watch-list SRAM miss serviced by DMA while the FIFO keeps working,
 * and priority conflict handling that flushes the FIFO and cancels the
 * fetch — plus the top-level GPU/REASON task overlap.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "arch/dram.h"
#include "arch/symbolic.h"
#include "arch/trace_export.h"
#include "sys/system.h"
#include "util/table.h"

using namespace reason;
using namespace reason::arch;
using namespace reason::logic;

namespace {

void
BM_BcpDecide(benchmark::State &state)
{
    CnfFormula f(40);
    for (int i = 0; i + 2 < 40; ++i)
        f.addClause({-(i + 1), i + 2, i + 3});
    ArchConfig cfg;
    for (auto _ : state) {
        BcpPipeline pipe(f, cfg);
        benchmark::DoNotOptimize(pipe.decide(Lit::make(0, false)));
    }
}
BENCHMARK(BM_BcpDecide);

void
printFig9()
{
    // Scripted formula in the spirit of the paper's example: x1 implies
    // x2 and ~x3; follow-on implications chain through x12 and x99
    // proxies; a final binary pair creates the conflict.
    CnfFormula f(10);
    f.addClause({-1, 2});       // decision x0 -> x1
    f.addClause({-1, -3});      //              -> ~x2
    f.addClause({-2, 4});       // x1 -> x3   ("x12" in the paper)
    f.addClause({-4, 5});       // x3 -> x4   ("x99")
    f.addClause({-5, 6});       // x4 -> x5
    f.addClause({-5, -6});      // x4 -> ~x5  => conflict
    ArchConfig cfg;
    cfg.sramBytes = 64; // force a watch-list miss + DMA mid-pipeline
    BcpPipeline pipe(f, cfg);
    BcpResult r = pipe.decide(Lit::make(0, false), true);

    std::printf("\nFig. 9 — intra-REASON pipeline trace "
                "(decision x0=1):\n");
    std::printf("  %-6s %-10s %s\n", "cycle", "unit", "event");
    for (const auto &ev : r.trace)
        std::printf("  T%-5llu %-10s %s\n",
                    static_cast<unsigned long long>(ev.cycle),
                    ev.unit.c_str(), ev.detail.c_str());
    std::printf("episode: %zu implications, conflict=%s, %llu cycles\n",
                r.implications.size(), r.conflict ? "yes" : "no",
                static_cast<unsigned long long>(r.cycles));
    // Append the DRAM per-bank view so the exported co-sim trace is
    // memory-faithful alongside the pipeline units.
    std::vector<TraceEvent> full_trace = r.trace;
    if (pipe.dram() != nullptr) {
        std::vector<TraceEvent> dram_events =
            dramSummaryEvents(*pipe.dram(), pipe.totalCycles());
        full_trace = mergeTraces({r.trace, dram_events});
    }
    std::printf("\nFig. 9 timeline view (arch/trace_export):\n%s",
                renderTimeline(full_trace, 96).c_str());
    std::printf("hardware counters:\n%s",
                pipe.events().toString().c_str());
    if (pipe.dram() != nullptr) {
        StatGroup dram_stats;
        pipe.dram()->exportStats(dram_stats);
        std::printf("dram counters:\n%s",
                    dram_stats.toString().c_str());
    }

    // Top of Fig. 9: GPU-REASON task-level overlap across 3 tasks.
    sys::StageCost neural{0.9e-3, 0.0};
    sys::StageCost symbolic{0.6e-3, 0.0};
    sys::EndToEnd overlapped =
        sys::pipelinedComposition(neural, symbolic, 3);
    sys::EndToEnd serial =
        sys::serialComposition(neural, symbolic, 3, 0.0);
    Table t({"Execution", "3-task latency [ms]", "Speedup"});
    t.addRow({"serial GPU->REASON", Table::num(serial.totalSeconds * 1e3, 2),
              "1.00x"});
    t.addRow({"two-level pipeline",
              Table::num(overlapped.totalSeconds * 1e3, 2),
              Table::ratio(serial.totalSeconds /
                           overlapped.totalSeconds, 2)});
    std::printf("\n");
    t.print("Fig. 9 (top) — GPU-REASON two-level pipeline overlap");
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printFig9();
    return 0;
}
