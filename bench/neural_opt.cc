/**
 * @file
 * Sec. VII-C "REASON neural optimization" reproduction: the LLM-side
 * acceleration stack (memory-efficient attention, chunked prefill,
 * speculative decoding, FlashAttention-3, FP8 KV cache, prefix caching)
 * modeled as phase multipliers over a prefill/decode split.
 *
 * Paper shape: 2.8-3.3x latency reduction for unique prompts, 4-5x with
 * reused prefixes; the techniques are orthogonal to REASON, and after
 * applying them the end-to-end bottleneck shifts further toward the
 * symbolic stage — strengthening, not weakening, the case for symbolic
 * acceleration.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "baselines/device.h"
#include "baselines/neural_opt.h"
#include "util/table.h"

using namespace reason;
using namespace reason::baselines;

namespace {

LlmConfig
uniquePromptConfig()
{
    LlmConfig cfg; // 512-token prompts, 128 generated: decode-heavy
    return cfg;
}

LlmConfig
reusedPrefixConfig()
{
    LlmConfig cfg;
    cfg.promptTokens = 4096; // long shared context (RAG / system prompt)
    cfg.genTokens = 96;
    cfg.prefixReuseFraction = 0.8;
    return cfg;
}

void
BM_StackEvaluation(benchmark::State &state)
{
    DeviceModel gpu = rtxA6000();
    LlmConfig cfg = uniquePromptConfig();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            stackSpeedup(cfg, gpu, fullNeuralOptStack()));
}
BENCHMARK(BM_StackEvaluation);

void
printIncrementalTable()
{
    DeviceModel gpu = rtxA6000();
    LlmConfig unique = uniquePromptConfig();
    LlmConfig reused = reusedPrefixConfig();

    Table t({"Technique stack (cumulative)", "unique-prompt x",
             "reused-prefix x"});
    std::vector<NeuralOpt> stack;
    t.addRow({"(baseline)", "1.00", "1.00"});
    for (NeuralOpt opt : fullNeuralOptStack()) {
        stack.push_back(opt);
        t.addRow({std::string("+ ") + neuralOptName(opt),
                  Table::num(stackSpeedup(unique, gpu, stack), 2),
                  Table::num(stackSpeedup(reused, gpu, stack), 2)});
    }
    std::printf("\n");
    t.print("Neural optimization stack on RTX A6000 "
            "(paper: 2.8-3.3x unique, 4-5x reused prefixes)");
}

void
printPerDeviceTable()
{
    Table t({"Device", "unique-prompt x", "reused-prefix x",
             "neural share before", "neural share after"});
    // Neural runtime share of an end-to-end task where the symbolic
    // stage takes as long as the *unoptimized* neural stage (the
    // Fig. 3(a) ~50/50 regime).
    for (const DeviceModel &dev : {rtxA6000(), orinNx(), a100()}) {
        LlmConfig unique = uniquePromptConfig();
        double base = baselineNeuralCost(unique, dev).totalSeconds();
        double opt =
            optimizedNeuralCost(unique, dev, fullNeuralOptStack())
                .totalSeconds();
        double symbolic = base; // 50/50 split before optimization
        t.addRow({dev.name,
                  Table::num(stackSpeedup(unique, dev,
                                          fullNeuralOptStack()), 2),
                  Table::num(stackSpeedup(reusedPrefixConfig(), dev,
                                          fullNeuralOptStack()), 2),
                  Table::num(100.0 * base / (base + symbolic), 1),
                  Table::num(100.0 * opt / (opt + symbolic), 1)});
    }
    std::printf("\n");
    t.print("Stack across devices: the neural share of end-to-end time "
            "falls, shifting the bottleneck to the symbolic stage");
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printIncrementalTable();
    printPerDeviceTable();
    return 0;
}
