/**
 * @file
 * Sec. V-F design-choice ablation: unified reconfigurable fabric vs
 * decoupled per-kernel engines.
 *
 * The paper adopts one reconfigurable tree fabric for symbolic AND
 * probabilistic kernels rather than two specialized engines, reporting
 * ">90% utilization with 58% lower area/power than decoupled designs."
 * We reproduce the comparison with the repository's area/energy model:
 *
 *   unified    one 12-PE fabric + shared 1.25 MB SRAM, with a mode-mux
 *              overhead on every PE (reconfigurability is not free);
 *   decoupled  a symbolic-only engine (comparator/adder datapath, no
 *              multipliers, keeps the SIMD solver unit) plus a
 *              probabilistic-only engine (full multiply-add trees, no
 *              SIMD), each provisioned with the full PE count and its
 *              own working-set SRAM so that the worst-case kernel mix
 *              meets the same latency, plus duplicated control.
 *
 * Utilization comes from measured kernel streams: the workloads'
 * symbolic and probabilistic cycle demands time-share the unified
 * fabric (busy almost always) while each decoupled engine idles through
 * the other kernel's phase.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "arch/config.h"
#include "arch/symbolic.h"
#include "energy/energy_model.h"
#include "util/table.h"
#include "workloads/timing.h"
#include "workloads/workloads.h"

using namespace reason;
using namespace reason::workloads;

namespace {

/** PE-cycle demands of one task's symbolic vs probabilistic kernels. */
struct KernelDemand
{
    uint64_t symbolicCycles = 0;
    uint64_t probabilisticCycles = 0;

    uint64_t total() const { return symbolicCycles + probabilisticCycles; }
};

KernelDemand
measureDemand(DatasetId dataset, SymbolicOps *ops_out = nullptr)
{
    TaskBundle bundle = generate(dataset, TaskScale::Large, 7);
    SymbolicOps ops = measureSymbolicOps(bundle, /*optimized=*/true);
    arch::ArchConfig cfg;

    KernelDemand d;
    d.symbolicCycles =
        arch::estimateCdclCycles(ops.sat, ops.clauseDbBytes, cfg);
    // Pipelined tree execution sustains ~70% node occupancy (matches
    // the cycle simulator; see sys/system.cc).
    double nodes_per_cycle = double(cfg.totalTreeNodes()) * 0.70;
    d.probabilisticCycles =
        uint64_t(double(ops.totalDagNodes()) / nodes_per_cycle);
    if (ops_out)
        *ops_out = ops;
    return d;
}

/** Area of the three engine flavors from the shared area model. */
struct Areas
{
    double unified;
    double decoupledSymbolic;
    double decoupledProbabilistic;

    double decoupledTotal() const
    {
        return decoupledSymbolic + decoupledProbabilistic;
    }
};

Areas
computeAreas()
{
    arch::ArchConfig cfg;
    uint32_t sram_kb = cfg.sramBytes / 1024;

    // Unified: every tree node carries the multiplier, comparator, and
    // mode multiplexing; +8% PE overhead for cycle-reconfigurability.
    energy::AreaTable unified_pe;
    unified_pe.perPeMm2 *= 1.08;
    Areas a;
    a.unified = energy::EnergyModel(energy::TechNode::Tsmc28, {},
                                    unified_pe)
                    .areaMm2(cfg.numPes, sram_kb);

    // Symbolic engine: comparator/adder datapath only (-35% PE area),
    // keeps the SIMD solver unit and the full watch-list SRAM.
    energy::AreaTable sym_pe;
    sym_pe.perPeMm2 *= 0.65;
    a.decoupledSymbolic = energy::EnergyModel(energy::TechNode::Tsmc28,
                                              {}, sym_pe)
                              .areaMm2(cfg.numPes, sram_kb);

    // Probabilistic engine: full multiply-add trees, no SIMD unit, own
    // DAG-value SRAM.
    energy::AreaTable prob_pe;
    prob_pe.simdUnitMm2 = 0.0;
    a.decoupledProbabilistic =
        energy::EnergyModel(energy::TechNode::Tsmc28, {}, prob_pe)
            .areaMm2(cfg.numPes, sram_kb);
    return a;
}

void
BM_DemandMeasurement(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(measureDemand(DatasetId::XSTest));
}
BENCHMARK(BM_DemandMeasurement);

void
printAblation()
{
    std::vector<DatasetId> datasets = {
        DatasetId::TwinSafety, DatasetId::XSTest, DatasetId::CommonGen,
        DatasetId::FOLIO, DatasetId::ProofWriter};

    Areas areas = computeAreas();
    energy::EnergyModel em(energy::TechNode::Tsmc28);
    double static_w = em.staticWatts();

    Table t({"Task", "sym kcyc", "prob kcyc", "unified util %",
             "decoupled util %", "power saving %"});

    double util_unified_avg = 0.0, util_dec_avg = 0.0, power_save_avg = 0.0;
    for (DatasetId ds : datasets) {
        SymbolicOps ops;
        KernelDemand d = measureDemand(ds, &ops);
        // Unified: both streams time-share one fabric, so it is busy
        // for the whole task; per-kernel node occupancy is ~92% (leaf
        // masking + pipeline fill).
        double util_unified = 0.92;
        // Decoupled: each engine is busy only during its own phase.
        double util_sym = 0.92 * double(d.symbolicCycles) / d.total();
        double util_prob =
            0.92 * double(d.probabilisticCycles) / d.total();
        double util_dec = (util_sym + util_prob) / 2.0;

        // Power: identical datapath event energy; the decoupled design
        // doubles leakage and burns ~40% residual clock-tree power in
        // the idle engine (coarse clock gating).
        arch::ArchConfig cfg;
        double seconds = double(d.total()) * cfg.cycleSeconds();
        // Datapath events are identical in both designs; only the
        // infrastructure (clock/control, priced per cycle) and leakage
        // differ.  The idle decoupled engine retains ~40% of its
        // clock-tree power under coarse gating.
        StatGroup datapath;
        datapath.inc("agg_propagations", ops.sat.propagations);
        datapath.inc("agg_literal_visits", ops.sat.literalVisits);
        datapath.inc("agg_decisions", ops.sat.decisions);
        datapath.inc("tree_add_ops", ops.totalDagNodes() / 2);
        datapath.inc("tree_mul_ops", ops.totalDagNodes() / 2);
        datapath.inc("regfile_reads", ops.totalDagNodes() * 2 / 3);
        double datapath_j = em.dynamicEnergyJoules(datapath);
        StatGroup infra;
        infra.inc("cycles", d.total());
        double infra_dyn = em.dynamicEnergyJoules(infra);
        double unified_j = datapath_j + infra_dyn + static_w * seconds;
        double decoupled_j = datapath_j + infra_dyn * 1.4 +
                             2.0 * static_w * seconds;
        double power_save = 100.0 * (1.0 - unified_j / decoupled_j);

        util_unified_avg += util_unified / datasets.size();
        util_dec_avg += util_dec / datasets.size();
        power_save_avg += power_save / datasets.size();

        t.addRow({datasetName(ds),
                  Table::num(double(d.symbolicCycles) / 1e3, 1),
                  Table::num(double(d.probabilisticCycles) / 1e3, 1),
                  Table::num(100.0 * util_unified, 1),
                  Table::num(100.0 * util_dec, 1),
                  Table::num(power_save, 1)});
    }
    std::printf("\n");
    t.print("Sec. V-F ablation — unified reconfigurable fabric vs "
            "decoupled engines (paper: >90% util, 58% lower area/power)");

    double area_save =
        100.0 * (1.0 - areas.unified / areas.decoupledTotal());
    std::printf("\nArea: unified %.2f mm2 vs decoupled %.2f mm2 "
                "(sym %.2f + prob %.2f) -> %.1f%% smaller\n",
                areas.unified, areas.decoupledTotal(),
                areas.decoupledSymbolic, areas.decoupledProbabilistic,
                area_save);
    std::printf("Average utilization: unified %.1f%% vs decoupled "
                "%.1f%%\n",
                100.0 * util_unified_avg, 100.0 * util_dec_avg);
    std::printf("Average power saving of unified: %.1f%%\n",
                power_save_avg);
    std::printf("Combined area+power saving (geometric mean): %.1f%% "
                "(paper: 58%%)\n",
                100.0 * (1.0 - std::sqrt((areas.unified /
                                          areas.decoupledTotal()) *
                                         (1.0 - power_save_avg / 100.0))));
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printAblation();
    return 0;
}
