/**
 * @file
 * Compilation of the three reasoning substrates into the unified DAG
 * (REASON Sec. IV-A): CNF formulas, probabilistic circuits, and unrolled
 * HMM forward passes.
 */

#ifndef REASON_CORE_BUILDERS_H
#define REASON_CORE_BUILDERS_H

#include <vector>

#include "core/dag.h"
#include "hmm/hmm.h"
#include "logic/cnf.h"
#include "pc/pc.h"

namespace reason {
namespace core {

/**
 * CNF -> DAG.  Input slot v carries variable v as a {0,1} value; each
 * positive literal reads the input, each negative literal goes through a
 * Not node; clauses become Max nodes, the formula root a Min node.
 * evaluateRoot() is 1.0 iff the assignment satisfies the formula.
 */
Dag buildFromCnf(const logic::CnfFormula &formula);

/**
 * PC -> DAG.  Input slot k carries the k-th leaf's density value
 * f_leaf(x) (computed host-side for a given assignment); sum nodes become
 * weighted Sum, product nodes Product.  evaluateRoot() equals the
 * circuit's (linear-space) likelihood.
 *
 * @param leaf_order output: leaf node id of the circuit for input slot k.
 */
Dag buildFromCircuit(const pc::Circuit &circuit,
                     std::vector<pc::NodeId> *leaf_order = nullptr);

/**
 * Leaf input values for a circuit assignment, aligned with `leaf_order`
 * from buildFromCircuit.  Missing variables contribute 1.0 (marginalized).
 */
std::vector<double> circuitLeafInputs(
    const pc::Circuit &circuit, const std::vector<pc::NodeId> &leaf_order,
    const pc::Assignment &x);

/**
 * HMM forward pass -> DAG, unrolled over an observation sequence.
 * Transition probabilities become Sum edge weights; emissions become
 * Const multipliers.  evaluateRoot() equals linear-space P(obs).
 * Suitable for moderate sequence lengths (probabilities stay above
 * double underflow).
 */
Dag buildFromHmm(const hmm::Hmm &hmm, const hmm::Sequence &obs);

/**
 * Max-product variant of the HMM DAG (Viterbi score): Sum nodes are
 * replaced by Max over weighted Products.  evaluateRoot() equals the
 * linear-space probability of the best path.
 */
Dag buildFromHmmViterbi(const hmm::Hmm &hmm, const hmm::Sequence &obs);

} // namespace core
} // namespace reason

#endif // REASON_CORE_BUILDERS_H
