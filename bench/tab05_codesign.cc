/**
 * @file
 * Table V reproduction: necessity-of-co-design ablation.  Normalized
 * runtime of (1) the unmodified algorithms on Orin NX, (2) REASON
 * algorithm optimizations on Orin NX, and (3) REASON algorithms on
 * REASON hardware, for IMO / MiniF2F / TwinSafety / XSTest / CommonGen.
 *
 * Paper shape: algo-only ≈ 78-87 % of baseline; algo+hardware ≈ 2 %.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "sys/system.h"
#include "util/table.h"
#include "workloads/timing.h"
#include "workloads/workloads.h"

using namespace reason;
using workloads::DatasetId;

namespace {

void
BM_OptimizedMeasurement(benchmark::State &state)
{
    workloads::TaskBundle b = workloads::generate(
        DatasetId::TwinSafety, workloads::TaskScale::Small, 3);
    for (auto _ : state) {
        auto ops = workloads::measureSymbolicOps(b, true);
        benchmark::DoNotOptimize(ops.pcDagNodes);
    }
}
BENCHMARK(BM_OptimizedMeasurement)->Unit(benchmark::kMillisecond);

void
printTable5()
{
    std::vector<DatasetId> tasks = {
        DatasetId::IMO, DatasetId::MiniF2F, DatasetId::TwinSafety,
        DatasetId::XSTest, DatasetId::CommonGen};

    Table t({"System", "IMO", "MiniF2F", "TwinS", "XSTest", "ComGen"});
    std::vector<std::string> base_row{"Baseline algo @ Orin NX"};
    std::vector<std::string> algo_row{"REASON algo @ Orin NX"};
    std::vector<std::string> hw_row{"REASON algo @ REASON HW"};
    for (DatasetId d : tasks) {
        workloads::TaskBundle b =
            workloads::generate(d, workloads::TaskScale::Small, 21);
        workloads::SymbolicOps base =
            workloads::measureSymbolicOps(b, false);
        workloads::SymbolicOps opt =
            workloads::measureSymbolicOps(b, true);
        double orin_base =
            sys::symbolicCost(sys::Platform::OrinNx, base).seconds;
        double orin_opt =
            sys::symbolicCost(sys::Platform::OrinNx, opt).seconds;
        double reason_opt =
            sys::symbolicCost(sys::Platform::ReasonAccel, opt).seconds;
        base_row.push_back("100%");
        algo_row.push_back(Table::percent(orin_opt / orin_base));
        hw_row.push_back(Table::percent(reason_opt / orin_base));
    }
    t.addRow(base_row);
    t.addRow(algo_row);
    t.addRow(hw_row);
    std::printf("\n");
    t.print("Table V — co-design ablation, normalized runtime "
            "(paper: algo-only 78-87%, algo+HW ~2%)");
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printTable5();
    return 0;
}
