/**
 * @file
 * Length-prefixed binary wire protocol of the socket serving
 * front-end (`reason_cli serve --listen` / `bench-client`).
 *
 * Frame layout (all integers little-endian, packed, no padding):
 *
 *     [u32 length][u8 type][payload ...]
 *
 * `length` counts the type byte plus the payload, so an empty frame
 * has length 1.  Frame types:
 *
 *     Hello    = 1  client -> server   u32 protocolVersion,
 *                                      u64 clientId (v3+; versions
 *                                      beyond v3 may append fields —
 *                                      the decoder tolerates trailing
 *                                      bytes there so the server can
 *                                      still answer the mismatch)
 *     HelloAck = 2  server -> client   u32 protocolVersion
 *     Submit   = 3  client -> server   u64 id, u32 mode,
 *                                      u64 budget (double bits),
 *                                      u64 deadlineNs (v3: relative
 *                                      nanoseconds, 0 = none),
 *                                      u32 numRows, u32 numVars,
 *                                      numRows*numVars u32 values
 *                                      (row-major; kMissing allowed)
 *     Result   = 4  server -> client   u64 id, i32 error, u8 tier,
 *                                      u32 numRows,
 *                                      numRows u64 double bit
 *                                      patterns (log-likelihoods);
 *                                      tier 1 appends numRows
 *                                      (lo, hi) u64 pairs (bounds)
 *     Ping     = 5  either direction   u64 token
 *     Pong     = 6  either direction   u64 token (echoed)
 *
 * **Version negotiation (v3).**  The client opens with Hello carrying
 * its version; the server always answers HelloAck carrying *its own*
 * version.  On a mismatch the server closes the connection after the
 * ack, and the client surfaces an explicit version-mismatch error
 * (rather than a generic transport failure).  The Hello clientId is a
 * stable client-chosen identity used for idempotent retry: a server
 * suppresses duplicate execution when a reconnecting client re-sends
 * a query id it has already answered (0 = anonymous, no suppression).
 *
 * Submit carries the reasoning mode and accuracy budget of the
 * approximate tier, and (v3) a *relative* deadline in nanoseconds —
 * relative because client and server steady clocks share no epoch;
 * the server anchors it on receipt.  The decoder accepts *any* mode,
 * budget bits, and deadline — those are semantic properties, validated
 * server-side by validateSubmit(), which maps violations to
 * REASON_ERR_BAD_MODE / REASON_ERR_BAD_BUDGET result frames instead
 * of poisoning the stream.  Result's tier byte is 0 (exact) or 1
 * (approximate, bounds appended); any other tier is a framing
 * violation.  Ping/Pong carry an opaque token so heartbeats can be
 * matched to their echo across pipelined traffic.
 *
 * Result values and bounds travel as raw IEEE-754 bit patterns, never
 * text: the serving contract is *bitwise* identity with in-process
 * submission (NaN payloads and -0.0 signs included), and the checksum
 * helpers fold exactly those bits, so a client can prove end-to-end
 * equality with a local run.
 *
 * Decoding is stream-oriented and malformed-tolerant: FrameDecoder
 * consumes an arbitrary byte stream, yields complete frames, and
 * reports (rather than crashes on) truncated, oversized, unknown, or
 * inconsistent frames — the server drops the connection, the fuzz
 * tests feed it garbage.  A decoder that has reported Malformed is
 * poisoned: framing is lost, so no further frames are yielded —
 * and poisonReason() names the check that failed (length / type /
 * truncation / shape / tier) so retry logic and the fuzz tests can
 * assert the precise failure class.
 *
 * Encoding and decoding use explicit byte packing, so the format is
 * identical on every host (endianness-independent).
 */

#ifndef REASON_SYS_WIRE_H
#define REASON_SYS_WIRE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace reason {
namespace sys {
namespace wire {

/** Protocol version exchanged in Hello/HelloAck (v3: Hello carries a
 *  clientId for idempotent retry, Submit carries a relative deadline,
 *  Ping/Pong heartbeats exist). */
inline constexpr uint32_t kProtocolVersion = 3;

/**
 * Upper bound on `length` (16 MiB): a framing-error guard, so a
 * corrupt length prefix cannot make the decoder buffer gigabytes
 * before noticing the stream is garbage.
 */
inline constexpr uint32_t kMaxFrameBytes = 16u * 1024 * 1024;

enum class FrameType : uint8_t
{
    Hello = 1,
    HelloAck = 2,
    Submit = 3,
    Result = 4,
    Ping = 5,
    Pong = 6,
};

/** Submit payload: a batch of assignment rows under one request id. */
struct SubmitFrame
{
    uint64_t id = 0;
    /**
     * Requested ReasonMode: 0 (exact probabilistic) or 3
     * (approximate tier).  The decoder passes any value through;
     * validateSubmit() enforces the semantic contract.
     */
    uint32_t mode = 0;
    /**
     * Accuracy budget (meaningful for the approximate tier).
     * Travels as raw double bits, so NaN payloads and -0.0 survive
     * the round trip bit-exactly for validation at the server.
     */
    double budget = 0.0;
    /**
     * Relative deadline in nanoseconds (0 = none).  Relative because
     * client and server steady clocks share no epoch; the server
     * anchors it against its own clock on receipt.
     */
    uint64_t deadlineNs = 0;
    uint32_t numVars = 0;
    /** numRows rows of numVars values each (pc::kMissing allowed). */
    std::vector<std::vector<uint32_t>> rows;
};

/** Result payload: per-row log-likelihood bits, or an error code. */
struct ResultFrame
{
    uint64_t id = 0;
    /** 0 on success, else a REASON_ERR_* code; values then empty. */
    int32_t error = 0;
    /** 0 = exact tier, 1 = approximate tier (bounds present). */
    uint8_t tier = 0;
    std::vector<double> values;
    /** Tier 1 only: per-row certified interval endpoints, aligned
     *  with values; empty on tier 0. */
    std::vector<double> boundLo;
    std::vector<double> boundHi;
};

/** One decoded frame; only the member matching `type` is meaningful. */
struct Frame
{
    FrameType type = FrameType::Hello;
    uint32_t helloVersion = 0; ///< Hello and HelloAck
    uint64_t helloClientId = 0; ///< Hello, protocol v3+ (0 = anonymous)
    uint64_t pingToken = 0;    ///< Ping and Pong
    SubmitFrame submit;        ///< Submit
    ResultFrame result;        ///< Result
};

/**
 * Append an encoded frame to `out`.  appendHello encodes the clientId
 * field only for versions >= 3 (the v2 layout had none), so the fuzz
 * and compatibility tests can produce both layouts.
 */
void appendHello(std::vector<uint8_t> &out,
                 uint32_t version = kProtocolVersion,
                 uint64_t clientId = 0);
void appendHelloAck(std::vector<uint8_t> &out,
                    uint32_t version = kProtocolVersion);
void appendSubmit(std::vector<uint8_t> &out, const SubmitFrame &frame);
void appendResult(std::vector<uint8_t> &out, const ResultFrame &frame);
void appendPing(std::vector<uint8_t> &out, uint64_t token);
void appendPong(std::vector<uint8_t> &out, uint64_t token);

/**
 * Incremental decoder over an arbitrary byte stream.  feed() appends
 * received bytes; next() yields frames until the buffer runs dry.
 */
class FrameDecoder
{
  public:
    enum class Status
    {
        NeedMore, ///< no complete frame buffered yet
        Ok,       ///< *out holds the next frame
        Malformed ///< protocol violation; decoder is poisoned
    };

    void feed(const uint8_t *data, size_t n);

    /** Decode the next buffered frame into *out. */
    Status next(Frame *out);

    /** True once a malformed frame has been seen (framing lost). */
    bool poisoned() const
    {
        return poisoned_;
    }

    /**
     * Which check poisoned the decoder, as a short stable token:
     * "length" (length prefix out of [1, kMaxFrameBytes]), "type"
     * (unknown frame type), "truncation" (payload ended inside a
     * fixed header field), "shape" (payload size inconsistent with
     * the declared row/field counts), or "tier" (Result tier byte
     * not 0/1).  Empty while the decoder is healthy.
     */
    const std::string &poisonReason() const
    {
        return poisonReason_;
    }

  private:
    std::vector<uint8_t> buf_;
    size_t pos_ = 0; ///< consumed prefix of buf_
    bool poisoned_ = false;
    std::string poisonReason_;
};

/**
 * Semantic validation of a structurally well-formed Submit frame: the
 * wire layer accepts any mode/budget bits so one bad client request
 * cannot poison the stream; the server maps violations to an error
 * Result on the same connection.  Returns REASON_OK,
 * REASON_ERR_BAD_MODE (mode is neither exact nor approximate), or
 * REASON_ERR_BAD_BUDGET (NaN/infinite/negative budget, or a nonzero
 * budget on the exact mode).
 */
int validateSubmit(const SubmitFrame &frame);

/**
 * FNV-1a over a byte span — the checksum the socket demo uses to
 * prove bitwise agreement between remote and in-process results.
 */
uint64_t fnv1a(const void *data, size_t n, uint64_t seed = 0);

/** FNV-1a folded over the IEEE-754 bit patterns of `values`. */
uint64_t checksumValues(const double *values, size_t n,
                        uint64_t seed = 0);

} // namespace wire
} // namespace sys
} // namespace reason

#endif // REASON_SYS_WIRE_H
