/**
 * @file
 * Unit tests for the util module: RNG determinism and distribution
 * sanity, statistics containers, tables, and numeric helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/numeric.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

using namespace reason;

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a() == b()) ? 1 : 0;
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntBoundsRespected)
{
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.uniformInt(-5, 17);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 17);
    }
}

TEST(Rng, UniformIntSingletonRange)
{
    Rng rng(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(3, 3), 3);
}

TEST(Rng, Uniform01InRange)
{
    Rng rng(9);
    double mean = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform01();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        mean += u;
    }
    mean /= 10000.0;
    EXPECT_NEAR(mean, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    StatAccumulator acc;
    for (int i = 0; i < 20000; ++i)
        acc.add(rng.gaussian(3.0, 2.0));
    EXPECT_NEAR(acc.mean(), 3.0, 0.1);
    EXPECT_NEAR(acc.stddev(), 2.0, 0.1);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, CategoricalFollowsWeights)
{
    Rng rng(17);
    std::vector<double> w{1.0, 3.0, 6.0};
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 20000; ++i)
        ++counts[rng.categorical(w)];
    EXPECT_NEAR(counts[0] / 20000.0, 0.1, 0.02);
    EXPECT_NEAR(counts[1] / 20000.0, 0.3, 0.02);
    EXPECT_NEAR(counts[2] / 20000.0, 0.6, 0.02);
}

TEST(Rng, DirichletSumsToOne)
{
    Rng rng(19);
    for (double alpha : {0.5, 1.0, 4.0}) {
        auto p = rng.dirichlet(8, alpha);
        double total = 0.0;
        for (double v : p) {
            EXPECT_GE(v, 0.0);
            total += v;
        }
        EXPECT_NEAR(total, 1.0, 1e-9);
    }
}

TEST(Rng, PermutationIsBijective)
{
    Rng rng(23);
    auto p = rng.permutation(64);
    std::vector<bool> seen(64, false);
    for (uint32_t v : p) {
        ASSERT_LT(v, 64u);
        EXPECT_FALSE(seen[v]);
        seen[v] = true;
    }
}

TEST(Rng, ExponentialMean)
{
    Rng rng(29);
    StatAccumulator acc;
    for (int i = 0; i < 20000; ++i)
        acc.add(rng.exponential(2.0));
    EXPECT_NEAR(acc.mean(), 0.5, 0.02);
}

TEST(StatAccumulator, MatchesDirectComputation)
{
    StatAccumulator acc;
    std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
    for (double x : xs)
        acc.add(x);
    EXPECT_EQ(acc.count(), 5u);
    EXPECT_DOUBLE_EQ(acc.sum(), 31.0);
    EXPECT_DOUBLE_EQ(acc.mean(), 6.2);
    EXPECT_DOUBLE_EQ(acc.min(), 1.0);
    EXPECT_DOUBLE_EQ(acc.max(), 16.0);
    // Sample variance: sum((x-6.2)^2)/4 = 37.2
    EXPECT_NEAR(acc.variance(), 37.2, 1e-9);
}

TEST(StatAccumulator, MergeEqualsCombined)
{
    Rng rng(31);
    StatAccumulator a, b, all;
    for (int i = 0; i < 500; ++i) {
        double x = rng.gaussian();
        if (i % 2) {
            a.add(x);
        } else {
            b.add(x);
        }
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Histogram, BucketsAndPercentiles)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 100; ++i)
        h.add(i / 10.0); // 0.0 .. 9.9 uniformly
    EXPECT_EQ(h.total(), 100u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    for (size_t b = 0; b < h.bins(); ++b)
        EXPECT_EQ(h.binCount(b), 10u);
    EXPECT_NEAR(h.percentile(0.5), 5.0, 1.01);
    EXPECT_NEAR(h.percentile(0.99), 10.0, 1.01);
}

TEST(Histogram, OverflowUnderflowCounted)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-1.0);
    h.add(2.0);
    h.add(0.5);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(StatGroup, CountersAccumulateAndClear)
{
    StatGroup g;
    g.inc("a");
    g.inc("a", 4);
    g.inc("b", 2);
    EXPECT_EQ(g.get("a"), 5u);
    EXPECT_EQ(g.get("b"), 2u);
    EXPECT_EQ(g.get("missing"), 0u);
    g.clear();
    EXPECT_EQ(g.get("a"), 0u);
}

TEST(Table, RendersAlignedRows)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    std::string s = t.toString();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::percent(0.5), "50.0%");
    EXPECT_EQ(Table::ratio(12.4, 1), "12.4x");
}

TEST(Numeric, LogAddMatchesDirect)
{
    double a = std::log(0.3), b = std::log(0.7);
    EXPECT_NEAR(logAdd(a, b), std::log(1.0), 1e-12);
    EXPECT_DOUBLE_EQ(logAdd(kLogZero, a), a);
    EXPECT_DOUBLE_EQ(logAdd(a, kLogZero), a);
}

TEST(Numeric, LogSumExpStable)
{
    std::vector<double> xs{1000.0, 1000.0};
    EXPECT_NEAR(logSumExp(xs), 1000.0 + std::log(2.0), 1e-9);
    EXPECT_EQ(logSumExp({}), kLogZero);
}

TEST(Numeric, CeilHelpers)
{
    EXPECT_EQ(ceilDiv(7, 2), 4);
    EXPECT_EQ(ceilDiv(8, 2), 4);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(5), 3u);
    EXPECT_EQ(nextPow2(5), 8u);
    EXPECT_EQ(nextPow2(8), 8u);
}

TEST(Numeric, NearlyEqual)
{
    EXPECT_TRUE(nearlyEqual(1.0, 1.0 + 1e-12));
    EXPECT_FALSE(nearlyEqual(1.0, 1.1));
    EXPECT_TRUE(nearlyEqual(0.0, 0.0));
}
