/**
 * @file
 * Differential harness for the direct CNF → d-DNNF → FlatCircuit
 * compilation route.
 *
 * A 200-formula randomized corpus (mixed clause lengths, unit clauses,
 * duplicated clauses, pure literals, planted-SAT and forced-UNSAT
 * instances, unused variables) drives every formula through four
 * independent routes to the same weighted model count:
 *
 *   1. legacy Dag route:   compileToDnnf + DnnfGraph::wmc
 *   2. direct flat route:  flatFromDnnf + flatLogWmc
 *   3. streamed route:     toC2dFormat → streamNnfToFlat (asserted
 *                          byte-identical to route 2's CSR arrays)
 *   4. brute force:        assignment enumeration (<= 20 vars)
 *
 * Agreement is bitwise or within 1e-10 relative.  The same corpus
 * checks evidence queries against conditionalMarginal, fingerprint
 * stability across routes (pc/flat_cache interop), and end-to-end
 * serving of compiled knowledge bases through ReasonEngine sessions
 * across coalescing shapes.  Committed `.nnf` fixtures — including a
 * generated >100k-node file — exercise the streaming loader against
 * on-disk inputs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "logic/cnf.h"
#include "logic/knowledge.h"
#include "logic/nnf_io.h"
#include "pc/flat_cache.h"
#include "pc/flat_pc.h"
#include "pc/from_logic.h"
#include "sys/engine.h"
#include "sys/reason_api.h"
#include "util/rng.h"

namespace reason {
namespace pc {
namespace {

using logic::Clause;
using logic::CnfFormula;
using logic::DnnfGraph;
using logic::Lit;
using logic::LitWeights;
using logic::NnfError;
using logic::plantedKSat;
using sys::REASON_OK;

/** Bitwise equality or 1e-10 relative agreement. */
bool
closeEnough(double a, double b)
{
    if (std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b))
        return true;
    double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
    return std::fabs(a - b) <= 1e-10 * scale;
}

bool
bitEqual(double a, double b)
{
    return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

/** Route 4: enumerate every assignment. */
double
bruteForceWmc(const CnfFormula &f, const LitWeights &w)
{
    uint32_t n = f.numVars();
    double total = 0.0;
    for (uint64_t m = 0; m < (uint64_t(1) << n); ++m) {
        std::vector<bool> a(n);
        for (uint32_t v = 0; v < n; ++v)
            a[v] = (m >> v) & 1;
        if (!f.evaluate(a))
            continue;
        double p = 1.0;
        for (uint32_t v = 0; v < n; ++v)
            p *= a[v] ? w.pos[v] : w.neg[v];
        total += p;
    }
    return total;
}

/**
 * The 200-formula corpus.  Four families in rotation, all <= 12 vars
 * so route 4 stays cheap:
 *   - mixed random CNF, clause lengths 1..4 (unit clauses and pure
 *     literals arise naturally), every third one with a duplicated
 *     clause appended;
 *   - planted 3-SAT (guaranteed satisfiable);
 *   - forced UNSAT (a random core plus x ∧ ¬x);
 *   - sparse formulas over more vars than they mention (unused
 *     variables exercise smoothing/padding on the flat routes).
 */
std::vector<CnfFormula>
buildCorpus(Rng &rng)
{
    std::vector<CnfFormula> corpus;
    auto randomClause = [&](CnfFormula &f, uint32_t vars, uint32_t len) {
        Clause c;
        for (uint32_t i = 0; i < len; ++i)
            c.push_back(Lit::make(uint32_t(rng.uniformInt(0, vars - 1)),
                                  rng.bernoulli(0.5)));
        f.addClause(c);
    };
    while (corpus.size() < 200) {
        switch (corpus.size() % 4) {
          case 0: {
            uint32_t vars = uint32_t(rng.uniformInt(2, 12));
            uint32_t clauses = uint32_t(rng.uniformInt(1, vars * 3));
            CnfFormula f;
            f.ensureVars(vars);
            for (uint32_t c = 0; c < clauses; ++c)
                randomClause(f, vars, uint32_t(rng.uniformInt(1, 4)));
            if (corpus.size() % 3 == 0 && f.numClauses() > 0)
                f.addClause(f.clauses()[0]); // duplicate clause
            corpus.push_back(std::move(f));
            break;
          }
          case 1: {
            uint32_t vars = uint32_t(rng.uniformInt(4, 12));
            corpus.push_back(plantedKSat(rng, vars, vars * 3, 3));
            break;
          }
          case 2: {
            uint32_t vars = uint32_t(rng.uniformInt(2, 10));
            CnfFormula f;
            f.ensureVars(vars);
            for (uint32_t c = 0; c < vars; ++c)
                randomClause(f, vars, uint32_t(rng.uniformInt(2, 3)));
            f.addClause({1});
            f.addClause({-1}); // force UNSAT
            corpus.push_back(std::move(f));
            break;
          }
          default: {
            uint32_t vars = uint32_t(rng.uniformInt(6, 12));
            CnfFormula f;
            f.ensureVars(vars); // mention only the first few vars
            uint32_t used = uint32_t(rng.uniformInt(1, 3));
            for (uint32_t c = 0; c < used * 2; ++c)
                randomClause(f, used, uint32_t(rng.uniformInt(1, 3)));
            corpus.push_back(std::move(f));
            break;
          }
        }
    }
    return corpus;
}

/** Assert the streamed load is byte-identical to the direct lowering. */
void
expectSameArrays(const FlatCircuit &a, const FlatCircuit &b)
{
    ASSERT_EQ(a.numVars, b.numVars);
    ASSERT_EQ(a.arity, b.arity);
    ASSERT_EQ(a.root, b.root);
    ASSERT_EQ(a.types, b.types);
    ASSERT_EQ(a.edgeOffset, b.edgeOffset);
    ASSERT_EQ(a.edgeTarget, b.edgeTarget);
    ASSERT_EQ(a.leafSlot, b.leafSlot);
    ASSERT_EQ(a.leafVar, b.leafVar);
    ASSERT_EQ(a.edgeLogWeight.size(), b.edgeLogWeight.size());
    for (size_t i = 0; i < a.edgeLogWeight.size(); ++i)
        ASSERT_TRUE(bitEqual(a.edgeLogWeight[i], b.edgeLogWeight[i]))
            << "edge " << i;
    ASSERT_EQ(a.leafLogDist.size(), b.leafLogDist.size());
    for (size_t i = 0; i < a.leafLogDist.size(); ++i)
        ASSERT_TRUE(bitEqual(a.leafLogDist[i], b.leafLogDist[i]))
            << "slot " << i;
}

TEST(CompileFlat, FourRouteDifferential)
{
    Rng rng(0xd1ff);
    std::vector<CnfFormula> corpus = buildCorpus(rng);
    ASSERT_EQ(corpus.size(), 200u);

    size_t unsat_seen = 0;
    for (size_t i = 0; i < corpus.size(); ++i) {
        const CnfFormula &f = corpus[i];
        SCOPED_TRACE("formula " + std::to_string(i));
        DnnfGraph g = logic::compileToDnnf(f);

        LitWeights weightings[2] = {
            LitWeights::uniform(f.numVars()),
            LitWeights::random(rng, f.numVars()),
        };
        for (const LitWeights &w : weightings) {
            // Route 1: legacy Dag evaluation.
            double dag_wmc = g.wmc(w);

            // Route 2: direct flat lowering.
            FlatCircuit direct = flatFromDnnf(g, w);
            double flat_log = flatLogWmc(direct);
            double flat_wmc = std::exp(flat_log);

            // Route 3: stream the c2d text back into flat form.
            std::istringstream in(logic::toC2dFormat(g));
            FlatCircuit streamed;
            NnfError err;
            ASSERT_TRUE(streamNnfToFlat(in, w, &streamed, &err))
                << err.message << " (line " << err.line << ")";
            expectSameArrays(direct, streamed);
            ASSERT_TRUE(bitEqual(flatLogWmc(streamed), flat_log));

            // Route 4: brute force.
            double brute = bruteForceWmc(f, w);

            EXPECT_TRUE(closeEnough(dag_wmc, flat_wmc))
                << dag_wmc << " vs " << flat_wmc;
            EXPECT_TRUE(closeEnough(dag_wmc, brute))
                << dag_wmc << " vs " << brute;
            EXPECT_TRUE(closeEnough(flat_wmc, brute))
                << flat_wmc << " vs " << brute;
            if (brute == 0.0) {
                EXPECT_TRUE(std::isinf(flat_log) && flat_log < 0.0);
                ++unsat_seen;
            }
        }
    }
    EXPECT_GE(unsat_seen, 50u) << "corpus lost its UNSAT family";
}

TEST(CompileFlat, EvidenceQueriesMatchConditionalMarginal)
{
    Rng rng(0xe51d);
    for (int trial = 0; trial < 24; ++trial) {
        uint32_t vars = uint32_t(rng.uniformInt(3, 10));
        CnfFormula f = plantedKSat(rng, vars, vars * 2, 3);
        LitWeights w = LitWeights::random(rng, vars);
        double z = logic::weightedModelCount(f, w);
        ASSERT_GT(z, 0.0);

        FlatCircuit flat = compileCnfFlat(f, w);
        CircuitEvaluator eval(flat);
        for (uint32_t v = 0; v < vars; ++v) {
            Assignment x(vars, kMissing);
            x[v] = 1;
            double joint = std::exp(eval.logLikelihood(x));
            double marginal = logic::conditionalMarginal(f, w, v);
            EXPECT_TRUE(closeEnough(joint / z, marginal))
                << "var " << v << ": " << joint / z << " vs "
                << marginal;
        }
    }
}

TEST(CompileFlat, FingerprintStableAcrossRoutes)
{
    Rng rng(0xf19);
    std::vector<uint64_t> prints;
    for (int trial = 0; trial < 12; ++trial) {
        uint32_t vars = uint32_t(rng.uniformInt(3, 10));
        CnfFormula f = plantedKSat(rng, vars, vars * 2, 3);
        LitWeights w = LitWeights::random(rng, vars);
        DnnfGraph g = logic::compileToDnnf(f);

        FlatCircuit direct = flatFromDnnf(g, w);
        FlatCircuit again = flatFromDnnf(g, w);
        std::istringstream in(logic::toC2dFormat(g));
        FlatCircuit streamed;
        NnfError err;
        ASSERT_TRUE(streamNnfToFlat(in, w, &streamed, &err))
            << err.message;

        uint64_t fp = structuralFingerprint(direct);
        EXPECT_EQ(fp, structuralFingerprint(again));
        EXPECT_EQ(fp, structuralFingerprint(streamed));
        prints.push_back(fp);
    }
    // Distinct formulas should not collide (12 draws, 64-bit space).
    std::sort(prints.begin(), prints.end());
    EXPECT_EQ(std::unique(prints.begin(), prints.end()), prints.end());
}

TEST(CompileFlat, FlatCacheInterop)
{
    // The heap-Circuit route must fingerprint identically whether
    // lowered directly or served from the process-wide lowering cache.
    Rng rng(0xcace);
    for (int trial = 0; trial < 8; ++trial) {
        uint32_t vars = uint32_t(rng.uniformInt(3, 9));
        CnfFormula f = plantedKSat(rng, vars, vars * 2, 3);
        Circuit c = compileCnf(f);
        uint64_t direct = structuralFingerprint(FlatCircuit(c));
        uint64_t cached = structuralFingerprint(*cachedLowering(c));
        EXPECT_EQ(direct, cached);
        EXPECT_EQ(cached, structuralFingerprint(*cachedLowering(c)));
    }
}

TEST(CompileFlat, EngineServesCompiledKnowledgeBases)
{
    // Serve a compiled KB end to end: outputs must be bit-identical
    // across engines with different coalescing shapes and equal to the
    // in-process evaluator.
    Rng rng(0x5e1f);
    for (int kb = 0; kb < 4; ++kb) {
        uint32_t vars = uint32_t(rng.uniformInt(4, 10));
        CnfFormula f = plantedKSat(rng, vars, vars * 3, 3);
        LitWeights w = LitWeights::random(rng, vars);
        auto flat = std::make_shared<const FlatCircuit>(
            flatFromDnnf(logic::compileToDnnf(f), w));

        std::vector<Assignment> rows;
        rows.emplace_back(vars, kMissing); // full WMC query
        for (int r = 0; r < 12; ++r) {
            Assignment x(vars, kMissing);
            for (uint32_t v = 0; v < vars; ++v)
                if (rng.bernoulli(0.4))
                    x[v] = uint32_t(rng.uniformInt(0, 1));
            rows.push_back(std::move(x));
        }

        CircuitEvaluator eval(*flat);
        std::vector<double> reference;
        for (const Assignment &x : rows)
            reference.push_back(eval.logLikelihood(x));

        for (unsigned max_batch : {1u, 8u, 64u}) {
            sys::ServeOptions opt;
            opt.maxBatch = max_batch;
            sys::ReasonEngine engine(opt);
            sys::Session session = engine.createSession(flat);

            // One bulk request and a burst of singles.
            auto bulk = session.wait(session.submitBatch(rows));
            ASSERT_EQ(bulk->error, REASON_OK);
            ASSERT_EQ(bulk->outputs.size(), rows.size());
            for (size_t r = 0; r < rows.size(); ++r) {
                EXPECT_TRUE(bitEqual(bulk->outputs[r], reference[r]))
                    << "kb " << kb << " maxBatch " << max_batch
                    << " row " << r;
                auto one = session.wait(session.submit(rows[r]));
                ASSERT_EQ(one->error, REASON_OK);
                EXPECT_TRUE(bitEqual(one->outputs[0], reference[r]))
                    << "kb " << kb << " maxBatch " << max_batch
                    << " row " << r;
            }
        }
    }
}

#ifdef REASON_NNF_FIXTURE_DIR

std::string
readFixture(const std::string &name)
{
    std::ifstream in(std::string(REASON_NNF_FIXTURE_DIR) + "/" + name);
    EXPECT_TRUE(in.good()) << "missing fixture " << name;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

TEST(CompileFlat, SmallFixturesAgreeAcrossRoutes)
{
    const char *kFixtures[] = {"true.nnf", "false.nnf", "lit.nnf",
                               "xor2.nnf", "chain.nnf"};
    for (const char *name : kFixtures) {
        SCOPED_TRACE(name);
        std::string text = readFixture(name);
        NnfError err;
        DnnfGraph g = logic::parseC2dFormat(text, &err);
        ASSERT_TRUE(err.ok()) << err.message;
        LitWeights w = LitWeights::uniform(g.numVars());

        std::istringstream in(text);
        FlatCircuit streamed;
        ASSERT_TRUE(streamNnfToFlat(in, w, &streamed, &err))
            << err.message;
        EXPECT_TRUE(closeEnough(std::exp(flatLogWmc(streamed)),
                                g.wmc(w)));
    }
}

TEST(CompileFlat, StreamsHundredThousandNodeFixture)
{
    // The streaming loader's reason to exist: a file larger than any
    // in-memory Dag the tests otherwise build.  Parse it twice and
    // check node count, WMC agreement with the Dag route, and
    // fingerprint identity across repeated loads.
    std::string text = readFixture("big_xnor_chain.nnf");
    LitWeights w = LitWeights::uniform(20);

    std::istringstream in1(text);
    FlatCircuit first;
    NnfError err;
    ASSERT_TRUE(streamNnfToFlat(in1, w, &first, &err))
        << err.message << " (line " << err.line << ")";
    EXPECT_GT(first.numNodes(), 100000u);

    NnfError perr;
    DnnfGraph g = logic::parseC2dFormat(text, &perr);
    ASSERT_TRUE(perr.ok()) << perr.message;
    EXPECT_GT(g.numNodes(), 100000u);
    EXPECT_TRUE(closeEnough(std::exp(flatLogWmc(first)), g.wmc(w)));

    std::istringstream in2(text);
    FlatCircuit second;
    ASSERT_TRUE(streamNnfToFlat(in2, w, &second, &err));
    EXPECT_EQ(structuralFingerprint(first),
              structuralFingerprint(second));
}

#endif // REASON_NNF_FIXTURE_DIR

} // namespace
} // namespace pc
} // namespace reason
