/**
 * @file
 * d-DNNF serialization in the standard c2d `.nnf` format, the
 * interchange format of the knowledge-compilation ecosystem (c2d,
 * Dsharp, d4, miniC2D), so compiled knowledge bases can be exchanged
 * with external tools.
 *
 * Format (one node per line, children refer to earlier lines):
 *
 *     nnf <numNodes> <numEdges> <numVars>
 *     L <dimacs-literal>
 *     A <k> <child...>            (conjunction; A 0 is TRUE)
 *     O <decision-var> <k> <child...>   (disjunction; O 0 0 is FALSE)
 */

#ifndef REASON_LOGIC_NNF_IO_H
#define REASON_LOGIC_NNF_IO_H

#include <string>

#include "logic/knowledge.h"

namespace reason {
namespace logic {

/** Serialize a compiled d-DNNF to c2d text. */
std::string toC2dFormat(const DnnfGraph &graph);

/**
 * Parse c2d text into a DnnfGraph.  fatal()s on malformed input.
 * `num_vars` of the resulting graph is taken from the header.
 */
DnnfGraph parseC2dFormat(const std::string &text);

} // namespace logic
} // namespace reason

#endif // REASON_LOGIC_NNF_IO_H
