#include "arch/symbolic.h"

#include <algorithm>
#include <array>

#include "arch/dram.h"
#include "util/logging.h"
#include "util/numeric.h"

namespace reason {
namespace arch {

using logic::CnfFormula;
using logic::LBool;
using logic::Lit;

BcpPipeline::BcpPipeline(const CnfFormula &formula,
                         const ArchConfig &config)
    : formula_(formula), config_(config),
      wl_(formula.numVars() * 2),
      sram_(config.sramBytes, config.sramBanks),
      fifo_(config.bcpFifoDepth),
      dma_(config.dmaLatencyCycles, 4, config.dmaBytesPerCycle())
{
    assigns_.assign(formula.numVars(), LBool::Undef);
    clauses_.reserve(formula.numClauses());
    clauseAddr_.reserve(formula.numClauses());
    uint64_t addr = 0;
    for (const auto &c : formula.clauses()) {
        uint32_t idx = static_cast<uint32_t>(clauses_.size());
        clauses_.push_back(c);
        // Clause database laid out densely in DRAM address space.
        clauseAddr_.push_back(addr);
        addr += clauseBytes(idx);
        if (c.size() >= 2) {
            watched_.push_back({c[0], c[1]});
            wl_.watch(c[0].code(), idx);
            wl_.watch(c[1].code(), idx);
        } else if (c.size() == 1) {
            watched_.push_back({c[0], c[0]});
            wl_.watch(c[0].code(), idx);
        } else {
            watched_.push_back({Lit(), Lit()});
        }
    }
    if (config_.dramModelEnabled) {
        dram_.reset(new DramModel(config_));
        dma_.attachDram(dram_.get());
    }
}

BcpPipeline::~BcpPipeline() = default;

size_t
BcpPipeline::clauseBytes(uint32_t idx) const
{
    return 8 + 4 * clauses_[idx].size();
}

LBool
BcpPipeline::litValue(Lit l) const
{
    LBool v = assigns_[l.var()];
    if (v == LBool::Undef)
        return v;
    return l.negated() ? logic::negate(v) : v;
}

void
BcpPipeline::assign(Lit l)
{
    reasonAssert(litValue(l) == LBool::Undef, "double assignment");
    assigns_[l.var()] = l.negated() ? LBool::False : LBool::True;
    trail_.push_back(l);
}

void
BcpPipeline::reset()
{
    for (Lit l : trail_)
        assigns_[l.var()] = LBool::Undef;
    trail_.clear();
    fifo_.flush();
}

void
BcpPipeline::processFalsified(Lit p, BcpResult &res, bool record_trace)
{
    // Traverse the watch list of p (clauses watching the now-false
    // literal p).  The list mutates as watches relocate, so iterate a
    // snapshot.
    wl_.recordTraversal(p.code());
    events_.inc("wl_lookups");
    now_ += 1; // head-pointer fetch
    std::vector<uint32_t> snapshot = wl_.list(p.code());
    for (uint32_t idx : snapshot) {
        // Clause data access: SRAM hit or DMA fetch.
        events_.inc("sram_accesses");
        now_ += 1;
        if (!sram_.access(idx, clauseBytes(idx))) {
            // Address-carrying fetch: with the DRAM model enabled the
            // completion cycle reflects row-buffer state and bank
            // timing at the clause's database address.
            uint64_t done =
                dma_.issueAt(now_, clauseAddr_[idx], clauseBytes(idx));
            events_.inc("dma_fetches");
            if (record_trace)
                res.trace.push_back(
                    {now_, "dma",
                     "miss clause C" + std::to_string(idx) +
                         ", fetch until T" + std::to_string(done)});
            // The FIFO keeps servicing; this clause's resolution
            // completes when the fetch lands.
            now_ = std::max(now_ + 1, done > now_ + 8 ? now_ + 8 : done);
            uint64_t overlap_end = done;
            if (overlap_end > now_)
                events_.inc("dma_overlapped_cycles",
                            overlap_end - now_);
        }

        auto &w = watched_[idx];
        Lit other = (w[0] == p) ? w[1] : w[0];
        if (litValue(other) == LBool::True)
            continue; // satisfied via blocker
        // Search for a replacement watch.
        const auto &cl = clauses_[idx];
        Lit replacement;
        for (const Lit &l : cl) {
            if (l == p || l == other)
                continue;
            if (litValue(l) != LBool::False) {
                replacement = l;
                break;
            }
        }
        events_.inc("clause_literal_scans", cl.size());
        if (replacement.valid()) {
            // Relocate the watch from p to the replacement literal.
            (w[0] == p ? w[0] : w[1]) = replacement;
            wl_.unwatch(p.code(), idx);
            wl_.watch(replacement.code(), idx);
            events_.inc("watch_moves");
            continue;
        }
        if (litValue(other) == LBool::Undef && other.valid() &&
            cl.size() >= 2 && other != p) {
            // Unit clause: implication discovered at a leaf, reduced to
            // the controller, queued in the FIFO.
            assign(other);
            res.implications.push_back(other);
            events_.inc("implications");
            now_ += 1;
            while (!fifo_.push(other.code())) {
                // Overflow: the leaf stalls while the controller drains
                // one queued implication per cycle, then retries.  The
                // drained entry's broadcast is what the stall cycle pays
                // for; the functional propagation order is unaffected
                // (decide() tracks it separately).
                ++now_;
                events_.inc("fifo_overflow_stalls");
                if (!fifo_.empty())
                    fifo_.pop();
            }
            if (record_trace)
                res.trace.push_back(
                    {now_, "reduce",
                     "implication " + other.toString() +
                         " from clause C" + std::to_string(idx)});
        } else if (litValue(other) == LBool::False ||
                   (cl.size() == 1 && litValue(cl[0]) == LBool::False)) {
            // Conflict: priority control - flush FIFO, cancel DMA.
            res.conflict = true;
            now_ += config_.reductionCycles();
            size_t dropped = fifo_.flush();
            dma_.cancelAll();
            events_.inc("conflicts");
            events_.inc("fifo_flushed_entries", dropped);
            if (record_trace)
                res.trace.push_back(
                    {now_, "conflict",
                     "clause C" + std::to_string(idx) +
                         " conflicting; FIFO flushed (" +
                         std::to_string(dropped) + " dropped)"});
            return;
        }
    }
}

BcpResult
BcpPipeline::decide(Lit decision, bool record_trace)
{
    BcpResult res;
    uint64_t start = now_;

    if (litValue(decision) == LBool::False) {
        res.conflict = true;
        res.cycles = 1;
        now_ += 1;
        return res;
    }

    // Broadcast the decision down the distribution tree.
    now_ += config_.broadcastCycles();
    events_.inc("broadcasts");
    if (record_trace)
        res.trace.push_back({now_, "broadcast",
                             "decision " + decision.toString()});
    if (litValue(decision) == LBool::Undef)
        assign(decision);

    // Propagate: the falsified complement triggers watch-list work; each
    // queued implication is popped from the FIFO and broadcast in a
    // pipelined fashion.
    std::vector<Lit> queue{decision};
    size_t qi = 0;
    while (qi < queue.size() && !res.conflict) {
        Lit p = queue[qi++];
        if (qi > 1) {
            // Pop from FIFO and broadcast (pipelined: 1 cycle issue).
            if (!fifo_.empty())
                fifo_.pop();
            now_ += 1;
            events_.inc("broadcasts");
            if (record_trace)
                res.trace.push_back({now_, "fifo",
                                     "pop + broadcast " + p.toString()});
        }
        size_t before = res.implications.size();
        processFalsified(~p, res, record_trace);
        for (size_t k = before; k < res.implications.size(); ++k)
            queue.push_back(res.implications[k]);
    }
    // Drain FIFO bookkeeping for implications that were never popped
    // (conflict aborts remaining work).
    if (!res.conflict)
        while (!fifo_.empty())
            fifo_.pop();

    res.cycles = now_ - start;
    events_.inc("bcp_episodes");
    return res;
}

uint64_t
estimateCdclCycles(const logic::SolverStats &stats,
                   size_t clause_db_bytes, const ArchConfig &config)
{
    uint64_t cycles = 0;
    // Decisions broadcast root-to-leaf.
    cycles += stats.decisions * config.broadcastCycles();
    // Propagations are pipelined through the FIFO at ~1/cycle; the
    // watch-list traversal work is spread across the leaf nodes.
    cycles += stats.propagations;
    cycles += stats.literalVisits /
              std::max<uint64_t>(1, config.leavesPerPe());
    // SRAM misses on the clause database (fraction not resident).
    // Only the exposed remainder of each miss is charged: the FIFO
    // keeps servicing queued implications while the fetch is in
    // flight (see ArchConfig::dmaMissExposedFraction).
    double resident = clause_db_bytes == 0
                          ? 1.0
                          : std::min(1.0, double(config.sramBytes) /
                                              double(clause_db_bytes));
    double miss_rate = 1.0 - resident;
    cycles += static_cast<uint64_t>(double(stats.propagations) *
                                    miss_rate * config.dmaLatencyCycles *
                                    config.dmaMissExposedFraction);
    // Conflict analysis runs on the scalar PE.
    cycles += stats.conflicts * (2 + config.reductionCycles());
    cycles += stats.learnedLiterals * 2;
    cycles += stats.restarts * 64;
    return cycles;
}

SymbolicTiming
solveOnAccelerator(const CnfFormula &formula, const ArchConfig &config,
                   uint32_t cube_depth)
{
    SymbolicTiming out;
    out.peBusyCycles.assign(config.numPes, 0);

    // Phase 1: lookahead cube generation (DPLL broadcast mode).  Probe
    // work parallelizes across PEs.
    logic::CubeSplitter splitter(formula, cube_depth);
    std::vector<logic::Cube> cubes = splitter.split();
    const logic::DpllStats &ds = splitter.stats();
    uint64_t split_cycles =
        (ds.lookaheads * config.broadcastCycles() + ds.propagations) /
        std::max<uint32_t>(1, config.numPes);
    out.events.inc("split_lookaheads", ds.lookaheads);
    out.events.inc("split_propagations", ds.propagations);

    // Phase 2: conquer each cube with an independent CDCL instance; the
    // per-cube cycle cost follows the hardware event charges.
    size_t db_bytes = 0;
    for (const auto &c : formula.clauses())
        db_bytes += 8 + 4 * c.size();

    struct CubeCost
    {
        uint64_t cycles;
        size_t index;
    };
    std::vector<CubeCost> costs;
    out.result = logic::SolveResult::Unsat;
    for (size_t i = 0; i < cubes.size(); ++i) {
        if (cubes[i].refuted)
            continue;
        logic::CdclSolver solver(formula);
        logic::SolveResult r = solver.solve(cubes[i].lits);
        const logic::SolverStats &st = solver.stats();
        out.aggregate.decisions += st.decisions;
        out.aggregate.propagations += st.propagations;
        out.aggregate.conflicts += st.conflicts;
        out.aggregate.learnedClauses += st.learnedClauses;
        out.aggregate.learnedLiterals += st.learnedLiterals;
        out.aggregate.restarts += st.restarts;
        out.aggregate.literalVisits += st.literalVisits;
        costs.push_back({estimateCdclCycles(st, db_bytes, config), i});
        if (r == logic::SolveResult::Sat &&
            out.result != logic::SolveResult::Sat)
            out.result = logic::SolveResult::Sat;
    }

    // Longest-processing-time assignment of cubes onto PEs.
    std::sort(costs.begin(), costs.end(),
              [](const CubeCost &a, const CubeCost &b) {
                  return a.cycles > b.cycles;
              });
    for (const CubeCost &c : costs) {
        auto it = std::min_element(out.peBusyCycles.begin(),
                                   out.peBusyCycles.end());
        *it += c.cycles;
    }
    uint64_t makespan =
        costs.empty() ? 0
                      : *std::max_element(out.peBusyCycles.begin(),
                                          out.peBusyCycles.end());

    out.cycles = std::max<uint64_t>(1, split_cycles + makespan);
    out.seconds = double(out.cycles) * config.cycleSeconds();
    uint64_t busy_total = 0;
    for (uint64_t b : out.peBusyCycles)
        busy_total += b;
    out.peUtilization =
        makespan == 0
            ? 0.0
            : double(busy_total) /
                  (double(makespan) * double(config.numPes));
    out.events.inc("cycles", out.cycles);
    out.events.inc("cubes", cubes.size());
    return out;
}

} // namespace arch
} // namespace reason
