/**
 * @file
 * Lightweight statistics containers used by the simulators and benches.
 */

#ifndef REASON_UTIL_STATS_H
#define REASON_UTIL_STATS_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace reason {

/**
 * Streaming scalar accumulator: count, mean, variance (Welford), min, max.
 */
class StatAccumulator
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const StatAccumulator &other);

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const;
    /** Sample variance (n-1 denominator); 0 when fewer than 2 samples. */
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, size_t bins);

    void add(double x);

    size_t bins() const { return counts_.size(); }
    uint64_t binCount(size_t i) const { return counts_.at(i); }
    uint64_t underflow() const { return underflow_; }
    uint64_t overflow() const { return overflow_; }
    uint64_t total() const { return total_; }

    /** Smallest x such that at least frac of the mass is <= x. */
    double percentile(double frac) const;

    /** Lower edge of bin i. */
    double binLo(size_t i) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<uint64_t> counts_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
};

/**
 * Named counter group for simulator statistics dumps.
 *
 * Counters are created lazily on first access; dump order is alphabetical
 * so outputs are diff-stable.
 */
class StatGroup
{
  public:
    /** Mutable access; creates the counter at zero if missing. */
    uint64_t &counter(const std::string &name);

    /** Read-only access; returns 0 for missing counters. */
    uint64_t get(const std::string &name) const;

    /** Increment by delta (default 1). */
    void inc(const std::string &name, uint64_t delta = 1);

    /** Reset every counter to zero. */
    void clear();

    const std::map<std::string, uint64_t> &all() const { return counters_; }

    /** Render as "name = value" lines. */
    std::string toString() const;

  private:
    std::map<std::string, uint64_t> counters_;
};

} // namespace reason

#endif // REASON_UTIL_STATS_H
