/**
 * @file
 * Parameter learning for probabilistic circuits via flow-based EM.
 *
 * Each EM iteration accumulates expected edge/leaf usage (the circuit
 * flows) over the dataset and re-estimates sum weights and leaf
 * distributions from the normalized counts with Laplace smoothing.
 * Monotone non-decreasing training log-likelihood is an invariant the
 * tests rely on.
 */

#ifndef REASON_PC_LEARN_H
#define REASON_PC_LEARN_H

#include <cstdint>
#include <vector>

#include "pc/pc.h"
#include "util/parallel.h"

namespace reason {
namespace pc {

/** One EM run's trace. */
struct EmTrace
{
    /** Mean train log-likelihood after each iteration (incl. initial). */
    std::vector<double> logLikelihood;
    uint32_t iterations = 0;
};

/**
 * EM options.  The sharding fields default to the process-wide
 * util::ReductionPolicy (the --shards / --fast-reductions knob);
 * explicit assignment overrides it.
 */
struct EmOptions
{
    uint32_t maxIterations = 20;
    /** Stop when LL improves by less than this per example. */
    double tolerance = 1e-6;
    /** Laplace smoothing pseudo-count added to every expected count. */
    double smoothing = 0.1;
    /**
     * Sample shards of the E-step flow accumulation; 0 = auto (a fixed
     * count when deterministic, one per pool worker otherwise) and 1 =
     * the legacy serial left fold.  See util::ReductionPolicy.
     */
    unsigned shards = util::reductionPolicy().shards;
    /**
     * Deterministic (default): the shard count and fixed-shape tree
     * reduction never depend on the worker count, so trained parameters
     * and the trace are bit-identical for any thread count.  The fast
     * mode (false) shards per worker, relaxing only the reduction
     * shape.
     */
    bool deterministic = util::reductionPolicy().deterministic;
};

/** Historical name of EmOptions. */
using EmConfig = EmOptions;

/** Mean log-likelihood of a dataset under the circuit. */
double meanLogLikelihood(const Circuit &circuit,
                         const std::vector<Assignment> &data);

/**
 * Run flow-based EM in place.
 * @return the per-iteration trace (first entry is the initial LL).
 */
EmTrace emTrain(Circuit &circuit, const std::vector<Assignment> &data,
                const EmConfig &config = {});

} // namespace pc
} // namespace reason

#endif // REASON_PC_LEARN_H
