#include "pc/flat_pc.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/flat.h"
#include "util/logging.h"
#include "util/numeric.h"
#include "util/parallel.h"

namespace reason {
namespace pc {

FlatCircuit::FlatCircuit(const Circuit &circuit)
    : numVars(circuit.numVars()), arity(circuit.arity()),
      root(circuit.root())
{
    reasonAssert(root != kInvalidNode, "circuit has no root");
    const size_t n = circuit.numNodes();
    types.resize(n);
    leafSlot.assign(n, kInvalidNode);
    edgeOffset.reserve(n + 1);
    edgeOffset.push_back(0);
    edgeTarget.reserve(circuit.numEdges());
    edgeLogWeight.reserve(circuit.numEdges());

    for (size_t i = 0; i < n; ++i) {
        const PcNode &node = circuit.node(NodeId(i));
        switch (node.type) {
          case PcNodeType::Leaf: {
            types[i] = kLeaf;
            leafSlot[i] = uint32_t(leafVar.size());
            leafVar.push_back(node.var);
            for (uint32_t v = 0; v < arity; ++v)
                leafLogDist.push_back(node.dist[v] > 0.0
                                          ? std::log(node.dist[v])
                                          : kLogZero);
            break;
          }
          case PcNodeType::Sum: {
            types[i] = kSum;
            for (size_t k = 0; k < node.children.size(); ++k) {
                edgeTarget.push_back(node.children[k]);
                edgeLogWeight.push_back(node.weights[k] > 0.0
                                            ? std::log(node.weights[k])
                                            : kLogZero);
            }
            break;
          }
          case PcNodeType::Product: {
            types[i] = kProduct;
            for (NodeId c : node.children) {
                edgeTarget.push_back(c);
                edgeLogWeight.push_back(kLogZero);
            }
            break;
          }
        }
        edgeOffset.push_back(uint32_t(edgeTarget.size()));
    }

    // Level (wavefront) schedule over all nodes: leaves sit in level 0
    // (they are re-filled per assignment), interior nodes one past
    // their deepest child.
    core::LevelSchedule sched =
        core::buildLevelSchedule(n, edgeOffset, edgeTarget);
    levelOffset = std::move(sched.offset);
    levelNodes = std::move(sched.nodes);

    // Parent transpose in descending parent order: the serial top-down
    // scatter visits parents n-1..0, so a gather that walks each node's
    // incoming edges in this order reproduces its flow sum term-for-term.
    const size_t m = edgeTarget.size();
    edgeSource.resize(m);
    parentOffset.assign(n + 1, 0);
    for (size_t i = 0; i < n; ++i)
        for (uint32_t e = edgeOffset[i]; e < edgeOffset[i + 1]; ++e) {
            edgeSource[e] = uint32_t(i);
            ++parentOffset[edgeTarget[e] + 1];
        }
    for (size_t i = 1; i <= n; ++i)
        parentOffset[i] += parentOffset[i - 1];
    parentEdge.resize(m);
    {
        std::vector<uint32_t> cursor(parentOffset.begin(),
                                     parentOffset.end() - 1);
        for (size_t i = n; i-- > 0;)
            for (uint32_t e = edgeOffset[i]; e < edgeOffset[i + 1]; ++e)
                parentEdge[cursor[edgeTarget[e]]++] = e;
    }
}

namespace {

/**
 * Evaluate one circuit node into val[i].  Shared by the serial id-order
 * walk and the parallel wavefront walk so both paths execute identical
 * floating-point expressions (bit-identical results).
 */
inline void
evalCircuitNode(const FlatCircuit &flat, const Assignment &x, double *val,
                double *terms, size_t i)
{
    const uint8_t *types = flat.types.data();
    const uint32_t *off = flat.edgeOffset.data();
    const uint32_t *tgt = flat.edgeTarget.data();
    const double *lw = flat.edgeLogWeight.data();
    switch (types[i]) {
      case FlatCircuit::kLeaf: {
        const uint32_t s = flat.leafSlot[i];
        const uint32_t v = x[flat.leafVar[s]];
        if (v == kMissing) {
            val[i] = 0.0; // marginalized: sums to 1
        } else {
            reasonAssert(v < flat.arity, "assignment value out of range");
            val[i] = flat.leafLogDist[size_t(s) * flat.arity + v];
        }
        break;
      }
      case FlatCircuit::kProduct: {
        // Straight-line add (no early break): -inf absorbs and no
        // operand can be +inf, so the result is unchanged and the
        // loop stays branch-free.
        double acc = 0.0;
        for (uint32_t e = off[i]; e < off[i + 1]; ++e)
            acc += val[tgt[e]];
        val[i] = acc;
        break;
      }
      case FlatCircuit::kSum: {
        // Two-pass log-sum-exp: one max scan, then exp-accumulate
        // against the max.  This spends one log per *node* instead
        // of one log1p+exp per *edge* (what sequential logAdd
        // costs), and after max subtraction the exp argument lies
        // in (-inf, 0] where fastExpNonPositive applies.  Terms
        // below the -40 cut contribute < 4e-18 relative and are
        // skipped; total deviation from sequential logAdd stays
        // orders of magnitude inside the 1e-12 contract.
        constexpr double kNegligible = -40.0;
        const uint32_t lo = off[i];
        const uint32_t hi_e = off[i + 1];
        double hi = kLogZero;
        for (uint32_t e = lo; e < hi_e; ++e) {
            const double term = lw[e] + val[tgt[e]];
            terms[e - lo] = term;
            if (term > hi)
                hi = term;
        }
        if (hi == kLogZero) {
            val[i] = kLogZero;
            break;
        }
        double acc = 0.0;
        for (uint32_t e = lo; e < hi_e; ++e) {
            const double d = terms[e - lo] - hi;
            if (d >= kNegligible)
                acc += fastExpNonPositive(d);
        }
        val[i] = hi + std::log(acc);
        break;
      }
    }
}

} // namespace

CircuitEvaluator::CircuitEvaluator(const FlatCircuit &flat,
                                   util::ThreadPool *pool)
    : flat_(flat), pool_(pool), logv_(flat.numNodes(), kLogZero)
{
    for (size_t i = 0; i < flat.numNodes(); ++i)
        maxFanIn_ = std::max<size_t>(
            maxFanIn_, flat.edgeOffset[i + 1] - flat.edgeOffset[i]);
    terms_.resize(std::max<size_t>(maxFanIn_, 1), 0.0);
}

util::ThreadPool &
CircuitEvaluator::activePool() const
{
    // Resolved per call, not cached: setGlobalThreads may legally
    // replace the global pool between evaluation phases, and a cached
    // pointer would dangle.
    return pool_ ? *pool_ : util::globalThreadPool();
}

void
CircuitEvaluator::evaluateLevelSlice(const Assignment &x, size_t b,
                                     size_t e, double *terms)
{
    double *val = logv_.data();
    const uint32_t *sched = flat_.levelNodes.data();
    for (size_t k = b; k < e; ++k)
        evalCircuitNode(flat_, x, val, terms, sched[k]);
}

std::span<const double>
CircuitEvaluator::evaluate(const Assignment &x)
{
    reasonAssert(x.size() >= flat_.numVars, "assignment too short");
    const size_t n = flat_.numNodes();
    util::ThreadPool &pool = activePool();
    if (pool.numThreads() == 1) {
        double *val = logv_.data();
        for (size_t i = 0; i < n; ++i)
            evalCircuitNode(flat_, x, val, terms_.data(), i);
        return {logv_.data(), logv_.size()};
    }

    // Wavefront execution over the level schedule: one writer per node
    // value, per-worker term scratch, unchanged per-node expressions —
    // bit-identical to the serial walk for any thread count.
    const size_t stripe = std::max<size_t>(maxFanIn_, 1);
    if (terms_.size() < stripe * pool.numThreads())
        terms_.resize(stripe * pool.numThreads(), 0.0);
    for (size_t l = 0; l < flat_.numLevels(); ++l) {
        pool.parallelFor(
            flat_.levelOffset[l], flat_.levelOffset[l + 1],
            kMinNodesPerChunk,
            [&](size_t b, size_t e, unsigned worker) {
                evaluateLevelSlice(x, b, e,
                                   terms_.data() + worker * stripe);
            });
    }
    return {logv_.data(), logv_.size()};
}

double
CircuitEvaluator::logLikelihood(const Assignment &x)
{
    return evaluate(x)[flat_.root];
}

void
CircuitEvaluator::logLikelihoodBatch(const std::vector<Assignment> &xs,
                                     std::span<double> out)
{
    reasonAssert(out.size() >= xs.size(), "batch output buffer too small");
    for (const Assignment &x : xs)
        reasonAssert(x.size() >= flat_.numVars, "assignment too short");
    util::ThreadPool &pool = activePool();
    const size_t num_blocks = xs.size() / kBlock;
    const unsigned threads = pool.numThreads();
    size_t r = 0;
    if (num_blocks > 0) {
        const size_t val_size = flat_.numNodes() * kBlock;
        const size_t term_size = std::max<size_t>(maxFanIn_, 1) * kBlock;
        const unsigned buffers =
            threads > 1 && num_blocks > 1
                ? unsigned(std::min<size_t>(threads, num_blocks))
                : 1;
        if (blockVal_.size() < buffers) {
            blockVal_.resize(buffers);
            blockTerms_.resize(buffers);
        }
        for (unsigned w = 0; w < buffers; ++w) {
            if (blockVal_[w].empty()) {
                blockVal_[w].assign(val_size, 0.0);
                blockTerms_[w].assign(term_size, 0.0);
            }
        }
        // Block-parallel: each worker streams a contiguous run of
        // kBlock-row blocks through its own SoA buffers.  Blocks are
        // computed identically regardless of which worker runs them.
        pool.parallelFor(
            0, num_blocks, 1,
            [&](size_t b, size_t e, unsigned worker) {
                for (size_t blk = b; blk < e; ++blk)
                    evaluateBlock(&xs[blk * kBlock], &out[blk * kBlock],
                                  blockVal_[worker].data(),
                                  blockTerms_[worker].data());
            });
        r = num_blocks * kBlock;
    }
    for (; r < xs.size(); ++r)
        out[r] = evaluate(xs[r])[flat_.root];
}

void
CircuitEvaluator::evaluateBlock(const Assignment *rows, double *out,
                                double *block_val, double *block_terms)
{
    constexpr size_t B = kBlock;
    double *val = block_val;
    double *terms = block_terms;
    const uint8_t *types = flat_.types.data();
    const uint32_t *off = flat_.edgeOffset.data();
    const uint32_t *tgt = flat_.edgeTarget.data();
    const double *lw = flat_.edgeLogWeight.data();
    const uint32_t *slot = flat_.leafSlot.data();
    const uint32_t *var = flat_.leafVar.data();
    const double *dist = flat_.leafLogDist.data();
    const uint32_t arity = flat_.arity;
    const size_t n = flat_.numNodes();

    for (size_t i = 0; i < n; ++i) {
        double *vi = val + i * B;
        switch (types[i]) {
          case FlatCircuit::kLeaf: {
            const uint32_t s = slot[i];
            const uint32_t v_idx = var[s];
            const double *row_dist = dist + size_t(s) * arity;
            for (size_t b = 0; b < B; ++b) {
                const uint32_t v = rows[b][v_idx];
                if (v == kMissing) {
                    vi[b] = 0.0; // marginalized: sums to 1
                } else {
                    reasonAssert(v < arity,
                                 "assignment value out of range");
                    vi[b] = row_dist[v];
                }
            }
            break;
          }
          case FlatCircuit::kProduct: {
            double acc[B] = {0, 0, 0, 0, 0, 0, 0, 0};
            for (uint32_t e = off[i]; e < off[i + 1]; ++e) {
                const double *child = val + size_t(tgt[e]) * B;
                for (size_t b = 0; b < B; ++b)
                    acc[b] += child[b];
            }
            for (size_t b = 0; b < B; ++b)
                vi[b] = acc[b];
            break;
          }
          case FlatCircuit::kSum: {
            const uint32_t lo = off[i];
            const uint32_t hi_e = off[i + 1];
            double hi[B];
            for (size_t b = 0; b < B; ++b)
                hi[b] = kLogZero;
            for (uint32_t e = lo; e < hi_e; ++e) {
                const double *child = val + size_t(tgt[e]) * B;
                double *trow = terms + size_t(e - lo) * B;
                const double w = lw[e];
                for (size_t b = 0; b < B; ++b) {
                    const double t = w + child[b];
                    trow[b] = t;
                    hi[b] = std::max(hi[b], t);
                }
            }
            // Dead lanes (all terms -inf) would produce NaN in the
            // subtraction below; substitute 0 and restore afterwards.
            bool dead[B];
            for (size_t b = 0; b < B; ++b) {
                dead[b] = hi[b] == kLogZero;
                if (dead[b])
                    hi[b] = 0.0;
            }
            double acc[B] = {0, 0, 0, 0, 0, 0, 0, 0};
            for (uint32_t e = lo; e < hi_e; ++e) {
                const double *trow = terms + size_t(e - lo) * B;
                for (size_t b = 0; b < B; ++b)
                    acc[b] += fastExpNonPositive(trow[b] - hi[b]);
            }
            for (size_t b = 0; b < B; ++b)
                vi[b] = dead[b] ? kLogZero : hi[b] + std::log(acc[b]);
            break;
          }
        }
    }
    const double *root_val = val + size_t(flat_.root) * B;
    for (size_t b = 0; b < B; ++b)
        out[b] = root_val[b];
}

namespace {

/**
 * Per-product-node derivative quantities: count of zero-valued
 * children, the (last) zero child, and the finite log-sum of the
 * rest.  Shared by the serial reverse scatter and the parallel
 * pre-pass so both accumulate finiteSum over the same edges in the
 * same order — the bit-identity contract depends on it.
 */
struct ProdDerivInfo
{
    uint32_t zeros = 0;
    uint32_t zeroChild = kInvalidNode;
    double finiteSum = 0.0;
};

inline ProdDerivInfo
productDerivInfo(const FlatCircuit &flat, const double *logv, size_t i)
{
    const uint32_t *off = flat.edgeOffset.data();
    const uint32_t *tgt = flat.edgeTarget.data();
    ProdDerivInfo info;
    for (uint32_t e = off[i]; e < off[i + 1]; ++e) {
        const uint32_t c = tgt[e];
        if (logv[c] == kLogZero) {
            ++info.zeros;
            info.zeroChild = c;
        } else {
            info.finiteSum += logv[c];
        }
    }
    return info;
}

} // namespace

void
logDerivativesInto(const FlatCircuit &flat, std::span<const double> logv,
                   std::vector<double> &logd, util::ThreadPool *pool)
{
    const size_t n = flat.numNodes();
    reasonAssert(logv.size() == n, "log-value/graph size mismatch");
    logd.assign(n, kLogZero);
    logd[flat.root] = 0.0;

    const uint8_t *types = flat.types.data();
    const uint32_t *off = flat.edgeOffset.data();
    const uint32_t *tgt = flat.edgeTarget.data();
    const double *lw = flat.edgeLogWeight.data();

    util::ThreadPool &active =
        pool ? *pool : util::globalThreadPool();
    if (active.numThreads() == 1) {
        // Serial reverse scatter: children precede parents, so logd[i]
        // is final when the reverse id scan reaches node i.
        for (size_t i = n; i-- > 0;) {
            if (logd[i] == kLogZero)
                continue;
            switch (types[i]) {
              case FlatCircuit::kLeaf:
                break;
              case FlatCircuit::kSum:
                for (uint32_t e = off[i]; e < off[i + 1]; ++e) {
                    if (lw[e] == kLogZero)
                        continue;
                    const uint32_t c = tgt[e];
                    logd[c] = logAdd(logd[c], logd[i] + lw[e]);
                }
                break;
              case FlatCircuit::kProduct: {
                // dv_n/dv_c = prod of sibling values; handle zeros
                // exactly.
                const ProdDerivInfo info =
                    productDerivInfo(flat, logv.data(), i);
                if (info.zeros >= 2)
                    break;
                if (info.zeros == 1) {
                    logd[info.zeroChild] =
                        logAdd(logd[info.zeroChild],
                               logd[i] + info.finiteSum);
                    break;
                }
                for (uint32_t e = off[i]; e < off[i + 1]; ++e) {
                    const uint32_t c = tgt[e];
                    logd[c] = logAdd(
                        logd[c], logd[i] + info.finiteSum - logv[c]);
                }
                break;
              }
            }
        }
        return;
    }

    // Parallel reverse wavefront: walk levels top-down and *gather*
    // each node's derivative from its finalized parents through the
    // parent transpose (one writer per logd entry, no atomics).
    // Incoming edges are stored in descending parent order — the exact
    // logAdd accumulation order of the serial scatter — and the
    // product-parent terms reuse (zero count, finite sum) tables
    // computed below with the scatter's own expressions
    // (productDerivInfo), so every entry matches the serial path bit
    // for bit.  The tables persist per calling thread: repeated
    // marginal queries reuse them allocation-free once grown, and the
    // pool workers filling them write disjoint chunks behind the
    // pre-pass barrier.
    thread_local std::vector<double> prod_sum_tls;
    thread_local std::vector<uint8_t> prod_zeros_tls;
    if (prod_sum_tls.size() < n) {
        prod_sum_tls.resize(n);
        prod_zeros_tls.resize(n);
    }
    // Raw views: a thread_local named inside a lambda would resolve to
    // each *worker's* (empty) instance, not the caller's.
    double *prod_sum = prod_sum_tls.data();
    uint8_t *prod_zeros = prod_zeros_tls.data();
    active.parallelFor(
        0, n, kMinWavefrontNodesPerChunk,
        [&](size_t b, size_t e, unsigned) {
            for (size_t i = b; i < e; ++i) {
                if (types[i] != FlatCircuit::kProduct)
                    continue;
                const ProdDerivInfo info =
                    productDerivInfo(flat, logv.data(), i);
                prod_sum[i] = info.finiteSum;
                prod_zeros[i] = uint8_t(std::min<uint32_t>(info.zeros, 2));
            }
        });

    const uint32_t *poff = flat.parentOffset.data();
    const uint32_t *pedge = flat.parentEdge.data();
    const uint32_t *src = flat.edgeSource.data();
    double *d = logd.data();
    auto gather = [&](size_t b, size_t e, unsigned) {
        for (size_t k = b; k < e; ++k) {
            const uint32_t c = flat.levelNodes[k];
            double dn = c == flat.root ? 0.0 : kLogZero;
            for (uint32_t pe = poff[c]; pe < poff[c + 1]; ++pe) {
                const uint32_t edge = pedge[pe];
                const uint32_t p = src[edge];
                const double dp = d[p];
                if (dp == kLogZero)
                    continue;
                if (types[p] == FlatCircuit::kSum) {
                    if (lw[edge] == kLogZero)
                        continue;
                    dn = logAdd(dn, dp + lw[edge]);
                } else { // product parent
                    if (prod_zeros[p] >= 2)
                        continue;
                    if (prod_zeros[p] == 1) {
                        if (logv[c] == kLogZero)
                            dn = logAdd(dn, dp + prod_sum[p]);
                        continue;
                    }
                    dn = logAdd(dn, dp + prod_sum[p] - logv[c]);
                }
            }
            d[c] = dn;
        }
    };
    for (size_t l = flat.numLevels(); l-- > 0;)
        active.parallelFor(flat.levelOffset[l], flat.levelOffset[l + 1],
                           kMinWavefrontNodesPerChunk, gather);
}

FlowAccumulator::FlowAccumulator(const FlatCircuit &flat,
                                 util::ThreadPool *pool)
    : flat_(flat), pool_(pool), eval_(flat, pool),
      flow_(flat.numNodes(), 0.0),
      edgeTotal_(flat.numEdges(), 0.0), nodeTotal_(flat.numNodes(), 0.0),
      leafTotal_(flat.numLeaves() * flat.arity, 0.0)
{
}

void
FlowAccumulator::add(const Assignment &x)
{
    ++count_;
    std::span<const double> val = eval_.evaluate(x);
    if (val[flat_.root] == kLogZero)
        return; // zero-probability evidence carries no flow

    const uint8_t *types = flat_.types.data();
    const uint32_t *off = flat_.edgeOffset.data();
    const uint32_t *tgt = flat_.edgeTarget.data();
    const double *lw = flat_.edgeLogWeight.data();
    const uint32_t *slot = flat_.leafSlot.data();
    const uint32_t *var = flat_.leafVar.data();

    util::ThreadPool &pool =
        pool_ ? *pool_ : util::globalThreadPool();
    if (pool.numThreads() == 1) {
        std::fill(flow_.begin(), flow_.end(), 0.0);
        flow_[flat_.root] = 1.0;
        // Children precede parents, so a reverse scan visits parents
        // first; a node's flow is final when the scan reaches it.
        for (size_t i = flat_.numNodes(); i-- > 0;) {
            const double fn = flow_[i];
            if (fn == 0.0)
                continue;
            nodeTotal_[i] += fn;
            switch (types[i]) {
              case FlatCircuit::kLeaf: {
                const uint32_t s = slot[i];
                const uint32_t v = x[var[s]];
                if (v != kMissing)
                    leafTotal_[size_t(s) * flat_.arity + v] += fn;
                break;
              }
              case FlatCircuit::kProduct:
                for (uint32_t e = off[i]; e < off[i + 1]; ++e) {
                    edgeTotal_[e] += fn;
                    flow_[tgt[e]] += fn;
                }
                break;
              case FlatCircuit::kSum:
                for (uint32_t e = off[i]; e < off[i + 1]; ++e) {
                    if (lw[e] == kLogZero)
                        continue;
                    const double child_val = val[tgt[e]];
                    if (child_val == kLogZero)
                        continue;
                    const double f =
                        std::exp(lw[e] + child_val - val[i]) * fn;
                    edgeTotal_[e] += f;
                    flow_[tgt[e]] += f;
                }
                break;
            }
        }
        return;
    }

    // Parallel downward pass: walk levels top-down and *gather* each
    // node's flow from its finalized parents through the transpose.
    // Parents of a level-L node all sit in levels > L, so inside one
    // level every node is independent; flow_[c], edgeTotal_[e] (one
    // child per edge), nodeTotal_[c], and leafTotal_ rows each have a
    // single writer.  Incoming edges are stored in descending parent
    // order — the exact accumulation order of the serial scatter — so
    // every total matches the serial path bit for bit.
    const uint32_t *poff = flat_.parentOffset.data();
    const uint32_t *pedge = flat_.parentEdge.data();
    const uint32_t *src = flat_.edgeSource.data();
    double *flow = flow_.data();
    const double *valp = val.data();
    auto gather = [&](size_t b, size_t e, unsigned) {
        for (size_t k = b; k < e; ++k) {
            const uint32_t c = flat_.levelNodes[k];
            double fn = c == flat_.root ? 1.0 : 0.0;
            for (uint32_t pe = poff[c]; pe < poff[c + 1]; ++pe) {
                const uint32_t edge = pedge[pe];
                const uint32_t p = src[edge];
                const double fp = flow[p];
                if (fp == 0.0)
                    continue;
                if (types[p] == FlatCircuit::kProduct) {
                    edgeTotal_[edge] += fp;
                    fn += fp;
                } else { // sum parent
                    if (lw[edge] == kLogZero)
                        continue;
                    const double child_val = valp[c];
                    if (child_val == kLogZero)
                        continue;
                    const double f =
                        std::exp(lw[edge] + child_val - valp[p]) * fp;
                    edgeTotal_[edge] += f;
                    fn += f;
                }
            }
            flow[c] = fn;
            if (fn == 0.0)
                continue;
            nodeTotal_[c] += fn;
            if (types[c] == FlatCircuit::kLeaf) {
                const uint32_t s = slot[c];
                const uint32_t v = x[var[s]];
                if (v != kMissing)
                    leafTotal_[size_t(s) * flat_.arity + v] += fn;
            }
        }
    };
    for (size_t l = flat_.numLevels(); l-- > 0;)
        pool.parallelFor(flat_.levelOffset[l], flat_.levelOffset[l + 1],
                         kMinNodesPerChunk, gather);
}

void
FlowAccumulator::mergeFrom(const FlowAccumulator &other)
{
    reasonAssert(&flat_ == &other.flat_,
                 "cannot merge flows of different lowerings");
    for (size_t i = 0; i < edgeTotal_.size(); ++i)
        edgeTotal_[i] += other.edgeTotal_[i];
    for (size_t i = 0; i < nodeTotal_.size(); ++i)
        nodeTotal_[i] += other.nodeTotal_[i];
    for (size_t i = 0; i < leafTotal_.size(); ++i)
        leafTotal_[i] += other.leafTotal_[i];
    count_ += other.count_;
}

DatasetFlows
accumulateDatasetFlows(const FlatCircuit &flat,
                       const std::vector<Assignment> &data,
                       const FlowShardOptions &opts,
                       util::ThreadPool *pool)
{
    util::ThreadPool &active =
        pool ? *pool : util::globalThreadPool();
    const unsigned shards = util::resolveShardCount(
        opts.shards, opts.deterministic, data.size(),
        active.numThreads());
    DatasetFlows out;
    out.shards = shards;
    if (shards <= 1) {
        // Legacy serial left fold over the dataset; per-sample
        // wavefront parallelism (the pool) still applies inside add().
        FlowAccumulator acc(flat, pool);
        for (const auto &x : data)
            acc.add(x);
        out.edgeFlow = std::move(acc.edgeTotal_);
        out.nodeFlow = std::move(acc.nodeTotal_);
        out.leafValueFlow = std::move(acc.leafTotal_);
        out.count = acc.count_;
        return out;
    }

    // One private accumulator per shard over a contiguous sample slice
    // whose boundaries depend only on (samples, shards).  Each shard's
    // per-sample passes run serially — shard parallelism replaces
    // wavefront parallelism here.  A 1-thread pool's parallelFor runs
    // inline without touching shared state, so one serial pool is
    // safely shared by every concurrent accumulator.
    util::ThreadPool serial_pool(1);
    std::vector<std::unique_ptr<FlowAccumulator>> accs(shards);
    for (unsigned s = 0; s < shards; ++s)
        accs[s] = std::make_unique<FlowAccumulator>(flat, &serial_pool);
    util::shardSlices(active, data.size(), shards,
                      [&](size_t s, size_t lo, size_t hi) {
                          for (size_t i = lo; i < hi; ++i)
                              accs[s]->add(data[i]);
                      });

    // Deterministic fixed-shape pairwise merge: shape depends only on
    // the shard count, and each element is accumulated left-to-right.
    util::treeReduce(shards, [&](size_t a, size_t b) {
        accs[a]->mergeFrom(*accs[b]);
    });
    out.edgeFlow = std::move(accs[0]->edgeTotal_);
    out.nodeFlow = std::move(accs[0]->nodeTotal_);
    out.leafValueFlow = std::move(accs[0]->leafTotal_);
    out.count = accs[0]->count_;
    return out;
}

} // namespace pc
} // namespace reason
