#include "logic/nnf_io.h"

#include <sstream>

#include "util/logging.h"

namespace reason {
namespace logic {

std::string
toC2dFormat(const DnnfGraph &graph)
{
    // c2d's root is the *last* node, and readers expect every node to
    // matter; emit only nodes reachable from the root, renumbered in
    // topological order (the compiler's hash-consed singletons may
    // leave unused True/False/Lit nodes behind).
    std::vector<bool> reachable(graph.numNodes(), false);
    reachable[graph.root()] = true;
    for (size_t i = graph.numNodes(); i-- > 0;) {
        if (!reachable[i])
            continue;
        for (NnfId c : graph.node(NnfId(i)).children)
            reachable[c] = true;
    }
    std::vector<NnfId> renumber(graph.numNodes(), kInvalidNnf);
    size_t kept = 0, edges = 0;
    for (size_t i = 0; i < graph.numNodes(); ++i) {
        if (!reachable[i])
            continue;
        renumber[i] = NnfId(kept++);
        edges += graph.node(NnfId(i)).children.size();
    }

    std::ostringstream os;
    os << "nnf " << kept << " " << edges << " " << graph.numVars()
       << "\n";
    for (size_t i = 0; i < graph.numNodes(); ++i) {
        if (!reachable[i])
            continue;
        const NnfNode &node = graph.node(NnfId(i));
        switch (node.type) {
          case NnfType::True:
            os << "A 0\n";
            break;
          case NnfType::False:
            os << "O 0 0\n";
            break;
          case NnfType::Lit:
            os << "L " << node.lit.toDimacs() << "\n";
            break;
          case NnfType::And:
            os << "A " << node.children.size();
            for (NnfId c : node.children)
                os << " " << renumber[c];
            os << "\n";
            break;
          case NnfType::Or:
            // c2d records the decision variable 1-based (0 = none).
            os << "O " << (node.decisionVar + 1) << " "
               << node.children.size();
            for (NnfId c : node.children)
                os << " " << renumber[c];
            os << "\n";
            break;
        }
    }
    return os.str();
}

DnnfGraph
parseC2dFormat(const std::string &text)
{
    std::istringstream is(text);
    std::string tag;
    if (!(is >> tag) || tag != "nnf")
        fatal("parseC2dFormat: missing 'nnf' header");
    size_t num_nodes = 0, num_edges = 0;
    uint32_t num_vars = 0;
    if (!(is >> num_nodes >> num_edges >> num_vars))
        fatal("parseC2dFormat: malformed header counts");

    std::vector<NnfNode> nodes;
    nodes.reserve(num_nodes);
    auto readChildren = [&](size_t count) {
        std::vector<NnfId> children(count);
        for (auto &c : children) {
            long long v;
            if (!(is >> v) || v < 0 ||
                size_t(v) >= nodes.size())
                fatal("parseC2dFormat: bad child reference in node %zu",
                      nodes.size());
            c = NnfId(v);
        }
        return children;
    };

    while (is >> tag) {
        NnfNode node;
        if (tag == "L") {
            long long d;
            if (!(is >> d) || d == 0)
                fatal("parseC2dFormat: bad literal line");
            node.type = NnfType::Lit;
            node.lit = Lit::fromDimacs(d);
            if (node.lit.var() >= num_vars)
                fatal("parseC2dFormat: literal variable %u out of the "
                      "declared %u", node.lit.var(), num_vars);
        } else if (tag == "A") {
            size_t k;
            if (!(is >> k))
                fatal("parseC2dFormat: bad conjunction arity");
            if (k == 0) {
                node.type = NnfType::True;
            } else {
                node.type = NnfType::And;
                node.children = readChildren(k);
            }
        } else if (tag == "O") {
            long long decision;
            size_t k;
            if (!(is >> decision >> k) || decision < 0)
                fatal("parseC2dFormat: bad disjunction line");
            if (k == 0) {
                node.type = NnfType::False;
            } else {
                if (k != 2)
                    fatal("parseC2dFormat: decision Or must have two "
                          "children, got %zu", k);
                if (decision == 0)
                    fatal("parseC2dFormat: nonempty Or without a "
                          "decision variable");
                node.type = NnfType::Or;
                node.decisionVar = uint32_t(decision - 1);
                node.children = readChildren(k);
            }
        } else {
            fatal("parseC2dFormat: unknown node tag '%s'", tag.c_str());
        }
        nodes.push_back(std::move(node));
    }
    if (nodes.size() != num_nodes)
        fatal("parseC2dFormat: header declared %zu nodes, found %zu",
              num_nodes, nodes.size());
    if (nodes.empty())
        fatal("parseC2dFormat: empty graph");
    NnfId root = NnfId(nodes.size() - 1); // c2d: the last node is the root
    return DnnfGraph::fromNodes(std::move(nodes), root, num_vars);
}

} // namespace logic
} // namespace reason
