/**
 * @file
 * The REASON algorithm-optimization pipeline (Sec. IV):
 * Stage 1 unify into a DAG, Stage 2 adaptive pruning, Stage 3 two-input
 * regularization.  One entry point per substrate, each returning the
 * compiled DAG plus the before/after size metrics that Table IV reports.
 */

#ifndef REASON_CORE_PIPELINE_H
#define REASON_CORE_PIPELINE_H

#include <cstdint>
#include <vector>

#include "core/builders.h"
#include "core/dag.h"
#include "core/regularize.h"
#include "hmm/hmm.h"
#include "logic/cnf.h"
#include "logic/implication_graph.h"
#include "pc/flows.h"
#include "pc/pc.h"

namespace reason {
namespace core {

/** Which pipeline stages to run. */
struct PipelineConfig
{
    bool prune = true;
    bool regularize = true;
    /** PC flow threshold (fraction of per-example root flow). */
    double pcFlowThreshold = 8e-3;
    /** HMM posterior usage threshold (fraction of average usage). */
    double hmmUsageThreshold = 0.12;
};

/** Result of running the three-stage pipeline on one kernel. */
struct OptimizedKernel
{
    Dag dag;
    /** DAG metrics before pruning/regularization (Stage 1 output). */
    DagStats statsBefore;
    /** Final DAG metrics. */
    DagStats statsAfter;
    /** 1 - after.memoryBytes / before.memoryBytes. */
    double memoryReduction = 0.0;
    /** Substrate-specific prune accounting. */
    uint64_t elementsPruned = 0;
};

/** CNF: implication-graph pruning, then DAG build + regularization. */
OptimizedKernel optimizeCnf(const logic::CnfFormula &formula,
                            const PipelineConfig &config = {});

/**
 * PC: circuit-flow pruning over `data`, then DAG build + regularization.
 * @param leaf_order receives the optimized circuit's leaf input order.
 */
OptimizedKernel optimizeCircuit(const pc::Circuit &circuit,
                                const std::vector<pc::Assignment> &data,
                                const PipelineConfig &config = {},
                                pc::Circuit *pruned_circuit = nullptr,
                                std::vector<pc::NodeId> *leaf_order
                                = nullptr);

/** HMM: posterior-usage pruning over `data`, then unrolled DAG build. */
OptimizedKernel optimizeHmm(const hmm::Hmm &hmm,
                            const std::vector<hmm::Sequence> &data,
                            const hmm::Sequence &query,
                            const PipelineConfig &config = {},
                            hmm::Hmm *pruned_hmm = nullptr);

} // namespace core
} // namespace reason

#endif // REASON_CORE_PIPELINE_H
