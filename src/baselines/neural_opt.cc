#include "baselines/neural_opt.h"

#include "util/logging.h"

namespace reason {
namespace baselines {

const char *
neuralOptName(NeuralOpt opt)
{
    switch (opt) {
      case NeuralOpt::MemEffAttention: return "mem-efficient attention";
      case NeuralOpt::ChunkedPrefill: return "chunked prefill";
      case NeuralOpt::SpeculativeDecoding: return "speculative decoding";
      case NeuralOpt::FlashAttention3: return "FlashAttention-3";
      case NeuralOpt::Fp8KvCache: return "FP8 KV cache";
      case NeuralOpt::PrefixCaching: return "prefix caching";
    }
    return "?";
}

std::vector<NeuralOpt>
fullNeuralOptStack()
{
    return {NeuralOpt::MemEffAttention, NeuralOpt::ChunkedPrefill,
            NeuralOpt::SpeculativeDecoding, NeuralOpt::FlashAttention3,
            NeuralOpt::Fp8KvCache, NeuralOpt::PrefixCaching};
}

OptEffect
effectOf(NeuralOpt opt, const LlmConfig &config)
{
    // Calibration: phase multipliers representative of the public
    // numbers for each technique (vLLM, FA-3, and speculative-decoding
    // reports), chosen so the full stack reproduces the paper's
    // 2.8-3.3x (unique prompts) and 4-5x (reused prefixes) reductions.
    switch (opt) {
      case NeuralOpt::MemEffAttention:
        // Paged KV eliminates fragmentation stalls in decode.
        return {1.0, 0.88, 1.0};
      case NeuralOpt::ChunkedPrefill:
        // Overlapping prefill chunks with in-flight decode.
        return {0.92, 0.95, 1.0};
      case NeuralOpt::SpeculativeDecoding:
        // Draft-and-verify roughly doubles decode throughput.
        return {1.0, 0.50, 1.0};
      case NeuralOpt::FlashAttention3: {
        // Attention-kernel speedup scales with the attention share.
        double prefill = 1.0 - config.attentionFraction * 0.85;
        double decode = 1.0 - config.attentionFraction * 0.30;
        return {prefill, decode, 1.0};
      }
      case NeuralOpt::Fp8KvCache:
        // Halved KV traffic relieves memory-bound decode.
        return {1.0, 0.85, 0.5};
      case NeuralOpt::PrefixCaching: {
        // Cached prefixes skip their share of prefill compute (a small
        // lookup/stitch overhead remains).
        double f = config.prefixReuseFraction;
        reasonAssert(f >= 0.0 && f <= 1.0,
                     "prefix reuse fraction must be in [0,1]");
        return {1.0 - 0.98 * f, 1.0, 1.0};
      }
    }
    return {};
}

NeuralStageCost
baselineNeuralCost(const LlmConfig &config, const DeviceModel &device)
{
    NeuralStageCost cost;
    // Prefill: dense-compute bound across the whole prompt.
    double flops = double(config.promptTokens) * config.flopsPerToken;
    cost.prefillSeconds =
        flops / (device.peakTflops * 1e12 * device.denseEfficiency);
    // Decode: one token at a time, bound by streaming the weights plus
    // the (growing) KV cache from device memory.
    double kv_avg = config.kvBytesPerToken *
                    (config.promptTokens + config.genTokens / 2.0);
    double bytes_per_token = config.paramBytes + kv_avg;
    cost.decodeSeconds = double(config.genTokens) * bytes_per_token /
                         (device.dramGBps * 1e9);
    cost.kvBytes = config.kvBytesPerToken *
                   (config.promptTokens + config.genTokens);
    return cost;
}

NeuralStageCost
optimizedNeuralCost(const LlmConfig &config, const DeviceModel &device,
                    const std::vector<NeuralOpt> &stack)
{
    NeuralStageCost cost = baselineNeuralCost(config, device);
    for (NeuralOpt opt : stack) {
        OptEffect e = effectOf(opt, config);
        cost.prefillSeconds *= e.prefillMul;
        cost.decodeSeconds *= e.decodeMul;
        cost.kvBytes *= e.kvBytesMul;
    }
    return cost;
}

double
stackSpeedup(const LlmConfig &config, const DeviceModel &device,
             const std::vector<NeuralOpt> &stack)
{
    double base = baselineNeuralCost(config, device).totalSeconds();
    double opt = optimizedNeuralCost(config, device, stack).totalSeconds();
    reasonAssert(opt > 0.0, "optimized cost must stay positive");
    return base / opt;
}

} // namespace baselines
} // namespace reason
