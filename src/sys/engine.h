/**
 * @file
 * sys::ReasonEngine — the asynchronous batch-serving front door of the
 * runtime (the production successor of the Listing-1 polling loop).
 *
 * An engine owns a sharded submission queue (sys::RequestQueue) and N
 * dispatcher threads, each with a private evaluator cache and
 * util::ThreadPool evaluation pool.  Clients open *sessions* and
 * submit requests; dispatchers drain per-fingerprint shards — circuit
 * sessions are keyed by their structural lowering fingerprint
 * (pc::cachedLowering), so independent sessions over structurally
 * identical circuits share batches — and execute each coalesced group
 * as one blocked SoA evaluation on pc::CircuitEvaluator.  The queue
 * provides bounded admission with overload shedding, per-session
 * fairness, and optional linger autotuning (see request_queue.h).
 *
 * **Determinism contract.**  Every circuit-mode row is evaluated
 * through the one canonical SIMD block kernel of
 * pc::CircuitEvaluator::logLikelihoodBatch (tails run the same masked
 * kernel; SoA lanes are independent), so a
 * request's outputs are bit-identical no matter how it was coalesced —
 * alone, with other requests, or split across engine instances — and
 * for any serveThreads or dispatcher count and any queue policy (the
 * pool contract of flat_pc.h; dispatchers share no evaluation state).
 * Program-mode (Listing-1) requests replay the exact per-row
 * accelerator loop of the pre-engine ReasonRuntime, so their outputs
 * are bit-identical to sequential REASON_execute.
 *
 * **Thread-safety.**  Sessions and handles may be used from any
 * thread; submissions and waits from many client threads are the
 * intended pattern.  One Session object itself is safe for concurrent
 * submits (submission state is immutable; ids are atomic).  The engine
 * must outlive its sessions' *submissions* (wait/poll route through
 * the engine queue), but RequestHandle result accessors stay readable
 * after engine destruction because requests are shared-owned.
 */

#ifndef REASON_SYS_ENGINE_H
#define REASON_SYS_ENGINE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "arch/config.h"
#include "compiler/program.h"
#include "pc/approx.h"
#include "pc/flat_pc.h"
#include "sys/request_queue.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace reason {
namespace pc {
class Circuit;
}

namespace sys {

class ReasonEngine;

/**
 * Serving knobs of a ReasonEngine (mirrored on sys::RuntimeOptions and
 * the reason_cli/bench_eval flags).
 */
struct ServeOptions
{
    /**
     * Most rows one coalesced evaluation may carry.  Larger batches
     * amortize the circuit traversal across more SoA rows; 0 behaves
     * as 1 (no coalescing).  The cap bounds *coalescing*, not single
     * requests: one submitBatch larger than maxBatch still executes
     * as one evaluation (it just never gains co-riders), so clients
     * wanting bounded per-dispatch work must split bulk queries
     * themselves — results are bit-identical either way.
     */
    unsigned maxBatch = 64;
    /**
     * How long (microseconds) a dispatch lingers for same-key late
     * arrivals when the group is below maxBatch.  0 (default)
     * dispatches greedily: coalescing then comes purely from backlog,
     * which adds no idle latency to lightly loaded engines.
     */
    unsigned maxCoalesceWindowUs = 0;
    /**
     * Worker count of the engine's evaluation pool (the blocked SoA
     * row-block parallelism of CircuitEvaluator).  0 selects hardware
     * concurrency.  Results are bit-identical for any value.
     */
    unsigned serveThreads = 1;
    /**
     * Start with dispatching held (ReasonEngine::resume() releases
     * it).  Lets tests and benchmarks build a backlog so coalescing is
     * deterministic rather than arrival-timing dependent.
     */
    bool startPaused = false;
    /**
     * Dispatcher threads draining the sharded queue.  Each dispatcher
     * owns a private evaluator cache and evaluation pool, so circuit
     * shards can execute concurrently; 0 behaves as 1.  Results are
     * bit-identical for any count.
     */
    unsigned dispatchers = 1;
    /**
     * Max requests pending in the queue; 0 = unbounded.  At capacity
     * the engine sheds per `queuePolicy` with REASON_ERR_OVERLOAD
     * instead of letting latency grow without bound.
     */
    size_t queueCapacity = 0;
    /** What a full queue does with the overflow. */
    QueuePolicy queuePolicy = QueuePolicy::RejectNew;
    /**
     * Autotune the coalesce linger window from EWMAs of request
     * inter-arrival time and batch execution time; the configured
     * maxCoalesceWindowUs then acts as the cap (default cap when 0).
     */
    bool autoLingerWindow = false;
    /**
     * Pin dispatcher threads and evaluation-pool workers to cores
     * (best effort; a no-op on platforms without affinity support).
     */
    bool pinThreads = false;
};

/** Aggregate serving statistics (snapshot; monotone counters). */
struct EngineStats
{
    /** Requests accepted into the queue. */
    uint64_t requests = 0;
    /** Rows across accepted requests. */
    uint64_t rows = 0;
    /** Coalesced batches dispatched. */
    uint64_t batches = 0;
    /** Requests completed (including shutdown/overload failures). */
    uint64_t completed = 0;
    /** Requests that actually executed (completed minus failures). */
    uint64_t executed = 0;
    /** Mean rows per dispatched batch. */
    double meanBatchOccupancy = 0.0;
    /** Deepest pending-queue depth observed. */
    uint64_t maxQueueDepth = 0;
    /** Mean enqueue-to-dispatch wait over executed requests (ms). */
    double meanQueueMs = 0.0;
    /** Mean enqueue-to-completion latency over executed requests (ms). */
    double meanLatencyMs = 0.0;
    /** Requests completed with REASON_ERR_OVERLOAD. */
    uint64_t shedRequests = 0;
    /**
     * Requests completed with REASON_ERR_DEADLINE_EXCEEDED (deadline
     * passed while queued, or drain-deadline expiry).  Never counted
     * in `executed`, so latency means stay unbiased.
     */
    uint64_t expired = 0;
    /** Requests completed with REASON_ERR_CANCELLED. */
    uint64_t cancelled = 0;
    /**
     * Latency percentiles over executed requests, from a fixed-size
     * reservoir sample — the same estimate bench_eval reports.
     */
    double p50LatencyMs = 0.0;
    double p99LatencyMs = 0.0;
    /** Linger-autotune telemetry (EWMAs; zero until enough traffic). */
    double ewmaInterArrivalUs = 0.0;
    double ewmaExecUs = 0.0;
    double lastLingerUs = 0.0;
};

/**
 * Completion token of one submission.  Cheap to copy; shares ownership
 * of the underlying request, so results remain readable for the
 * handle's lifetime.  Use Session::poll/wait to synchronize; call the
 * result accessors only after completion has been observed (poll()
 * returned true, wait() returned, or the engine was destroyed).
 */
class RequestHandle
{
  public:
    RequestHandle() = default;

    bool valid() const { return request_ != nullptr; }
    uint64_t id() const { return request_ ? request_->id : 0; }

    /**
     * Cancel the request if it is still queued, completing it with
     * REASON_ERR_CANCELLED.  Returns true on success; false when the
     * request already started executing (it will complete normally —
     * cancellation never yields a torn result), already finished, or
     * was rejected at submit.  Valid only while the engine is alive
     * (the same lifetime contract as poll/wait).
     */
    bool cancel()
    {
        return request_ != nullptr &&
               request_->ownerQueue != nullptr &&
               request_->ownerQueue->cancel(request_);
    }

    /** REASON_OK or the ReasonError the request failed with. */
    int error() const { return checked().error; }
    /** Per-row outputs (log-likelihoods / root values). */
    const std::vector<double> &outputs() const
    {
        return checked().outputs;
    }
    /**
     * Approximate tier: certified per-row interval endpoints,
     * boundsLo()[r] <= exact log-likelihood <= boundsHi()[r].
     * Empty for exact-tier and program requests.
     */
    const std::vector<double> &boundsLo() const
    {
        return checked().boundLo;
    }
    const std::vector<double> &boundsHi() const
    {
        return checked().boundHi;
    }
    /** Program mode: execution result of the batch's final row. */
    const arch::ExecutionResult &execution() const
    {
        return checked().exec;
    }
    /** Program mode: simulated cycles consumed by the batch. */
    uint64_t executionCycles() const { return checked().execCycles; }
    /** Enqueue-to-completion latency in nanoseconds (0 until done). */
    uint64_t
    latencyNs() const
    {
        const Request &r = checked();
        return r.completedNs == 0 ? 0 : r.latencyNs();
    }

  private:
    const Request &checked() const
    {
        reasonAssert(request_ != nullptr,
                     "result access on an invalid handle");
        return *request_;
    }

    friend class Session;
    friend class ReasonEngine;
    explicit RequestHandle(std::shared_ptr<Request> request)
        : request_(std::move(request))
    {
    }

    std::shared_ptr<Request> request_;
};

/**
 * One client's view of the engine.  Circuit sessions submit assignment
 * rows and receive log-likelihoods; program sessions submit Listing-1
 * input batches executed on a private cycle-accurate accelerator.
 * Copyable (copies share the underlying session state).
 */
class Session
{
  public:
    Session() = default;

    bool valid() const { return engine_ != nullptr; }

    /**
     * Circuit sessions: submit one assignment row.  Never blocks and
     * never throws; validation failures return an already-completed
     * handle carrying the ReasonError.
     */
    RequestHandle submit(pc::Assignment row);

    /**
     * Circuit sessions: submit many rows as one request.  A request
     * always executes as one evaluation, even when it exceeds
     * ServeOptions::maxBatch (the cap bounds coalescing only); split
     * bulk queries into several requests for bounded dispatch units.
     */
    RequestHandle submitBatch(std::vector<pc::Assignment> rows);

    /**
     * Tier-selecting submission: the engine picks the tier from the
     * accuracy budget.  Budget 0 routes to the exact tier (identical
     * to the budget-less overloads); a positive budget routes to
     * REASON_MODE_APPROX, whose results carry certified per-row
     * bounds (RequestHandle::boundsLo/boundsHi) and are bit-identical
     * across threads, batch shapes, and dispatcher counts.  NaN,
     * infinite, or negative budgets fail with REASON_ERR_BAD_BUDGET.
     */
    RequestHandle submit(pc::Assignment row, double accuracyBudget);
    RequestHandle submitBatch(std::vector<pc::Assignment> rows,
                              double accuracyBudget);

    /**
     * Deadline-carrying submissions: `deadlineNs` is *relative* to the
     * submit call (anchored to the steady clock here; 0 = no
     * deadline).  A request whose deadline passes while it is still
     * queued completes with REASON_ERR_DEADLINE_EXCEEDED; once a
     * dispatcher picks it up it always completes normally, so answered
     * results stay bit-identical to deadline-less runs.
     */
    RequestHandle submit(pc::Assignment row, double accuracyBudget,
                         uint64_t deadlineNs);
    RequestHandle submitBatch(std::vector<pc::Assignment> rows,
                              double accuracyBudget,
                              uint64_t deadlineNs);

    /**
     * Program sessions: submit a Listing-1 batch (row-major inputs,
     * batch_size rows of the program's input arity).  `mode` must be a
     * ReasonMode value.
     */
    RequestHandle submitProgram(int batch_size, const double *inputs,
                                int mode);

    /** True once the request completed (success or error). */
    bool poll(const RequestHandle &handle) const;

    /**
     * Block until the request completes; returns the completed request
     * as a shared owner, so the result stays readable even when the
     * handle was a temporary and the engine has moved on.  Waiting on
     * an invalid handle is an error.
     */
    std::shared_ptr<const Request> wait(const RequestHandle &handle) const;

  private:
    friend class ReasonEngine;
    Session(ReasonEngine *engine, std::shared_ptr<SessionState> state)
        : engine_(engine), state_(std::move(state))
    {
    }

    RequestHandle finishRejected(std::shared_ptr<Request> request,
                                 int error) const;

    ReasonEngine *engine_ = nullptr;
    std::shared_ptr<SessionState> state_;
};

/**
 * The asynchronous serving engine.  See the file comment for the
 * execution and determinism model.  Destroying the engine fails
 * still-queued requests with REASON_ERR_SHUTDOWN, finishes the groups
 * in flight, and joins every dispatcher.
 */
class ReasonEngine
{
  public:
    explicit ReasonEngine(const ServeOptions &options = {});
    ~ReasonEngine();

    ReasonEngine(const ReasonEngine &) = delete;
    ReasonEngine &operator=(const ReasonEngine &) = delete;

    /**
     * Open a serving session over a probabilistic circuit.  The
     * lowering is obtained through pc::cachedLowering, so sessions
     * over structurally identical circuits share one lowering — and
     * therefore one coalescing key.  The circuit itself is not
     * retained and may be destroyed after the call.
     */
    Session createSession(const pc::Circuit &circuit);

    /**
     * Open a serving session over an already-flat circuit (a direct
     * d-DNNF lowering or a streamed `.nnf` load — pc/from_logic).  No
     * heap Circuit ever exists on this path, so there is nothing to
     * cache-key by: sessions sharing one FlatCircuit object share one
     * coalescing key; distinct objects never coalesce even when
     * structurally equal.  The engine holds a reference for the
     * session's lifetime.
     */
    Session createSession(std::shared_ptr<const pc::FlatCircuit> lowering);

    /**
     * Open a Listing-1 session: the compiled program runs on a private
     * cycle-accurate accelerator, one row at a time, exactly as the
     * pre-engine ReasonRuntime executed it.
     */
    Session createSession(const arch::ArchConfig &config,
                          compiler::Program program);

    /** Hold dispatching; queued submissions accumulate (and coalesce). */
    void pause();
    /** Release a pause() (or a startPaused construction). */
    void resume();

    /**
     * Graceful drain: close admission (subsequent submissions complete
     * immediately with REASON_ERR_SHUTTING_DOWN), release any pause,
     * finish queued work within `deadlineNs` (relative to the call;
     * 0 = expire everything still queued right away), then expire the
     * rest with REASON_ERR_DEADLINE_EXCEEDED.  In-flight groups are
     * always waited out — they complete normally.  Returns true when
     * every queued request finished without expiry.  The engine stays
     * alive (handles remain readable; destruction still does the final
     * shutdown); drain is one-way and idempotent.
     */
    bool drain(uint64_t deadlineNs);

    EngineStats stats() const;
    const ServeOptions &options() const { return options_; }

  private:
    friend class Session;

    struct CachedEvaluator
    {
        std::shared_ptr<const pc::FlatCircuit> flat;
        std::unique_ptr<pc::CircuitEvaluator> eval;
    };

    /**
     * Approximate-tier cache key: one evaluator per (lowering,
     * budget).  The budget participates as its IEEE-754 bit pattern
     * so distinct budgets never alias (and -0.0 != +0.0 never
     * matters: submission validation routes budget 0 to the exact
     * tier).
     */
    struct ApproxKey
    {
        const pc::FlatCircuit *flat = nullptr;
        uint64_t budgetBits = 0;
        bool operator==(const ApproxKey &o) const
        {
            return flat == o.flat && budgetBits == o.budgetBits;
        }
    };
    struct ApproxKeyHash
    {
        size_t operator()(const ApproxKey &k) const
        {
            return std::hash<const void *>()(k.flat) ^
                   (std::hash<uint64_t>()(k.budgetBits) *
                    0x9e3779b97f4a7c15ull);
        }
    };
    struct CachedApprox
    {
        std::shared_ptr<const pc::FlatCircuit> flat;
        std::unique_ptr<pc::ApproxEvaluator> eval;
    };

    /**
     * Per-dispatcher private state: evaluator cache, reused scratch,
     * and the evaluation pool.  Touched only by the owning dispatcher
     * thread, so dispatchers never share evaluation state — the basis
     * of the bit-identity-for-any-dispatcher-count contract.
     */
    struct Dispatcher
    {
        std::unordered_map<const pc::FlatCircuit *, CachedEvaluator>
            evaluators;
        /** Approximate-tier evaluators, keyed (lowering, budget). */
        std::unordered_map<ApproxKey, CachedApprox, ApproxKeyHash>
            approxEvaluators;
        /** Reused approx result scratch. */
        std::vector<pc::ApproxResult> approxOut;
        /** Reused group scratch (rows, outputs) — no per-batch
         *  allocation once warm. */
        std::vector<pc::Assignment> groupRows;
        std::vector<double> groupOut;
        /** Program-mode reused input row (the Listing-1 alloc hoist). */
        std::vector<double> inputRow;
        std::unique_ptr<util::ThreadPool> evalPool;
        /** First core of this dispatcher's pin block (pinThreads). */
        unsigned pinCore = 0;
        std::thread thread;
    };

    void workerLoop(Dispatcher &disp);
    void executeGroup(Dispatcher &disp,
                      const std::vector<std::shared_ptr<Request>> &group);
    void executeCircuitGroup(
        Dispatcher &disp,
        const std::vector<std::shared_ptr<Request>> &group);
    void executeApproxGroup(
        Dispatcher &disp,
        const std::vector<std::shared_ptr<Request>> &group);
    void executeProgramRequest(Dispatcher &disp, Request &request);
    pc::CircuitEvaluator &evaluatorFor(Dispatcher &disp,
                                       const pc::FlatCircuit &flat,
                                       std::shared_ptr<const pc::FlatCircuit>
                                           keepAlive);
    pc::ApproxEvaluator &approxEvaluatorFor(
        Dispatcher &disp, const pc::FlatCircuit &flat, double budget,
        std::shared_ptr<const pc::FlatCircuit> keepAlive);
    RequestHandle enqueue(const std::shared_ptr<Request> &request);

    ServeOptions options_;
    RequestQueue queue_;
    std::atomic<uint64_t> nextId_{1};
    std::vector<std::unique_ptr<Dispatcher>> dispatchers_;
};

} // namespace sys
} // namespace reason

#endif // REASON_SYS_ENGINE_H
