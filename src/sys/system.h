/**
 * @file
 * System-level evaluation glue (Sec. VI, Sec. VII): per-platform
 * symbolic-kernel timing/energy, neural-stage modeling, and the
 * two-level GPU-REASON execution pipeline.
 */

#ifndef REASON_SYS_SYSTEM_H
#define REASON_SYS_SYSTEM_H

#include <cstdint>
#include <string>
#include <vector>

#include "arch/config.h"
#include "baselines/device.h"
#include "energy/energy_model.h"
#include "util/stats.h"
#include "workloads/timing.h"
#include "workloads/workloads.h"

namespace reason {
namespace sys {

/** Platforms compared across the evaluation figures. */
enum class Platform : uint8_t
{
    ReasonAccel, OrinNx, RtxA6000, XeonCpu, V100, A100, TpuLike, DpuLike
};

const char *platformName(Platform p);

/** Time + energy of one stage on one platform. */
struct StageCost
{
    double seconds = 0.0;
    double joules = 0.0;
};

/**
 * Symbolic/probabilistic kernel cost of a measured task on a platform.
 * For Platform::ReasonAccel the cost comes from the hardware event
 * charges (cycle model + energy events); for the others from the device
 * models.
 */
StageCost symbolicCost(Platform platform,
                       const workloads::SymbolicOps &ops,
                       const arch::ArchConfig &cfg = {},
                       energy::TechNode node = energy::TechNode::Tsmc28);

/**
 * Neural-stage FLOPs implied by the paper's measured neural/symbolic
 * split on an A6000 (Fig. 3(a)): the bundle's symbolic time on the
 * A6000 model is scaled by f/(1-f).
 */
double neuralFlops(const workloads::TaskBundle &bundle,
                   const workloads::SymbolicOps &ops);

/** Neural-stage cost on a platform's host device. */
StageCost neuralCost(Platform platform, double flops);

/** End-to-end composition of one task. */
struct EndToEnd
{
    double neuralSeconds = 0.0;
    double symbolicSeconds = 0.0;
    double handoffSeconds = 0.0;
    double totalSeconds = 0.0;
    double totalJoules = 0.0;
};

/**
 * Two-level pipelined composition (Sec. VI-C): neural for batch N+1
 * overlaps symbolic for batch N; the steady-state batch latency is the
 * max of the stages.  Used when REASON is the symbolic engine
 * (co-located with the GPU: no PCIe handoff).
 */
EndToEnd pipelinedComposition(StageCost neural, StageCost symbolic,
                              uint32_t batches);

/**
 * Serial composition with inter-device handoff overhead (the CPU+GPU
 * baseline of Sec. VII-C: >15% transfer overhead, no overlap).
 */
EndToEnd serialComposition(StageCost neural, StageCost symbolic,
                           uint32_t batches,
                           double handoff_fraction = 0.15);

/**
 * Small-DNN (SpMSpM-mode) neural rates for the Fig. 13 accelerator
 * comparison, in effective MAC/s: REASON maps small models onto its
 * tree fabric; the TPU-like systolic array is faster, the DPU-like
 * array slower.
 */
double accelNeuralMacsPerSec(Platform p, const arch::ArchConfig &cfg);

} // namespace sys
} // namespace reason

#endif // REASON_SYS_SYSTEM_H
