/**
 * @file
 * Cycle-driven DRAM timing model for the accelerator's DMA path.
 *
 * Replaces the flat `dmaLatencyCycles` constant with a
 * hardware-faithful LPDDR5-class model: a configurable address-mapping
 * layer (channel/rank/bank/row/column bit slicing), per-bank state
 * machines enforcing tRCD/tRP/tCAS/tRAS timing, per-channel FR-FCFS
 * scheduling over a bounded request queue, and row-buffer
 * hit/miss/conflict plus bank-level-parallelism statistics exported
 * through `util/stats`.
 *
 * Determinism contract: all timing arithmetic is integer cycle math,
 * scheduling decisions depend only on request content and arrival
 * order, and iteration orders are fixed — the same request sequence
 * always produces bit-identical cycle counts.
 */

#ifndef REASON_ARCH_DRAM_H
#define REASON_ARCH_DRAM_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "arch/config.h"
#include "util/stats.h"

namespace reason {
namespace arch {

/** Decoded physical location of one DRAM burst. */
struct DramCoord
{
    uint32_t channel = 0;
    uint32_t rank = 0;
    uint32_t bank = 0; ///< within the rank
    uint64_t row = 0;
    uint32_t col = 0; ///< burst column within the row
};

/**
 * Flat-address <-> (channel, rank, bank, row, column) bit slicing.
 *
 * Low-order interleaving, chosen so that the accelerator's dominant
 * access shape — long sequential scratchpad/program streams — both
 * stripes across channels (bandwidth) and stays within open rows
 * (row-buffer hits):
 *
 *     burst index = addr / burstBytes
 *     [ row | rank | bank | column | channel ]   (msb ... lsb)
 *
 * Sequential bursts rotate channels; within one channel, consecutive
 * bursts fill a row's columns before touching the next bank/row.  All
 * geometry fields must be powers of two (checked at construction).
 */
class DramAddressMap
{
  public:
    DramAddressMap(uint32_t channels, uint32_t ranks, uint32_t banksPerRank,
                   uint32_t rowBytes, uint32_t burstBytes);

    DramCoord decode(uint64_t addr) const;
    /** Inverse of decode (returns the burst-aligned byte address). */
    uint64_t encode(const DramCoord &c) const;

    uint32_t channels() const { return channels_; }
    uint32_t ranks() const { return ranks_; }
    uint32_t banksPerRank() const { return banksPerRank_; }
    /** Banks per channel across all ranks. */
    uint32_t banksPerChannel() const { return ranks_ * banksPerRank_; }
    uint32_t burstBytes() const { return burstBytes_; }
    uint32_t rowBytes() const { return rowBytes_; }
    uint32_t burstsPerRow() const { return burstsPerRow_; }
    /**
     * Bytes of flat address space covered by one row index across all
     * channels (the "stripe set"): addresses within one such window
     * land in the same row of their respective banks.
     */
    uint64_t rowSpanBytes() const
    {
        return uint64_t(rowBytes_) * channels_;
    }

    /** Same channel, rank, bank, and row (an open-row hit pair). */
    bool sameRow(const DramCoord &a, const DramCoord &b) const
    {
        return a.channel == b.channel && a.rank == b.rank &&
               a.bank == b.bank && a.row == b.row;
    }

  private:
    uint32_t channels_, ranks_, banksPerRank_, rowBytes_, burstBytes_;
    uint32_t burstsPerRow_;
    uint32_t chBits_, colBits_, bankBits_, rankBits_;
};

/** Per-bank row-buffer access counters. */
struct DramBankCounters
{
    uint64_t hits = 0;      ///< open row matched
    uint64_t misses = 0;    ///< bank was closed (first activate)
    uint64_t conflicts = 0; ///< open row differed (precharge + activate)
};

/** One read request: a flat byte address plus a length. */
struct DramRequest
{
    uint64_t addr = 0;
    size_t bytes = 0;
};

/**
 * The timing model proper.  `read` / `readBatch` advance the model and
 * return the cycle at which the last data beat of the request is on
 * the bus.  Requests are split into bursts, enqueued per channel
 * (bounded by `dramQueueDepth` — a full queue stalls the producer by
 * servicing in order), and drained with FR-FCFS: the oldest queued
 * burst whose bank has the matching row open is served first, falling
 * back to the overall oldest.
 */
class DramModel
{
  public:
    explicit DramModel(const ArchConfig &cfg);

    /** Read `bytes` at `addr` starting no earlier than `now`. */
    uint64_t read(uint64_t now, uint64_t addr, size_t bytes);
    /**
     * Read a batch of requests issued together at `now` (one program
     * session / DMA descriptor list).  Bursts from all requests share
     * the channel queues, so the scheduler can exploit bank-level
     * parallelism and row locality across requests.  Returns the
     * completion cycle of the last burst.
     */
    uint64_t readBatch(uint64_t now, const std::vector<DramRequest> &reqs);

    const DramAddressMap &map() const { return map_; }

    // --- statistics -----------------------------------------------------
    uint64_t rowHits() const { return hits_; }
    uint64_t rowMisses() const { return misses_; }
    uint64_t rowConflicts() const { return conflicts_; }
    uint64_t bursts() const { return bursts_; }
    uint64_t bytesRead() const { return bytesRead_; }
    /** Fraction of bursts that hit an open row. */
    double rowHitRate() const
    {
        return bursts_ ? double(hits_) / double(bursts_) : 0.0;
    }
    /**
     * Mean number of distinct banks with work queued per channel,
     * sampled at each scheduling decision (bank-level parallelism).
     */
    double meanQueuedBankParallelism() const
    {
        return blpSamples_ ? double(blpSum_) / double(blpSamples_) : 0.0;
    }
    /** Deepest any channel queue got (bounded by dramQueueDepth). */
    uint32_t maxQueueOccupancy() const { return maxQueueOccupancy_; }
    const DramBankCounters &bankCounters(uint32_t channel,
                                         uint32_t bankInChannel) const;

    /** Structural peak: bytes per cycle across all channel buses. */
    double peakBytesPerCycle() const;
    /** Minimum possible latency of any burst (open-row hit). */
    uint64_t minLatencyCycles() const
    {
        return uint64_t(tCas_) + burstCycles_;
    }
    /** Minimum latency when the bank is closed (activate first). */
    uint64_t minClosedRowLatencyCycles() const
    {
        return uint64_t(tRcd_) + tCas_ + burstCycles_;
    }
    /** Completion cycle of the latest burst serviced so far. */
    uint64_t lastCompletionCycle() const { return lastCompletion_; }

    /**
     * Export aggregate and per-bank counters into a StatGroup with a
     * `dram_` prefix (e.g. `dram_row_hits`, `dram_c0_b3_conflicts`).
     * Per-bank keys are emitted only for banks that were touched.
     */
    void exportStats(StatGroup &g) const;

  private:
    struct BankState
    {
        int64_t openRow = -1;    ///< -1 = closed
        uint64_t readyAt = 0;    ///< earliest next column command
        uint64_t rasReadyAt = 0; ///< earliest precharge (tRAS)
    };
    struct PendingBurst
    {
        uint64_t arrival = 0;
        DramCoord coord;
        uint64_t seq = 0; ///< global arrival order (FCFS tiebreak)
    };
    struct ChannelState
    {
        uint64_t busFreeAt = 0;
        std::deque<PendingBurst> pending;
    };

    BankState &bank(const DramCoord &c);
    /** Service the best pending burst on `ch`; returns completion. */
    uint64_t serviceOne(uint32_t ch);
    void enqueueBurst(uint32_t ch, const PendingBurst &b);
    /** Drain every channel queue; returns max completion cycle. */
    uint64_t drainAll();

    DramAddressMap map_;
    uint32_t tRcd_, tRp_, tCas_, tRas_, burstCycles_, queueDepth_;
    std::vector<ChannelState> channels_;
    std::vector<BankState> banks_; ///< [channel][rank*banksPerRank+bank]
    std::vector<DramBankCounters> bankStats_;
    uint64_t hits_ = 0, misses_ = 0, conflicts_ = 0;
    uint64_t bursts_ = 0, bytesRead_ = 0;
    uint64_t blpSum_ = 0, blpSamples_ = 0;
    uint32_t maxQueueOccupancy_ = 0;
    uint64_t seq_ = 0;
    uint64_t lastCompletion_ = 0;
    uint64_t callMax_ = 0; ///< max completion within the current call
};

/**
 * Row-aware DMA program session.
 *
 * An engine program session accumulates the scratchpad words it needs
 * (`requestWord`), then `complete` coalesces them — sorted,
 * deduplicated, adjacent words within one row-stripe window merged
 * into a single same-row run — and issues the runs as one batch to
 * the DRAM model.  Returns the cycle at which every word is resident.
 */
class DmaSession
{
  public:
    explicit DmaSession(DramModel &dram, uint32_t wordBytes = 8);

    void requestWord(uint64_t addr);
    /** Coalesce + issue all pending words; resets for reuse. */
    uint64_t complete(uint64_t now);

    uint64_t wordsRequested() const { return words_; }
    uint64_t duplicateWords() const { return duplicates_; }
    /** Coalesced contiguous same-row runs issued to the model. */
    uint64_t runsIssued() const { return runs_; }

  private:
    DramModel &dram_;
    uint32_t wordBytes_;
    std::vector<uint64_t> pending_;
    uint64_t words_ = 0, duplicates_ = 0, runs_ = 0;
};

} // namespace arch
} // namespace reason

#endif // REASON_ARCH_DRAM_H
