/**
 * @file
 * Numerically robust helpers shared by the probabilistic substrates.
 */

#ifndef REASON_UTIL_NUMERIC_H
#define REASON_UTIL_NUMERIC_H

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

// ISA-keyed ABI inline namespace, for the same reason as simd.h: these
// helpers are inlined into hot kernels, and the per-ISA kernel TUs of
// the runtime dispatcher (util/simd_dispatch.h) compile them under
// -mavx2/-mavx512f.  Distinct mangled names per ISA stop the linker
// from comdat-folding a wide-ISA instantiation into baseline callers.
// Keyed off the raw compiler macros (this header cannot see simd.h's
// backend selection); REASON_FORCE_SCALAR still shares the baseline
// ABI — the scalar override changes the simd backend, not this code.
#if defined(__AVX512F__)
#define REASON_NUMERIC_ABI nabi_avx512f
#elif defined(__AVX2__)
#define REASON_NUMERIC_ABI nabi_avx2
#else
#define REASON_NUMERIC_ABI nabi_base
#endif

namespace reason {
inline namespace REASON_NUMERIC_ABI {

/** Negative infinity, the additive identity of log-space sums. */
inline constexpr double kLogZero = -std::numeric_limits<double>::infinity();

/** log(exp(a) + exp(b)) without overflow. */
inline double
logAdd(double a, double b)
{
    if (a == kLogZero)
        return b;
    if (b == kLogZero)
        return a;
    double hi = std::max(a, b);
    double lo = std::min(a, b);
    return hi + std::log1p(std::exp(lo - hi));
}

/**
 * Fast exp for non-positive arguments (x <= 0), the shape every
 * log-sum-exp inner loop produces after subtracting the running max.
 *
 * Cody-Waite range reduction (x = k*ln2 + r, |r| <= ln2/2) with a
 * degree-13 Taylor polynomial and direct exponent-bit assembly of 2^k.
 * Relative error is ~1e-16 over the whole domain — indistinguishable
 * from std::exp at the 1e-12 agreement tolerance the flat evaluators
 * guarantee — at a fraction of the cost, with no libm call.  Inputs
 * below -708 (where exp underflows) are clamped, so the function is
 * branch-free and auto-vectorizes; it returns ~5e-308 instead of 0
 * there, which is harmless wherever the result is accumulated.
 */
inline double
fastExpNonPositive(double x)
{
    x = std::max(x, -708.0);
    constexpr double kLog2e = 1.4426950408889634074;
    // ln2 split with 32 zeroed low bits so k*kLn2Hi is exact.
    constexpr double kLn2Hi = 6.93147180369123816490e-01;
    constexpr double kLn2Lo = 1.90821492927058770002e-10;
    // Round-to-nearest-integer via the 2^52+2^51 magic constant.
    constexpr double kShift = 6755399441055744.0;
    double t = x * kLog2e + kShift;
    double kd = t - kShift;
    int64_t k = int64_t(kd); // kd is an exact small integer
    double r = (x - kd * kLn2Hi) - kd * kLn2Lo; // |r| <= 0.3466
    // exp(r) by degree-13 Taylor (Horner); max rel error ~4e-18.
    double p = 1.0 / 6227020800.0; // 1/13!
    p = p * r + 1.0 / 479001600.0;
    p = p * r + 1.0 / 39916800.0;
    p = p * r + 1.0 / 3628800.0;
    p = p * r + 1.0 / 362880.0;
    p = p * r + 1.0 / 40320.0;
    p = p * r + 1.0 / 5040.0;
    p = p * r + 1.0 / 720.0;
    p = p * r + 1.0 / 120.0;
    p = p * r + 1.0 / 24.0;
    p = p * r + 1.0 / 6.0;
    p = p * r + 0.5;
    p = p * r + 1.0;
    p = p * r + 1.0;
    // 2^k by exponent assembly; k in [-1075, 0] here, and k >= -1022
    // whenever x >= -708, so the result stays normal.
    uint64_t pow2_bits = uint64_t(1023 + k) << 52;
    return p * std::bit_cast<double>(pow2_bits);
}

/** log(sum_i exp(xs[i])) without overflow. */
inline double
logSumExp(const std::vector<double> &xs)
{
    double hi = kLogZero;
    for (double x : xs)
        hi = std::max(hi, x);
    if (hi == kLogZero)
        return kLogZero;
    double acc = 0.0;
    for (double x : xs)
        acc += std::exp(x - hi);
    return hi + std::log(acc);
}

/** Relative closeness check for floating comparisons in tests/models. */
inline bool
nearlyEqual(double a, double b, double rel_tol = 1e-9,
            double abs_tol = 1e-12)
{
    double diff = std::fabs(a - b);
    if (diff <= abs_tol)
        return true;
    double scale = std::max(std::fabs(a), std::fabs(b));
    return diff <= rel_tol * scale;
}

/**
 * Exact integer power with overflow guard: computes base^exp into *out
 * and returns true iff the result does not exceed `limit`.  Replaces
 * floating-point pow() guards, whose rounding can admit state spaces a
 * few ULPs past the cap (or reject ones just under it).
 */
inline bool
checkedIntPow(uint64_t base, uint64_t exp, uint64_t limit, uint64_t *out)
{
    uint64_t acc = 1;
    for (uint64_t i = 0; i < exp; ++i) {
        if (base != 0 && acc > limit / base)
            return false;
        acc *= base;
        if (acc > limit)
            return false;
    }
    *out = acc;
    return true;
}

/** Ceiling division for positive integers. */
template <typename T>
constexpr T
ceilDiv(T a, T b)
{
    return (a + b - 1) / b;
}

/** Integer base-2 ceiling log; ceilLog2(1) == 0. */
inline uint32_t
ceilLog2(uint64_t v)
{
    uint32_t bits = 0;
    uint64_t x = 1;
    while (x < v) {
        x <<= 1;
        ++bits;
    }
    return bits;
}

/** Next power of two >= v (v >= 1). */
inline uint64_t
nextPow2(uint64_t v)
{
    return uint64_t(1) << ceilLog2(v);
}

} // inline namespace REASON_NUMERIC_ABI
} // namespace reason

#endif // REASON_UTIL_NUMERIC_H
