/**
 * @file
 * Parameter learning for probabilistic circuits via flow-based EM.
 *
 * Each EM iteration accumulates expected edge/leaf usage (the circuit
 * flows) over the dataset and re-estimates sum weights and leaf
 * distributions from the normalized counts with Laplace smoothing.
 * Monotone non-decreasing training log-likelihood is an invariant the
 * tests rely on.
 */

#ifndef REASON_PC_LEARN_H
#define REASON_PC_LEARN_H

#include <cstdint>
#include <vector>

#include "pc/pc.h"

namespace reason {
namespace pc {

/** One EM run's trace. */
struct EmTrace
{
    /** Mean train log-likelihood after each iteration (incl. initial). */
    std::vector<double> logLikelihood;
    uint32_t iterations = 0;
};

/** EM options. */
struct EmConfig
{
    uint32_t maxIterations = 20;
    /** Stop when LL improves by less than this per example. */
    double tolerance = 1e-6;
    /** Laplace smoothing pseudo-count added to every expected count. */
    double smoothing = 0.1;
};

/** Mean log-likelihood of a dataset under the circuit. */
double meanLogLikelihood(const Circuit &circuit,
                         const std::vector<Assignment> &data);

/**
 * Run flow-based EM in place.
 * @return the per-iteration trace (first entry is the initial LL).
 */
EmTrace emTrain(Circuit &circuit, const std::vector<Assignment> &data,
                const EmConfig &config = {});

} // namespace pc
} // namespace reason

#endif // REASON_PC_LEARN_H
