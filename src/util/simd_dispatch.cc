#include "util/simd_kernels.inc"

#include <cstring>

namespace reason {
namespace simd {

namespace {

// Wider is better; the baseline wins ties (it is what the rest of the
// binary runs anyway).
int
isaRank(const char *isa)
{
    if (std::strcmp(isa, "avx512f") == 0)
        return 3;
    if (std::strcmp(isa, "avx2") == 0)
        return 2;
    if (std::strcmp(isa, "sse2") == 0 || std::strcmp(isa, "neon") == 0)
        return 1;
    return 0;
}

// Can the host CPU execute a table of this ISA?  The baseline is
// always runnable (the binary could not have started otherwise); the
// x86 extensions are CPUID-gated.
bool
cpuRunnable(const char *isa)
{
    if (std::strcmp(isa, kKernelTable.isa) == 0)
        return true;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
    if (std::strcmp(isa, "avx512f") == 0)
        return __builtin_cpu_supports("avx512f") != 0;
    if (std::strcmp(isa, "avx2") == 0)
        return __builtin_cpu_supports("avx2") != 0;
#endif
    return false;
}

// The per-ISA tables this binary carries (nullptr when compiled out).
// Explicit accessor calls, so the static-library link always pulls the
// kernel TUs in.
constexpr size_t kNumIsaTables = 2;

void
isaTables(const KernelTable *out[kNumIsaTables])
{
    out[0] = detail::avx2KernelTable();
    out[1] = detail::avx512KernelTable();
}

} // namespace

const KernelTable &
activeKernels()
{
    // Selected once, on first use (magic-static; thread-safe).
    static const KernelTable *const selected = [] {
        const KernelTable *best = &kKernelTable;
        int bestRank = isaRank(best->isa);
        const KernelTable *tables[kNumIsaTables];
        isaTables(tables);
        for (const KernelTable *t : tables) {
            if (t == nullptr || !cpuRunnable(t->isa))
                continue;
            int rank = isaRank(t->isa);
            if (rank > bestRank) {
                best = t;
                bestRank = rank;
            }
        }
        return best;
    }();
    return *selected;
}

const char *
activeIsaName()
{
    return activeKernels().isa;
}

size_t
runnableKernelTables(const KernelTable **out, size_t maxOut)
{
    size_t n = 0;
    auto push = [&](const KernelTable *t) {
        for (size_t i = 0; i < n; ++i)
            if (std::strcmp(out[i]->isa, t->isa) == 0)
                return;
        if (n < maxOut)
            out[n++] = t;
    };
    push(&kKernelTable);
    const KernelTable *tables[kNumIsaTables];
    isaTables(tables);
    for (const KernelTable *t : tables)
        if (t != nullptr && cpuRunnable(t->isa))
            push(t);
    return n;
}

} // namespace simd
} // namespace reason
