/**
 * @file
 * LINC-style logical reasoning (Table I): a first-order theory is
 * clausified, grounded over a finite domain into propositional CNF, and
 * entailment queries are answered by refutation — in software and on
 * the REASON symbolic engine.  A resolution prover answers the same
 * query directly at the first-order level.
 */

#include <cstdio>

#include "arch/symbolic.h"
#include "logic/fol.h"
#include "logic/solver.h"

using namespace reason;
using namespace reason::logic;

int
main()
{
    using F = FolFormula;
    auto V = [](const char *n) { return Term::var(n); };
    auto C = [](const char *n) { return Term::constant(n); };

    // A small FOLIO-style theory about a research lab.
    std::vector<FolPtr> axioms = {
        // Every professor supervises some student.
        F::forall("x", F::implies(
                           F::pred("Professor", {V("x")}),
                           F::exists("y", F::land(
                                              F::pred("Student",
                                                      {V("y")}),
                                              F::pred("Supervises",
                                                      {V("x"),
                                                       V("y")}))))),
        // Supervised students publish.
        F::forall(
            "x",
            F::forall(
                "y",
                F::implies(F::land(F::pred("Supervises",
                                           {V("x"), V("y")}),
                                   F::pred("Student", {V("y")})),
                           F::pred("Publishes", {V("y")})))),
        F::pred("Professor", {C("ada")}),
        // Grounded witness facts for the finite-domain SAT route.
        F::pred("Student", {C("bob")}),
        F::pred("Supervises", {C("ada"), C("bob")}),
    };
    FolPtr goal = F::pred("Publishes", {C("bob")});

    std::printf("axioms:\n");
    for (const auto &a : axioms)
        std::printf("  %s\n", a->toString().c_str());
    std::printf("goal: %s\n\n", goal->toString().c_str());

    // Route 1: resolution refutation at the first-order level.
    ResolutionResult res = resolutionProve(axioms, goal);
    std::printf("resolution prover: %s (%llu steps, %llu clauses)\n",
                res.proved ? "PROVED" : "not proved",
                static_cast<unsigned long long>(res.resolutionSteps),
                static_cast<unsigned long long>(res.generatedClauses));

    // Route 2: ground to SAT and refute on the accelerator.  Only the
    // function-free axioms participate (the grounder's documented
    // limitation); they are sufficient for this entailment.
    std::vector<FolPtr> ground_axioms = {axioms[1], axioms[2],
                                         axioms[3], axioms[4]};
    auto clauses = clausify(ground_axioms);
    auto negated = clausify(F::lnot(goal));
    clauses.insert(clauses.end(), negated.begin(), negated.end());
    Grounder grounder({"ada", "bob"});
    CnfFormula cnf = grounder.ground(clauses);
    std::printf("\ngrounded CNF: %u atoms, %zu clauses\n",
                cnf.numVars(), cnf.numClauses());

    SolveResult sw = solveCnf(cnf);
    arch::ArchConfig cfg;
    arch::SymbolicTiming hw = arch::solveOnAccelerator(cnf, cfg, 2);
    std::printf("software refutation : %s\n",
                sw == SolveResult::Unsat ? "UNSAT (goal entailed)"
                                         : "SAT (not entailed)");
    std::printf("REASON refutation   : %s in %llu cycles (%.2f us)\n",
                hw.result == SolveResult::Unsat
                    ? "UNSAT (goal entailed)"
                    : "SAT (not entailed)",
                static_cast<unsigned long long>(hw.cycles),
                hw.seconds * 1e6);
    std::printf("\nconclusion: %s\n",
                (res.proved && sw == SolveResult::Unsat)
                    ? "bob publishes."
                    : "entailment undetermined");
    return 0;
}
