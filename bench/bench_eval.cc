/**
 * @file
 * Seed-vs-flat evaluation benchmark: times repeated Circuit
 * log-likelihood passes on a >=100k-node random circuit through the
 * reference AoS walker (Circuit::logLikelihood, one allocation per
 * call), the serial flat CSR engine (pc::CircuitEvaluator,
 * allocation-free batched), and the thread-parallel wavefront engine
 * (same evaluator over a multi-worker pool, bit-identical results),
 * plus the linear-domain Dag-vs-core::Evaluator pair.
 *
 * Emits one machine-readable JSON line per engine pair (prefix
 * "BENCH_JSON ", with compiler/flags provenance) so the perf
 * trajectory can be tracked across PRs:
 *
 *   ./bench_eval [num_vars] [reps] [--threads N] [--repeats N]
 *
 * --threads N   worker count of the threaded variant (default:
 *               hardware concurrency; 1 skips the threaded section).
 * --repeats N   same as the positional reps argument.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/builders.h"
#include "core/flat.h"
#include "pc/flat_pc.h"
#include "pc/pc.h"
#include "util/numeric.h"
#include "util/parallel.h"
#include "util/rng.h"

using namespace reason;
using Clock = std::chrono::steady_clock;

#ifndef REASON_BUILD_FLAGS
#define REASON_BUILD_FLAGS "unknown"
#endif
#ifndef REASON_BUILD_TYPE
#define REASON_BUILD_TYPE "unknown"
#endif

namespace {

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

const char *
compilerName()
{
#if defined(__clang__)
    return "clang++ " __VERSION__;
#elif defined(__GNUC__)
    return "g++ " __VERSION__;
#else
    return "unknown " __VERSION__;
#endif
}

int
usageError()
{
    std::fprintf(stderr, "usage: bench_eval [num_vars >= 2] [reps >= 1] "
                         "[--threads N] [--repeats N]\n");
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    uint32_t num_vars = 1500;
    size_t reps = 1000;
    unsigned threads = std::thread::hardware_concurrency();
    if (threads == 0)
        threads = 1;

    size_t positional = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            if (!util::parseThreadCount(argv[++i], &threads))
                return usageError();
        } else if (std::strcmp(argv[i], "--repeats") == 0 &&
                   i + 1 < argc) {
            reps = size_t(std::atoll(argv[++i]));
        } else if (argv[i][0] == '-') {
            return usageError();
        } else if (positional == 0) {
            num_vars = uint32_t(std::atoi(argv[i]));
            ++positional;
        } else if (positional == 1) {
            reps = size_t(std::atoll(argv[i]));
            ++positional;
        } else {
            return usageError();
        }
    }
    if (threads == 0) { // --threads 0 = hardware concurrency
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    if (num_vars < 2 || reps == 0)
        return usageError();

    const char *provenance_fmt =
        ",\"compiler\":\"%s\",\"flags\":\"%s\",\"build\":\"%s\"";
    char provenance[512];
    std::snprintf(provenance, sizeof provenance, provenance_fmt,
                  compilerName(), REASON_BUILD_FLAGS, REASON_BUILD_TYPE);

    Rng rng(2026);
    // num_sums=8, num_inputs=16 yields ~72 interior nodes per region:
    // 1500 vars -> ~120k nodes, ~380k edges.
    pc::Circuit circuit = pc::randomCircuit(rng, num_vars, 2, 8, 16);
    std::printf("circuit: %zu nodes, %zu edges, %u vars\n",
                circuit.numNodes(), circuit.numEdges(),
                circuit.numVars());

    std::vector<pc::Assignment> data =
        pc::sampleDataset(rng, circuit, reps);

    // The serial baseline must stay serial regardless of the global
    // pool, so every "flat" engine below gets an explicit 1-thread pool.
    util::ThreadPool serial_pool(1);

    // --- log-domain: Circuit::logLikelihood vs flat batched ------------
    double sink = 0.0;
    // Warm-up both paths (page in the circuit, prime caches).
    sink += circuit.logLikelihood(data[0]);

    Clock::time_point t0 = Clock::now();
    pc::FlatCircuit flat(circuit);
    pc::CircuitEvaluator eval(flat, &serial_pool);
    double lower_ms = msSince(t0);
    sink += eval.logLikelihood(data[0]);

    t0 = Clock::now();
    double seed_acc = 0.0;
    for (const auto &x : data)
        seed_acc += circuit.logLikelihood(x);
    double seed_ms = msSince(t0);

    std::vector<double> flat_ll(data.size());
    t0 = Clock::now();
    eval.logLikelihoodBatch(data, flat_ll);
    double flat_ms = msSince(t0);

    double flat_acc = 0.0;
    double max_diff = 0.0;
    for (size_t i = 0; i < data.size(); ++i) {
        flat_acc += flat_ll[i];
        double d = std::fabs(flat_ll[i] -
                             circuit.logLikelihood(data[i]));
        max_diff = std::max(max_diff, d);
    }
    double speedup = seed_ms / (flat_ms + lower_ms);
    std::printf("BENCH_JSON {\"bench\":\"bench_eval\",\"engine\":"
                "\"circuit_loglik\",\"nodes\":%zu,\"edges\":%zu,"
                "\"reps\":%zu,\"seed_ms\":%.3f,\"flat_ms\":%.3f,"
                "\"lower_ms\":%.3f,\"speedup\":%.2f,"
                "\"max_abs_diff\":%.3e%s}\n",
                circuit.numNodes(), circuit.numEdges(), reps, seed_ms,
                flat_ms, lower_ms, speedup, max_diff, provenance);
    std::printf("seed %.3f ms, flat %.3f ms (+%.3f ms lowering): "
                "%.2fx %s (target >=5x), max |diff| %.2e\n",
                seed_ms, flat_ms, lower_ms, speedup,
                speedup >= 5.0 ? "PASS" : "BELOW TARGET", max_diff);

    // --- threaded wavefront variant ------------------------------------
    if (threads > 1) {
        util::ThreadPool mt_pool(threads);
        pc::CircuitEvaluator mt_eval(flat, &mt_pool);
        std::vector<double> mt_ll(data.size());
        mt_eval.logLikelihoodBatch(data, mt_ll); // warm per-worker scratch
        t0 = Clock::now();
        mt_eval.logLikelihoodBatch(data, mt_ll);
        double mt_ms = msSince(t0);

        // The wavefront engine must be *bit-identical* to serial flat.
        size_t mismatches = 0;
        for (size_t i = 0; i < data.size(); ++i)
            if (mt_ll[i] != flat_ll[i])
                ++mismatches;
        double mt_speedup = flat_ms / mt_ms;
        std::printf("BENCH_JSON {\"bench\":\"bench_eval\",\"engine\":"
                    "\"circuit_loglik_mt\",\"nodes\":%zu,\"edges\":%zu,"
                    "\"reps\":%zu,\"threads\":%u,\"flat_ms\":%.3f,"
                    "\"mt_ms\":%.3f,\"speedup_vs_flat\":%.2f,"
                    "\"bitwise_mismatches\":%zu%s}\n",
                    circuit.numNodes(), circuit.numEdges(), reps,
                    threads, flat_ms, mt_ms, mt_speedup, mismatches,
                    provenance);
        std::printf("threaded (%u workers): %.3f ms vs serial flat "
                    "%.3f ms: %.2fx %s (target >=2x with >=4 threads), "
                    "%zu bitwise mismatches\n",
                    threads, mt_ms, flat_ms, mt_speedup,
                    mt_speedup >= 2.0 ? "PASS" : "BELOW TARGET",
                    mismatches);
    } else {
        std::printf("threaded section skipped (1 worker)\n");
    }

    // --- linear domain: Dag::evaluate vs core::Evaluator ---------------
    core::Dag dag = core::buildFromCircuit(circuit);
    const size_t dag_reps = reps / 4 ? reps / 4 : 1;
    std::vector<double> inputs(dag.numInputs(), 1.0);

    sink += dag.evaluateRoot(inputs);
    t0 = Clock::now();
    double dag_acc = 0.0;
    for (size_t i = 0; i < dag_reps; ++i) {
        inputs[i % inputs.size()] = 0.5 + double(i % 3) * 0.25;
        dag_acc += dag.evaluateRoot(inputs);
    }
    double dag_seed_ms = msSince(t0);

    t0 = Clock::now();
    core::FlatGraph fg = core::lowerDag(dag);
    core::Evaluator fev(fg, &serial_pool);
    double dag_lower_ms = msSince(t0);
    sink += fev.evaluateRoot(inputs);

    std::fill(inputs.begin(), inputs.end(), 1.0);
    t0 = Clock::now();
    double dag_flat_acc = 0.0;
    for (size_t i = 0; i < dag_reps; ++i) {
        inputs[i % inputs.size()] = 0.5 + double(i % 3) * 0.25;
        dag_flat_acc += fev.evaluateRoot(inputs);
    }
    double dag_flat_ms = msSince(t0);
    double dag_speedup = dag_seed_ms / (dag_flat_ms + dag_lower_ms);
    std::printf("BENCH_JSON {\"bench\":\"bench_eval\",\"engine\":"
                "\"dag_eval\",\"nodes\":%zu,\"edges\":%zu,\"reps\":%zu,"
                "\"seed_ms\":%.3f,\"flat_ms\":%.3f,\"lower_ms\":%.3f,"
                "\"speedup\":%.2f,\"max_abs_diff\":%.3e%s}\n",
                dag.numNodes(), dag.numEdges(), dag_reps, dag_seed_ms,
                dag_flat_ms, dag_lower_ms, dag_speedup,
                std::fabs(dag_acc - dag_flat_acc), provenance);
    std::printf("dag: seed %.3f ms, flat %.3f ms: %.2fx\n", dag_seed_ms,
                dag_flat_ms, dag_speedup);

    (void)sink;
    (void)seed_acc;
    (void)flat_acc;
    return 0;
}
