#include "sys/reason_api.h"

#include <cstring>

#include "util/logging.h"
#include "util/parallel.h"

namespace reason {
namespace sys {

namespace {

ServeOptions
serveOptionsFrom(const RuntimeOptions &options)
{
    ServeOptions serve;
    serve.maxBatch = options.maxBatch;
    serve.maxCoalesceWindowUs = options.maxCoalesceWindowUs;
    serve.serveThreads = options.serveThreads;
    serve.dispatchers = options.dispatchers;
    serve.queueCapacity = options.queueCapacity;
    serve.queuePolicy = options.queuePolicy;
    serve.autoLingerWindow = options.autoLingerWindow;
    serve.pinThreads = options.pinThreads;
    return serve;
}

} // namespace

ReasonRuntime::ReasonRuntime(const arch::ArchConfig &config,
                             compiler::Program program)
    : session_(engine_.createSession(config, std::move(program)))
{
}

ReasonRuntime::ReasonRuntime(const arch::ArchConfig &config,
                             compiler::Program program,
                             const RuntimeOptions &options)
    : engine_(serveOptionsFrom(options)),
      session_(engine_.createSession(config, std::move(program)))
{
    if (options.evalThreads > 0)
        util::setGlobalThreads(options.evalThreads);
    if (options.learnShards != 0 ||
        options.learnReduction != LearnReduction::Inherit) {
        util::ReductionPolicy policy = util::reductionPolicy();
        if (options.learnShards != 0)
            policy.shards = options.learnShards;
        if (options.learnReduction != LearnReduction::Inherit)
            policy.deterministic =
                options.learnReduction == LearnReduction::Deterministic;
        util::setReductionPolicy(policy);
    }
}

int
ReasonRuntime::REASON_execute(int batch_id, int batch_size,
                              const void *neural_buffer,
                              const void *reasoning_mode,
                              void *symbolic_buffer)
{
    if (batch_size <= 0)
        return REASON_ERR_BAD_BATCH;
    if (neural_buffer == nullptr || symbolic_buffer == nullptr)
        return REASON_ERR_NULL_BUFFER;
    int mode = REASON_MODE_PROBABILISTIC;
    if (reasoning_mode)
        std::memcpy(&mode, reasoning_mode, sizeof(int));
    if (mode < REASON_MODE_PROBABILISTIC || mode > REASON_MODE_SPMSPM)
        return REASON_ERR_BAD_MODE;
    if (completion_.count(batch_id))
        return REASON_ERR_DUPLICATE_BATCH;

    const double *in = static_cast<const double *>(neural_buffer);
    double *out = static_cast<double *>(symbolic_buffer);

    // Host raised neural_ready before calling (Sec. VI-B).
    shm_.neuralReady = true;
    shm_.symbolicReady = false;

    // Listing-1 is synchronous: one submission, one blocking wait.
    std::shared_ptr<const Request> request =
        session_.wait(session_.submitProgram(batch_size, in, mode));
    if (request->error != REASON_OK)
        return request->error;

    std::memcpy(out, request->outputs.data(),
                request->outputs.size() * sizeof(double));
    results_[batch_id] = request->exec;
    completion_[batch_id] = now_ + request->execCycles;
    now_ += request->execCycles;

    shm_.neuralReady = false;
    shm_.symbolicReady = true;
    shm_.symbolicBuffer.assign(out, out + batch_size);
    return REASON_OK;
}

int
ReasonRuntime::REASON_check_status(int batch_id, bool blocking)
{
    auto it = completion_.find(batch_id);
    if (it == completion_.end())
        return REASON_IDLE; // never launched: nothing in flight
    if (now_ >= it->second)
        return REASON_IDLE;
    if (blocking) {
        now_ = it->second;
        return REASON_IDLE;
    }
    return REASON_EXECUTION;
}

} // namespace sys
} // namespace reason
