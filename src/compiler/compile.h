/**
 * @file
 * The four-step flat-graph-to-hardware compiler (REASON Sec. V-C).
 *
 * The compiler consumes the flat CSR substrate directly
 * (core::FlatGraph — the same lowering the CPU engine executes), so
 * program generation shares one representation with evaluation instead
 * of round-tripping through the heap `Dag`; the `Dag` overload is a
 * thin regularize-and-lower shim kept for callers that still build
 * pointer graphs.  The steps:
 *
 *   Step 1  Block decomposition — greedy extraction of depth-bounded
 *           subtrees ("blocks") that issue as single tree instructions.
 *           Unary modifiers (Not, weight scaling) are folded into leaf
 *           affine transforms; weighted edges are pushed into fused
 *           subtrees where algebra allows (selective replication of
 *           cheap unary work).
 *   Step 2  PE and register-bank mapping — blocks are assigned to PEs by
 *           dependence level; each PE owns one output bank
 *           (one-bank-one-PE), external inputs are spread across the
 *           remaining banks conflict-aware.
 *   Step 3  Tree mapping — fused op subtrees are placed onto the physical
 *           node grid with pass-through routing for short paths.
 *   Step 4  Reordering — pipeline-aware list scheduling that spaces
 *           dependent blocks by the tree pipeline latency and interleaves
 *           independent work.
 */

#ifndef REASON_COMPILER_COMPILE_H
#define REASON_COMPILER_COMPILE_H

#include "compiler/program.h"
#include "core/dag.h"
#include "core/flat.h"

namespace reason {
namespace compiler {

/** Hardware template parameters the compiler targets. */
struct TargetConfig
{
    uint32_t treeDepth = 3;   ///< D: levels of compute nodes
    uint32_t numPes = 12;
    uint32_t numBanks = 64;   ///< B
    uint32_t regsPerBank = 32; ///< R
    /** Cycles from issue to result visibility (route + D levels + WB). */
    uint32_t pipelineLatency() const { return treeDepth + 3; }
};

/**
 * Compile a flat graph to a REASON program.  The graph must be in
 * two-input form (every fan-in <= 2 — regularize the source before
 * lowering); the emitted program's simulated execution yields exactly
 * the flat Evaluator's root value for any input vector.
 */
Program compile(const core::FlatGraph &graph,
                const TargetConfig &target = {});

/**
 * Dag convenience overload: regularizes to two-input form if needed,
 * lowers to flat CSR (core::lowerDag), and delegates to the FlatGraph
 * compiler.  Emitted programs are identical to lowering first and
 * calling the flat overload directly.
 */
Program compile(const core::Dag &dag, const TargetConfig &target = {});

} // namespace compiler
} // namespace reason

#endif // REASON_COMPILER_COMPILE_H
