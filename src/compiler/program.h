/**
 * @file
 * Compiled-program representation for the REASON accelerator: the VLIW
 * schedule the four-step compiler (Sec. V-C) emits and the cycle-accurate
 * simulator (src/arch) executes.
 *
 * A regularized DAG is decomposed into *blocks*: subtrees of depth at
 * most the hardware tree depth D.  One block issues to one tree PE as a
 * single VLIW instruction; leaf slots read operands from register banks
 * through the Benes crossbar (or immediates), interior tree nodes apply
 * per-node opcodes, and the root writes the block result to the PE's
 * output bank at an address generated automatically in hardware.
 */

#ifndef REASON_COMPILER_PROGRAM_H
#define REASON_COMPILER_PROGRAM_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/dag.h"

namespace reason {
namespace compiler {

/** Per-tree-node operation, applied to the two child values. */
enum class TreeOp : uint8_t
{
    Add,      ///< left + right
    Mul,      ///< left * right
    Max,      ///< max(left, right)
    Min,      ///< min(left, right)
    PassLeft, ///< forward left child (node unused on the right)
    Nop       ///< node unused entirely
};

const char *treeOpName(TreeOp op);

/**
 * Where a leaf operand comes from and how the leaf transforms it.
 *
 * The leaf datapath (Fig. 6(d): multiplier + adder) computes a*x + b on
 * the fetched value x.  This single form covers plain operands (a=1,b=0),
 * weighted-sum edges (a=w), logical negation 1-x (a=-1,b=1), and pure
 * constants (fetch=false, value=b).
 */
struct OperandRef
{
    /** True when the slot is active. */
    bool valid = false;
    /** True when a register-bank read is performed. */
    bool fetch = false;
    /** Register-bank source, meaningful when fetch. */
    uint16_t bank = 0;
    uint16_t reg = 0;
    /** Affine transform applied by the leaf: a*x + b. */
    double a = 1.0;
    double b = 0.0;
};

/** Destination of a block result. */
struct DestRef
{
    uint16_t bank = 0;
    uint16_t reg = 0;
};

/**
 * One block = one VLIW tree instruction.
 * nodeOps is stored level by level from the leaves upward: for a depth-D
 * tree, level 0 has 2^(D-1) nodes combining leaf pairs, level D-1 has the
 * root.
 */
struct Block
{
    std::vector<OperandRef> operands; ///< size = 2^D leaf slots
    std::vector<TreeOp> nodeOps;      ///< size = 2^D - 1
    DestRef dest;
    /** DAG node whose value this block materializes. */
    core::NodeId dagRoot = core::kInvalidNode;
    /** Number of DAG op nodes fused into this block. */
    uint32_t fusedNodes = 0;
    /** Dependence: blocks whose results feed this block's operands. */
    std::vector<uint32_t> depends;
};

/** A scheduled issue slot: (cycle, pe) -> block. */
struct IssueSlot
{
    uint64_t cycle = 0;
    uint32_t pe = 0;
    uint32_t block = 0;
};

/** Where each external DAG input is pre-loaded before execution. */
struct InputPlacement
{
    uint32_t inputTag = 0; ///< DAG input slot
    uint16_t bank = 0;
    uint16_t reg = 0;
};

/** Compiler statistics (consumed by ablation benches). */
struct CompileStats
{
    size_t numBlocks = 0;
    size_t fusedNodes = 0;
    size_t replicatedNodes = 0;
    size_t spillValues = 0;
    size_t scheduleLength = 0; ///< issue cycles (before simulation)
    double avgLeafUtilization = 0.0;
    size_t bankConflictsAvoided = 0;
};

/**
 * A complete compiled program: input placements, block list, and the
 * pipeline-aware issue schedule.
 */
struct Program
{
    uint32_t treeDepth = 3;
    uint32_t numPes = 12;
    uint32_t numBanks = 64;
    uint32_t regsPerBank = 32;

    std::vector<InputPlacement> inputs;
    std::vector<Block> blocks;
    std::vector<IssueSlot> schedule;
    /** Block whose value is the DAG root. */
    uint32_t rootBlock = 0;
    CompileStats stats;

    size_t leavesPerPe() const { return size_t(1) << treeDepth; }
    size_t nodesPerPe() const { return (size_t(1) << treeDepth) - 1; }

    std::string toString() const;
};

} // namespace compiler
} // namespace reason

#endif // REASON_COMPILER_PROGRAM_H
