/**
 * @file
 * Symbolic-mode execution of the REASON fabric (Sec. V-D/V-E): the
 * cycle-stepped Boolean-constraint-propagation pipeline with hardware
 * watch lists, BCP FIFO, SRAM residency and DMA (Fig. 9), plus the
 * cube-and-conquer solver driver that distributes CDCL conquer work over
 * the tree PEs.
 */

#ifndef REASON_ARCH_SYMBOLIC_H
#define REASON_ARCH_SYMBOLIC_H

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/config.h"
#include "arch/memory.h"
#include "logic/cnf.h"
#include "logic/dpll.h"
#include "logic/solver.h"
#include "util/stats.h"

namespace reason {
namespace arch {

/** One event in the Fig. 9-style pipeline trace. */
struct TraceEvent
{
    uint64_t cycle = 0;
    std::string unit;   ///< "broadcast", "reduce", "fifo", "wl", "dma",
                        ///< "control", "conflict"
    std::string detail;
};

/** Outcome of one BCP episode (propagating one decision to fixpoint). */
struct BcpResult
{
    /** Implied literals in propagation order. */
    std::vector<logic::Lit> implications;
    /** True when propagation derived a conflict. */
    bool conflict = false;
    /** Cycles consumed by this episode. */
    uint64_t cycles = 0;
    std::vector<TraceEvent> trace;
};

/**
 * Cycle-stepped BCP pipeline: executes real two-watched-literal unit
 * propagation over a CNF while modeling the distribution-tree broadcast,
 * leaf watch-list lookups (with SRAM residency and DMA on miss), the
 * implication FIFO, the reduction tree, and priority conflict handling
 * (FIFO flush + DMA cancel).
 *
 * Functional output (implication set, conflict detection) matches
 * software unit propagation exactly; tests rely on this.
 */
class BcpPipeline
{
  public:
    BcpPipeline(const logic::CnfFormula &formula,
                const ArchConfig &config);
    ~BcpPipeline();

    /**
     * Assign a decision literal and propagate to fixpoint.
     * @param record_trace collect per-cycle TraceEvents (small runs).
     */
    BcpResult decide(logic::Lit decision, bool record_trace = false);

    /** Undo everything back to an empty assignment. */
    void reset();

    /** Current value of a variable. */
    logic::LBool value(uint32_t var) const { return assigns_[var]; }

    /** Aggregate hardware counters across all episodes. */
    const StatGroup &events() const { return events_; }
    const BcpFifo &fifo() const { return fifo_; }
    const ClauseSram &sram() const { return sram_; }
    const WatchListUnit &watchUnit() const { return wl_; }
    /** DRAM timing model behind clause misses; null in legacy mode. */
    const DramModel *dram() const { return dram_.get(); }
    uint64_t totalCycles() const { return now_; }

  private:
    logic::LBool litValue(logic::Lit l) const;
    void assign(logic::Lit l);
    /**
     * Process one literal becoming false: traverse its watch list,
     * relocate watches, emit implications / detect conflict.
     */
    void processFalsified(logic::Lit p, BcpResult &res,
                          bool record_trace);
    size_t clauseBytes(uint32_t idx) const;

    const logic::CnfFormula &formula_;
    ArchConfig config_;
    std::vector<logic::Clause> clauses_;
    std::vector<std::array<logic::Lit, 2>> watched_;
    /** DRAM byte address of each clause (prefix sums of clauseBytes). */
    std::vector<uint64_t> clauseAddr_;
    WatchListUnit wl_;
    ClauseSram sram_;
    BcpFifo fifo_;
    std::unique_ptr<DramModel> dram_; ///< when config_.dramModelEnabled
    DmaEngine dma_;
    std::vector<logic::LBool> assigns_;
    std::vector<logic::Lit> trail_;
    uint64_t now_ = 0;
    StatGroup events_;
};

/** Cycle- and energy-relevant totals for a full symbolic solve. */
struct SymbolicTiming
{
    logic::SolveResult result = logic::SolveResult::Unknown;
    uint64_t cycles = 0;
    double seconds = 0.0;
    /** Per-PE busy cycles (cube conquer distribution). */
    std::vector<uint64_t> peBusyCycles;
    /** Search-effort statistics aggregated over all cubes. */
    logic::SolverStats aggregate;
    StatGroup events;
    double peUtilization = 0.0;
};

/**
 * Full symbolic solve on the accelerator: lookahead cube generation on
 * the scalar PE, conquer CDCL instances distributed across the tree PEs
 * (longest-processing-time assignment), cycles charged per hardware
 * event via the component models.
 */
SymbolicTiming solveOnAccelerator(const logic::CnfFormula &formula,
                                  const ArchConfig &config,
                                  uint32_t cube_depth = 4);

/**
 * Analytic event-to-cycle mapping for a software-measured CDCL run
 * (used by the large benches where full pipeline simulation is not
 * needed).  Mirrors the per-event charges of solveOnAccelerator.
 */
uint64_t estimateCdclCycles(const logic::SolverStats &stats,
                            size_t clause_db_bytes,
                            const ArchConfig &config);

} // namespace arch
} // namespace reason

#endif // REASON_ARCH_SYMBOLIC_H
