#include "hmm/constrained.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/numeric.h"

namespace reason {
namespace hmm {

bool
DecodeConstraints::admits(uint32_t t, uint32_t s) const
{
    for (auto [pos, state] : required)
        if (pos == t && state != s)
            return false;
    for (auto [pos, state] : forbidden)
        if (pos == t && state == s)
            return false;
    return true;
}

void
DecodeConstraints::validate(uint32_t num_states, size_t length) const
{
    for (auto [pos, state] : required) {
        if (pos >= length)
            fatal("required constraint at position %u beyond length %zu",
                  pos, length);
        if (state >= num_states)
            fatal("required constraint state %u out of range", state);
        for (auto [pos2, state2] : required)
            if (pos2 == pos && state2 != state)
                fatal("contradictory required states at position %u", pos);
        for (auto [pos2, state2] : forbidden)
            if (pos2 == pos && state2 == state)
                fatal("state %u both required and forbidden at %u", state,
                      pos);
    }
    for (auto [pos, state] : forbidden) {
        if (pos >= length)
            fatal("forbidden constraint at position %u beyond length %zu",
                  pos, length);
        if (state >= num_states)
            fatal("forbidden constraint state %u out of range", state);
    }
}

namespace {

/** log of a probability, mapping 0 to kLogZero without -inf warnings. */
double
logp(double p)
{
    return p > 0.0 ? std::log(p) : kLogZero;
}

} // namespace

ViterbiResult
constrainedViterbi(const Hmm &hmm, const Sequence &obs,
                   const DecodeConstraints &constraints)
{
    const uint32_t n = hmm.numStates();
    const size_t len = obs.size();
    ViterbiResult res;
    if (len == 0)
        return res;
    constraints.validate(n, len);

    std::vector<std::vector<double>> delta(
        len, std::vector<double>(n, kLogZero));
    std::vector<std::vector<uint32_t>> back(
        len, std::vector<uint32_t>(n, 0));

    for (uint32_t s = 0; s < n; ++s)
        if (constraints.admits(0, s))
            delta[0][s] = logp(hmm.initial(s)) +
                          logp(hmm.emission(s, obs[0]));

    for (size_t t = 1; t < len; ++t) {
        for (uint32_t s = 0; s < n; ++s) {
            if (!constraints.admits(uint32_t(t), s))
                continue;
            double best = kLogZero;
            uint32_t arg = 0;
            for (uint32_t prev = 0; prev < n; ++prev) {
                double cand =
                    delta[t - 1][prev] + logp(hmm.transition(prev, s));
                if (cand > best) {
                    best = cand;
                    arg = prev;
                }
            }
            if (best == kLogZero)
                continue;
            delta[t][s] = best + logp(hmm.emission(s, obs[t]));
            back[t][s] = arg;
        }
    }

    double best = kLogZero;
    uint32_t arg = 0;
    for (uint32_t s = 0; s < n; ++s) {
        if (delta[len - 1][s] > best) {
            best = delta[len - 1][s];
            arg = s;
        }
    }
    if (best == kLogZero) {
        res.logProb = kLogZero;
        return res;
    }
    res.logProb = best;
    res.path.resize(len);
    res.path[len - 1] = arg;
    for (size_t t = len - 1; t > 0; --t)
        res.path[t - 1] = back[t][res.path[t]];
    return res;
}

double
constrainedLogLikelihood(const Hmm &hmm, const Sequence &obs,
                         const DecodeConstraints &constraints)
{
    const uint32_t n = hmm.numStates();
    const size_t len = obs.size();
    if (len == 0)
        return 0.0;
    constraints.validate(n, len);

    std::vector<double> alpha(n, kLogZero);
    for (uint32_t s = 0; s < n; ++s)
        if (constraints.admits(0, s))
            alpha[s] = logp(hmm.initial(s)) +
                       logp(hmm.emission(s, obs[0]));

    std::vector<double> next(n);
    for (size_t t = 1; t < len; ++t) {
        std::fill(next.begin(), next.end(), kLogZero);
        for (uint32_t s = 0; s < n; ++s) {
            if (!constraints.admits(uint32_t(t), s))
                continue;
            double acc = kLogZero;
            for (uint32_t prev = 0; prev < n; ++prev) {
                if (alpha[prev] == kLogZero)
                    continue;
                acc = logAdd(acc,
                             alpha[prev] + logp(hmm.transition(prev, s)));
            }
            if (acc != kLogZero)
                next[s] = acc + logp(hmm.emission(s, obs[t]));
        }
        alpha.swap(next);
    }
    return logSumExp(alpha);
}

double
constraintSatisfactionProbability(const Hmm &hmm, const Sequence &obs,
                                  const DecodeConstraints &constraints)
{
    double constrained = constrainedLogLikelihood(hmm, obs, constraints);
    if (constrained == kLogZero)
        return 0.0;
    double total = sequenceLogLikelihood(hmm, obs);
    reasonAssert(total != kLogZero,
                 "observation sequence has zero probability");
    return std::exp(constrained - total);
}

std::vector<ViterbiResult>
kBestPaths(const Hmm &hmm, const Sequence &obs, uint32_t k)
{
    const uint32_t n = hmm.numStates();
    const size_t len = obs.size();
    std::vector<ViterbiResult> out;
    if (len == 0 || k == 0)
        return out;

    // List Viterbi: per (t, state), keep the k best (logprob, prev-state,
    // prev-rank) entries.
    struct Entry
    {
        double lp = kLogZero;
        uint32_t prev = 0;
        uint32_t prevRank = 0;
    };
    std::vector<std::vector<std::vector<Entry>>> lists(
        len, std::vector<std::vector<Entry>>(n));

    for (uint32_t s = 0; s < n; ++s) {
        double lp = logp(hmm.initial(s)) + logp(hmm.emission(s, obs[0]));
        if (lp != kLogZero)
            lists[0][s].push_back({lp, 0, 0});
    }

    std::vector<Entry> candidates;
    for (size_t t = 1; t < len; ++t) {
        for (uint32_t s = 0; s < n; ++s) {
            candidates.clear();
            double emit = logp(hmm.emission(s, obs[t]));
            if (emit == kLogZero)
                continue;
            for (uint32_t prev = 0; prev < n; ++prev) {
                double trans = logp(hmm.transition(prev, s));
                if (trans == kLogZero)
                    continue;
                const auto &plist = lists[t - 1][prev];
                for (uint32_t r = 0; r < plist.size(); ++r)
                    candidates.push_back(
                        {plist[r].lp + trans + emit, prev, r});
            }
            std::sort(candidates.begin(), candidates.end(),
                      [](const Entry &a, const Entry &b) {
                          return a.lp > b.lp;
                      });
            if (candidates.size() > k)
                candidates.resize(k);
            lists[t][s] = candidates;
        }
    }

    // Collect final entries across states, best first.
    struct Terminal
    {
        double lp;
        uint32_t state;
        uint32_t rank;
    };
    std::vector<Terminal> finals;
    for (uint32_t s = 0; s < n; ++s)
        for (uint32_t r = 0; r < lists[len - 1][s].size(); ++r)
            finals.push_back({lists[len - 1][s][r].lp, s, r});
    std::sort(finals.begin(), finals.end(),
              [](const Terminal &a, const Terminal &b) {
                  return a.lp > b.lp;
              });
    if (finals.size() > k)
        finals.resize(k);

    for (const Terminal &fin : finals) {
        ViterbiResult res;
        res.logProb = fin.lp;
        res.path.resize(len);
        uint32_t state = fin.state;
        uint32_t rank = fin.rank;
        for (size_t t = len; t-- > 0;) {
            res.path[t] = state;
            if (t > 0) {
                const Entry &e = lists[t][state][rank];
                state = e.prev;
                rank = e.prevRank;
            }
        }
        out.push_back(std::move(res));
    }
    return out;
}

std::vector<uint32_t>
posteriorDecode(const Hmm &hmm, const Sequence &obs)
{
    ForwardBackward fb = forwardBackward(hmm, obs);
    std::vector<uint32_t> path(obs.size(), 0);
    for (size_t t = 0; t < obs.size(); ++t) {
        const auto &row = fb.gamma[t];
        path[t] = uint32_t(
            std::max_element(row.begin(), row.end()) - row.begin());
    }
    return path;
}

} // namespace hmm
} // namespace reason
