#include "sys/wire.h"

#include <bit>
#include <cmath>
#include <cstring>

#include "sys/request_queue.h"

namespace reason {
namespace sys {
namespace wire {

namespace {

void
putU8(std::vector<uint8_t> &out, uint8_t v)
{
    out.push_back(v);
}

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    out.push_back(uint8_t(v));
    out.push_back(uint8_t(v >> 8));
    out.push_back(uint8_t(v >> 16));
    out.push_back(uint8_t(v >> 24));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    putU32(out, uint32_t(v));
    putU32(out, uint32_t(v >> 32));
}

uint32_t
getU32(const uint8_t *p)
{
    return uint32_t(p[0]) | uint32_t(p[1]) << 8 | uint32_t(p[2]) << 16 |
           uint32_t(p[3]) << 24;
}

uint64_t
getU64(const uint8_t *p)
{
    return uint64_t(getU32(p)) | uint64_t(getU32(p + 4)) << 32;
}

/**
 * Patch the length prefix once the frame body is known: frames are
 * encoded body-first into `out` with a 4-byte hole at `len_at`.
 */
void
patchLength(std::vector<uint8_t> &out, size_t len_at)
{
    const size_t body = out.size() - (len_at + 4);
    out[len_at + 0] = uint8_t(body);
    out[len_at + 1] = uint8_t(body >> 8);
    out[len_at + 2] = uint8_t(body >> 16);
    out[len_at + 3] = uint8_t(body >> 24);
}

size_t
beginFrame(std::vector<uint8_t> &out, FrameType type)
{
    const size_t len_at = out.size();
    putU32(out, 0); // patched by patchLength
    putU8(out, uint8_t(type));
    return len_at;
}

/** Bounded little-endian reader over one frame's payload. */
struct Reader
{
    const uint8_t *p;
    size_t left;

    bool
    u8(uint8_t *out)
    {
        if (left < 1)
            return false;
        *out = p[0];
        p += 1;
        left -= 1;
        return true;
    }

    bool
    u32(uint32_t *out)
    {
        if (left < 4)
            return false;
        *out = getU32(p);
        p += 4;
        left -= 4;
        return true;
    }

    bool
    u64(uint64_t *out)
    {
        if (left < 8)
            return false;
        *out = getU64(p);
        p += 8;
        left -= 8;
        return true;
    }
};

} // namespace

void
appendHello(std::vector<uint8_t> &out, uint32_t version,
            uint64_t clientId)
{
    const size_t at = beginFrame(out, FrameType::Hello);
    putU32(out, version);
    // The clientId field exists only from v3 on; encoding it under the
    // old version would produce a frame no v2 peer accepts.
    if (version >= 3)
        putU64(out, clientId);
    patchLength(out, at);
}

void
appendHelloAck(std::vector<uint8_t> &out, uint32_t version)
{
    const size_t at = beginFrame(out, FrameType::HelloAck);
    putU32(out, version);
    patchLength(out, at);
}

void
appendSubmit(std::vector<uint8_t> &out, const SubmitFrame &frame)
{
    const size_t at = beginFrame(out, FrameType::Submit);
    putU64(out, frame.id);
    putU32(out, frame.mode);
    // Raw double bits: NaN payloads and -0.0 must survive the round
    // trip bit-exactly so the server validates what the client sent.
    putU64(out, std::bit_cast<uint64_t>(frame.budget));
    putU64(out, frame.deadlineNs);
    putU32(out, uint32_t(frame.rows.size()));
    putU32(out, frame.numVars);
    for (const auto &row : frame.rows)
        for (uint32_t v : row)
            putU32(out, v);
    patchLength(out, at);
}

void
appendResult(std::vector<uint8_t> &out, const ResultFrame &frame)
{
    const size_t at = beginFrame(out, FrameType::Result);
    putU64(out, frame.id);
    putU32(out, uint32_t(frame.error));
    putU8(out, frame.tier);
    putU32(out, uint32_t(frame.values.size()));
    for (double v : frame.values)
        putU64(out, std::bit_cast<uint64_t>(v));
    if (frame.tier == 1)
        for (size_t i = 0; i < frame.values.size(); ++i) {
            putU64(out, std::bit_cast<uint64_t>(frame.boundLo[i]));
            putU64(out, std::bit_cast<uint64_t>(frame.boundHi[i]));
        }
    patchLength(out, at);
}

void
appendPing(std::vector<uint8_t> &out, uint64_t token)
{
    const size_t at = beginFrame(out, FrameType::Ping);
    putU64(out, token);
    patchLength(out, at);
}

void
appendPong(std::vector<uint8_t> &out, uint64_t token)
{
    const size_t at = beginFrame(out, FrameType::Pong);
    putU64(out, token);
    patchLength(out, at);
}

int
validateSubmit(const SubmitFrame &frame)
{
    if (frame.mode != uint32_t(REASON_MODE_PROBABILISTIC) &&
        frame.mode != uint32_t(REASON_MODE_APPROX))
        return REASON_ERR_BAD_MODE;
    // NaN fails the >= comparison; infinities are explicit.  The
    // exact mode must not smuggle a budget (a client bug, not a
    // quietly ignored field).
    if (!(frame.budget >= 0.0) || std::isinf(frame.budget))
        return REASON_ERR_BAD_BUDGET;
    if (frame.mode == uint32_t(REASON_MODE_PROBABILISTIC) &&
        frame.budget != 0.0)
        return REASON_ERR_BAD_BUDGET;
    return REASON_OK;
}

void
FrameDecoder::feed(const uint8_t *data, size_t n)
{
    // Compact the consumed prefix before growing, so a long-lived
    // connection does not accumulate every byte it ever received.
    if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= 4096)) {
        buf_.erase(buf_.begin(), buf_.begin() + long(pos_));
        pos_ = 0;
    }
    buf_.insert(buf_.end(), data, data + n);
}

FrameDecoder::Status
FrameDecoder::next(Frame *out)
{
    if (poisoned_)
        return Status::Malformed;
    const size_t avail = buf_.size() - pos_;
    if (avail < 4)
        return Status::NeedMore;
    const uint8_t *base = buf_.data() + pos_;
    const uint32_t length = getU32(base);
    if (length < 1 || length > kMaxFrameBytes) {
        poisoned_ = true;
        poisonReason_ = "length";
        return Status::Malformed;
    }
    if (avail < 4 + size_t(length))
        return Status::NeedMore;

    const uint8_t type = base[4];
    Reader r{base + 5, size_t(length) - 1};
    bool ok = false;
    // Which check failed, for poisonReason(): failed fixed-field reads
    // are truncation; size inconsistencies against declared counts are
    // shape violations.
    const char *reason = "truncation";
    switch (type) {
      case uint8_t(FrameType::Hello): {
        out->type = FrameType::Hello;
        out->helloClientId = 0;
        ok = r.u32(&out->helloVersion);
        if (ok && out->helloVersion >= 3) {
            // v3 adds the clientId.  Versions beyond ours may append
            // further fields — tolerate trailing bytes there, so the
            // server can still decode the version and answer the
            // mismatch instead of dropping the connection opaquely.
            ok = r.u64(&out->helloClientId);
            if (ok && out->helloVersion == 3 && r.left != 0) {
                ok = false;
                reason = "shape";
            }
        } else if (ok && r.left != 0) {
            ok = false;
            reason = "shape";
        }
        break;
      }
      case uint8_t(FrameType::HelloAck): {
        out->type = FrameType::HelloAck;
        ok = r.u32(&out->helloVersion);
        if (ok && r.left != 0) {
            ok = false;
            reason = "shape";
        }
        break;
      }
      case uint8_t(FrameType::Ping):
      case uint8_t(FrameType::Pong): {
        out->type = FrameType(type);
        ok = r.u64(&out->pingToken);
        if (ok && r.left != 0) {
            ok = false;
            reason = "shape";
        }
        break;
      }
      case uint8_t(FrameType::Submit): {
        out->type = FrameType::Submit;
        SubmitFrame &s = out->submit;
        s.rows.clear();
        uint32_t num_rows = 0;
        uint64_t budget_bits = 0;
        // mode, budget, and deadline are decoded structurally, never
        // validated here: unknown modes and garbage budgets are
        // *semantic* errors the server answers with an error Result
        // (validateSubmit), so one bad request cannot poison the
        // connection's framing.
        ok = r.u64(&s.id) && r.u32(&s.mode) && r.u64(&budget_bits) &&
             r.u64(&s.deadlineNs) && r.u32(&num_rows) &&
             r.u32(&s.numVars);
        s.budget = std::bit_cast<double>(budget_bits);
        // Validate the declared shape by dividing the remaining
        // payload, never by multiplying it out: the product form can
        // wrap 64 bits (2^31 x 2^31 x 4 == 0 mod 2^64), and
        // numVars == 0 would let any num_rows pass against an empty
        // payload — either way a tiny frame could drive the resize
        // below into a multi-gigabyte allocation.  r.left is bounded
        // by kMaxFrameBytes, so this also bounds the allocation.
        if (ok) {
            const size_t row_bytes = size_t(s.numVars) * 4;
            ok = row_bytes == 0
                     ? num_rows == 0 && r.left == 0
                     : r.left % row_bytes == 0 &&
                           size_t(num_rows) == r.left / row_bytes;
            if (!ok)
                reason = "shape";
        }
        if (ok) {
            s.rows.resize(num_rows);
            for (auto &row : s.rows) {
                row.resize(s.numVars);
                for (auto &v : row)
                    r.u32(&v);
            }
        }
        break;
      }
      case uint8_t(FrameType::Result): {
        out->type = FrameType::Result;
        ResultFrame &res = out->result;
        res.values.clear();
        res.boundLo.clear();
        res.boundHi.clear();
        uint32_t err = 0;
        uint32_t num_rows = 0;
        ok = r.u64(&res.id) && r.u32(&err) && r.u8(&res.tier) &&
             r.u32(&num_rows);
        res.error = int32_t(err);
        // The tier byte *is* framing — it decides the payload length
        // — so unlike Submit's mode it is validated here: values,
        // then (lo, hi) pairs when the approximate tier appended
        // bounds.  num_rows is bounded by kMaxFrameBytes / 8, so the
        // widest multiplier (24) cannot overflow size_t.
        if (ok && res.tier > 1) {
            ok = false;
            reason = "tier";
        }
        if (ok &&
            r.left != size_t(num_rows) * (res.tier == 1 ? 24 : 8)) {
            ok = false;
            reason = "shape";
        }
        if (ok) {
            res.values.resize(num_rows);
            for (auto &v : res.values) {
                uint64_t bits = 0;
                r.u64(&bits);
                v = std::bit_cast<double>(bits);
            }
            if (res.tier == 1) {
                res.boundLo.resize(num_rows);
                res.boundHi.resize(num_rows);
                for (uint32_t i = 0; i < num_rows; ++i) {
                    uint64_t lo = 0;
                    uint64_t hi = 0;
                    r.u64(&lo);
                    r.u64(&hi);
                    res.boundLo[i] = std::bit_cast<double>(lo);
                    res.boundHi[i] = std::bit_cast<double>(hi);
                }
            }
        }
        break;
      }
      default:
        reason = "type"; // unknown frame type
        break;
    }
    if (!ok) {
        poisoned_ = true;
        poisonReason_ = reason;
        return Status::Malformed;
    }
    pos_ += 4 + size_t(length);
    return Status::Ok;
}

uint64_t
fnv1a(const void *data, size_t n, uint64_t seed)
{
    uint64_t h = seed ? seed : 14695981039346656037ull;
    const uint8_t *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

uint64_t
checksumValues(const double *values, size_t n, uint64_t seed)
{
    uint64_t h = seed ? seed : 14695981039346656037ull;
    for (size_t i = 0; i < n; ++i) {
        const uint64_t bits = std::bit_cast<uint64_t>(values[i]);
        // Fold the little-endian byte order explicitly, so the
        // checksum matches across hosts (and the wire encoding).
        for (size_t b = 0; b < 8; ++b) {
            h ^= uint8_t(bits >> (8 * b));
            h *= 1099511628211ull;
        }
    }
    return h;
}

} // namespace wire
} // namespace sys
} // namespace reason
