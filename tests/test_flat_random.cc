/**
 * @file
 * Randomized differential tests: the flat CSR engines (upward
 * evaluation, batched likelihoods, reverse-wavefront derivatives, flow
 * accumulation, sharded dataset flows) must agree with the seed
 * reference walkers (Circuit::evaluate / logLikelihood,
 * pc::logDerivatives, pc::computeFlows) to <= 1e-10 over hundreds of
 * generated circuit structures, including degenerate single-child,
 * all-zero-weight, and shared-sub-DAG shapes (tests/random_circuit.h).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "pc/flat_pc.h"
#include "pc/flows.h"
#include "pc/pc.h"
#include "pc/queries.h"
#include "random_circuit.h"
#include "util/numeric.h"
#include "util/parallel.h"
#include "util/rng.h"

using namespace reason;

namespace {

constexpr int kNumCircuits = 200;
constexpr double kTol = 1e-10;

/** Agreement in the log domain: exact on -inf, <= kTol otherwise. */
::testing::AssertionResult
logNear(double got, double want)
{
    if (got == kLogZero && want == kLogZero)
        return ::testing::AssertionSuccess();
    if (got == kLogZero || want == kLogZero)
        return ::testing::AssertionFailure()
               << got << " vs " << want << " (one is log-zero)";
    if (std::fabs(got - want) > kTol)
        return ::testing::AssertionFailure()
               << got << " vs " << want << " (diff "
               << std::fabs(got - want) << ")";
    return ::testing::AssertionSuccess();
}

/** Seed-walker flow totals: computeFlows summed sample by sample. */
pc::EdgeFlows
referenceFlows(const pc::Circuit &c,
               const std::vector<pc::Assignment> &data)
{
    pc::EdgeFlows total;
    total.nodeFlows.assign(c.numNodes(), 0.0);
    total.flows.resize(c.numNodes());
    for (size_t i = 0; i < c.numNodes(); ++i)
        total.flows[i].assign(c.node(pc::NodeId(i)).children.size(),
                              0.0);
    for (const auto &x : data) {
        pc::EdgeFlows one = pc::computeFlows(c, x);
        for (size_t i = 0; i < c.numNodes(); ++i) {
            total.nodeFlows[i] += one.nodeFlows[i];
            for (size_t k = 0; k < total.flows[i].size(); ++k)
                total.flows[i][k] += one.flows[i][k];
        }
    }
    return total;
}

} // namespace

TEST(FlatRandomDifferential, LikelihoodsMatchSeedWalker)
{
    Rng rng(20260730);
    util::ThreadPool serial(1);
    for (int trial = 0; trial < kNumCircuits; ++trial) {
        pc::Circuit c = testutil::randomTestCircuit(rng);
        pc::FlatCircuit flat(c);
        pc::CircuitEvaluator eval(flat, &serial);

        // logZ = likelihood of the all-marginalized assignment.
        pc::Assignment all_missing(c.numVars(), pc::kMissing);
        EXPECT_TRUE(logNear(eval.logLikelihood(all_missing),
                            c.logLikelihood(all_missing)))
            << "trial " << trial << " (logZ)";

        // Per-node upward pass on partial assignments.
        auto xs = testutil::randomPartialAssignments(rng, c, 9, 0.3);
        for (const auto &x : xs) {
            std::vector<double> want = c.evaluate(x);
            std::span<const double> got = eval.evaluate(x);
            ASSERT_EQ(got.size(), want.size());
            for (size_t i = 0; i < want.size(); ++i)
                ASSERT_TRUE(logNear(got[i], want[i]))
                    << "trial " << trial << " node " << i;
        }

        // Batched path (full blocks plus scalar tail at 9 rows).
        std::vector<double> batch(xs.size());
        eval.logLikelihoodBatch(xs, batch);
        for (size_t i = 0; i < xs.size(); ++i)
            EXPECT_TRUE(logNear(batch[i], c.logLikelihood(xs[i])))
                << "trial " << trial << " batch row " << i;
    }
}

TEST(FlatRandomDifferential, DerivativesMatchSeedWalker)
{
    Rng rng(919);
    util::ThreadPool serial(1);
    util::ThreadPool parallel(4);
    for (int trial = 0; trial < kNumCircuits; ++trial) {
        pc::Circuit c = testutil::randomTestCircuit(rng);
        pc::FlatCircuit flat(c);
        pc::CircuitEvaluator eval(flat, &serial);
        auto xs = testutil::randomPartialAssignments(rng, c, 4, 0.35);
        std::vector<double> logd;
        std::vector<double> logd_mt;
        for (const auto &x : xs) {
            std::vector<double> want = pc::logDerivatives(c, x);
            std::span<const double> logv = eval.evaluate(x);
            pc::logDerivativesInto(flat, logv, logd, &serial);
            ASSERT_EQ(logd.size(), want.size());
            for (size_t i = 0; i < want.size(); ++i)
                ASSERT_TRUE(logNear(logd[i], want[i]))
                    << "trial " << trial << " node " << i;

            // The parallel reverse wavefront must agree with the
            // serial reverse-id gather bit for bit, structure by
            // structure.
            pc::logDerivativesInto(flat, logv, logd_mt, &parallel);
            for (size_t i = 0; i < logd.size(); ++i)
                ASSERT_EQ(std::bit_cast<uint64_t>(logd_mt[i]),
                          std::bit_cast<uint64_t>(logd[i]))
                    << "trial " << trial << " node " << i;
        }
    }
}

TEST(FlatRandomDifferential, EmFlowsMatchSeedWalker)
{
    Rng rng(7177);
    util::ThreadPool serial(1);
    for (int trial = 0; trial < kNumCircuits; ++trial) {
        pc::Circuit c = testutil::randomTestCircuit(rng);
        pc::FlatCircuit flat(c);
        auto data = testutil::randomPartialAssignments(rng, c, 10, 0.25);
        pc::EdgeFlows want = referenceFlows(c, data);

        pc::FlowAccumulator acc(flat, &serial);
        for (const auto &x : data)
            acc.add(x);
        // Sharded accumulation over the same data must agree too
        // (deterministic fixed shard count).
        pc::DatasetFlows sharded =
            pc::accumulateDatasetFlows(flat, data, {0, true}, &serial);
        EXPECT_EQ(sharded.count, data.size());

        for (size_t i = 0; i < c.numNodes(); ++i) {
            ASSERT_NEAR(acc.nodeFlow()[i], want.nodeFlows[i], kTol)
                << "trial " << trial << " node " << i;
            ASSERT_NEAR(sharded.nodeFlow[i], want.nodeFlows[i], kTol)
                << "trial " << trial << " node " << i;
            const uint32_t lo = flat.edgeOffset[i];
            for (size_t k = 0; k < want.flows[i].size(); ++k) {
                ASSERT_NEAR(acc.edgeFlow()[lo + k], want.flows[i][k],
                            kTol)
                    << "trial " << trial << " edge " << i << "/" << k;
                ASSERT_NEAR(sharded.edgeFlow[lo + k], want.flows[i][k],
                            kTol)
                    << "trial " << trial << " edge " << i << "/" << k;
            }
        }
    }
}
