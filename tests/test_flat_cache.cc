/**
 * @file
 * Unit tests for pc::cachedLowering's LRU cache: eviction at capacity,
 * same-bucket fingerprint conflicts (structurally distinct circuits at
 * one address), byte-equal circuits at distinct addresses, and
 * hit/miss/eviction counter correctness.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "pc/flat_cache.h"
#include "pc/flat_pc.h"
#include "pc/pc.h"
#include "util/parallel.h"
#include "util/rng.h"

using namespace reason;

namespace {

constexpr size_t kCacheCapacity = pc::kFlatCacheCapacity;

/** A small circuit whose leaf 0 distribution encodes `variant`. */
pc::Circuit
makeCircuit(uint32_t variant)
{
    pc::Circuit c(2, 2);
    double p = 0.1 + 0.8 * double(variant % 97) / 97.0;
    pc::NodeId l0 = c.addLeaf(0, {p, 1.0 - p});
    pc::NodeId l1 = c.addLeaf(1, {0.5, 0.5});
    c.markRoot(c.addProduct({l0, l1}));
    return c;
}

} // namespace

TEST(FlatCacheCounters, HitMissEvictionAccounting)
{
    pc::clearFlatCache();
    pc::Circuit c = makeCircuit(1);

    auto first = pc::cachedLowering(c);
    auto second = pc::cachedLowering(c);
    EXPECT_EQ(first.get(), second.get());
    pc::FlatCacheStats stats = pc::flatCacheStats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.evictions, 0u);

    // In-place parameter mutation: same bucket, new fingerprint.
    c.mutableNode(0).dist = {0.9, 0.1};
    auto third = pc::cachedLowering(c);
    EXPECT_NE(third.get(), first.get());
    stats = pc::flatCacheStats();
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.evictions, 0u);

    // clearFlatCache zeroes the counters.
    pc::clearFlatCache();
    stats = pc::flatCacheStats();
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.evictions, 0u);
}

TEST(FlatCacheLru, EvictsOldestAtCapacity)
{
    pc::clearFlatCache();
    // kCacheCapacity + 1 distinct circuits alive at distinct addresses.
    std::vector<std::unique_ptr<pc::Circuit>> circuits;
    std::vector<std::shared_ptr<const pc::FlatCircuit>> lowered;
    for (uint32_t i = 0; i < kCacheCapacity + 1; ++i) {
        circuits.push_back(
            std::make_unique<pc::Circuit>(makeCircuit(i)));
        lowered.push_back(pc::cachedLowering(*circuits.back()));
    }
    pc::FlatCacheStats stats = pc::flatCacheStats();
    EXPECT_EQ(stats.misses, kCacheCapacity + 1);
    EXPECT_EQ(stats.hits, 0u);
    // Inserting entry 17 evicted exactly one (the oldest: circuit 0).
    EXPECT_EQ(stats.evictions, 1u);

    // Circuit 0 was evicted: re-lowering misses (and evicts the next
    // oldest, circuit 1); the most recent entries still hit.
    auto again0 = pc::cachedLowering(*circuits[0]);
    stats = pc::flatCacheStats();
    EXPECT_EQ(stats.misses, kCacheCapacity + 2);
    EXPECT_EQ(stats.evictions, 2u);

    auto again_last = pc::cachedLowering(*circuits[kCacheCapacity]);
    EXPECT_EQ(again_last.get(), lowered[kCacheCapacity].get());
    stats = pc::flatCacheStats();
    EXPECT_EQ(stats.hits, 1u);

    // LRU recency follows use, not insertion: circuit 1 was evicted by
    // the re-insert of circuit 0, so it misses now.
    auto again1 = pc::cachedLowering(*circuits[1]);
    stats = pc::flatCacheStats();
    EXPECT_EQ(stats.misses, kCacheCapacity + 3);

    // Evicted lowerings stay alive through their shared_ptrs and are
    // still usable.
    util::ThreadPool serial(1);
    pc::CircuitEvaluator eval(*lowered[0], &serial);
    pc::Assignment x{0, 1};
    EXPECT_NEAR(eval.logLikelihood(x), circuits[0]->logLikelihood(x),
                1e-12);
    pc::clearFlatCache();
}

TEST(FlatCacheIdentity, SameBucketDistinctStructureNeverShares)
{
    pc::clearFlatCache();
    // Overwrite one object in place with a structurally distinct
    // circuit: the address bucket matches the cached entry but the
    // fingerprint must not, so the stale lowering is never served.
    pc::Circuit c = makeCircuit(3);
    auto first = pc::cachedLowering(c);
    EXPECT_EQ(first->numNodes(), 3u);

    pc::Circuit bigger(2, 2);
    pc::NodeId l0 = bigger.addLeaf(0, {0.3, 0.7});
    pc::NodeId l1 = bigger.addLeaf(1, {0.6, 0.4});
    pc::NodeId l2 = bigger.addLeaf(0, {0.2, 0.8});
    pc::NodeId prod = bigger.addProduct({l0, l1});
    bigger.markRoot(bigger.addSum({prod, l2}, {0.5, 0.5}));
    c = bigger; // same address, different structure

    auto second = pc::cachedLowering(c);
    EXPECT_NE(second.get(), first.get());
    EXPECT_EQ(second->numNodes(), bigger.numNodes());
    pc::FlatCacheStats stats = pc::flatCacheStats();
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.hits, 0u);

    // Same-content circuits at *different* addresses occupy different
    // buckets (two misses), but both lowerings are correct.
    pc::Circuit twin_a = makeCircuit(5);
    pc::Circuit twin_b = makeCircuit(5);
    auto flat_a = pc::cachedLowering(twin_a);
    auto flat_b = pc::cachedLowering(twin_b);
    EXPECT_NE(flat_a.get(), flat_b.get());
    EXPECT_EQ(flat_a->numNodes(), flat_b->numNodes());
    stats = pc::flatCacheStats();
    EXPECT_EQ(stats.misses, 4u);
    pc::clearFlatCache();
}
