/**
 * @file
 * Knowledge-to-circuit bridge: convert a compiled decision-DNNF into a
 * smooth, decomposable probabilistic circuit (the R2-Guard construction:
 * logical safety rules -> tractable probabilistic model).
 *
 * The resulting circuit represents the literal-weight product
 * distribution conditioned on the formula holding:
 *
 *     P(x) = [x |= phi] * prod_v w(x_v) / WMC(phi)
 *
 * parameterized locally (PSDD-style): each Or decision mixes its two
 * branches by their smoothed weighted counts, each branch is padded with
 * marginal leaves for variables it does not mention, and literal nodes
 * become indicator leaves.  Marginal and conditional queries on the
 * circuit therefore agree with WMC ratios on the formula — tested
 * exhaustively in tests/test_knowledge.cc.
 */

#ifndef REASON_PC_FROM_LOGIC_H
#define REASON_PC_FROM_LOGIC_H

#include "logic/knowledge.h"
#include "pc/pc.h"

namespace reason {
namespace pc {

/**
 * Build the conditioned-product-distribution circuit from a d-DNNF.
 * Variables map 1:1 (PC value 1 = true, 0 = false).
 *
 * fatal()s when the formula is unsatisfiable under the weights
 * (WMC == 0): the conditional distribution does not exist.
 */
Circuit fromDnnf(const logic::DnnfGraph &graph,
                 const logic::LitWeights &weights);

/** One-shot: compile a CNF and convert (uniform weights by default). */
Circuit compileCnf(const logic::CnfFormula &formula);
Circuit compileCnf(const logic::CnfFormula &formula,
                   const logic::LitWeights &weights);

} // namespace pc
} // namespace reason

#endif // REASON_PC_FROM_LOGIC_H
