#include "core/flat.h"

#include <algorithm>

#include "util/logging.h"
#include "util/parallel.h"
#include "util/simd.h"

namespace reason {
namespace core {

namespace {

/**
 * Evaluate one operation node into val[i].  Shared by the serial
 * id-order walk and the parallel wavefront walk so both paths run the
 * exact same floating-point expressions (bit-identical results).
 *
 * Sum/WeightedSum/Product stay scalar left folds: their results must
 * match Dag::evaluate bit for bit, and reassociating a +/* fold across
 * SIMD lanes would change the rounding.  Max/Min are associative and
 * commutative over non-NaN doubles, so wide fan-ins fold through
 * 8-lane packs (gathered chunks + fixed reduction tree) with results
 * identical to the serial fold.
 */
inline void
evalNode(const uint8_t *ops, const uint32_t *off, const uint32_t *tgt,
         const double *wgt, double *val, size_t i)
{
    const uint32_t lo = off[i];
    const uint32_t hi = off[i + 1];
    switch (FlatOp(ops[i])) {
      case FlatOp::Input:
      case FlatOp::Const:
        break; // pre-filled
      case FlatOp::Sum: {
        double acc = 0.0;
        for (uint32_t e = lo; e < hi; ++e)
            acc += val[tgt[e]];
        val[i] = acc;
        break;
      }
      case FlatOp::WeightedSum: {
        double acc = 0.0;
        for (uint32_t e = lo; e < hi; ++e)
            acc += wgt[e] * val[tgt[e]];
        val[i] = acc;
        break;
      }
      case FlatOp::Product: {
        double acc = 1.0;
        for (uint32_t e = lo; e < hi; ++e)
            acc *= val[tgt[e]];
        val[i] = acc;
        break;
      }
      case FlatOp::Max: {
        double acc = val[tgt[lo]];
        uint32_t e = lo + 1;
        if (hi - e >= 2 * simd::kLanes) {
            simd::Pack m = simd::splat(acc);
            double buf[simd::kLanes];
            for (; e + simd::kLanes <= hi; e += simd::kLanes) {
                for (size_t b = 0; b < simd::kLanes; ++b)
                    buf[b] = val[tgt[e + b]];
                m = simd::max(m, simd::load(buf));
            }
            acc = simd::reduceMax(m);
        }
        for (; e < hi; ++e)
            acc = std::max(acc, val[tgt[e]]);
        val[i] = acc;
        break;
      }
      case FlatOp::Min: {
        double acc = val[tgt[lo]];
        uint32_t e = lo + 1;
        if (hi - e >= 2 * simd::kLanes) {
            simd::Pack m = simd::splat(acc);
            double buf[simd::kLanes];
            for (; e + simd::kLanes <= hi; e += simd::kLanes) {
                for (size_t b = 0; b < simd::kLanes; ++b)
                    buf[b] = val[tgt[e + b]];
                m = simd::min(m, simd::load(buf));
            }
            acc = simd::reduceMin(m);
        }
        for (; e < hi; ++e)
            acc = std::min(acc, val[tgt[e]]);
        val[i] = acc;
        break;
      }
      case FlatOp::Not:
        val[i] = 1.0 - val[tgt[lo]];
        break;
    }
}

/** Full single-row pass: fill inputs, then walk every node in order. */
inline void
evalAllSerial(const FlatGraph &graph, std::span<const double> inputs,
              double *val)
{
    for (auto [node, tag] : graph.inputs)
        val[node] = inputs[tag];
    const uint8_t *ops = graph.ops.data();
    const uint32_t *off = graph.edgeOffset.data();
    const uint32_t *tgt = graph.edgeTarget.data();
    const double *wgt = graph.edgeWeight.data();
    const size_t n = graph.numNodes();
    for (size_t i = 0; i < n; ++i)
        evalNode(ops, off, tgt, wgt, val, i);
}

} // namespace

const char *
flatOpName(FlatOp op)
{
    switch (op) {
      case FlatOp::Input: return "input";
      case FlatOp::Const: return "const";
      case FlatOp::Sum: return "sum";
      case FlatOp::WeightedSum: return "wsum";
      case FlatOp::Product: return "product";
      case FlatOp::Max: return "max";
      case FlatOp::Min: return "min";
      case FlatOp::Not: return "not";
    }
    return "?";
}

size_t
FlatGraph::memoryBytes() const
{
    return ops.size() * sizeof(uint8_t) +
           edgeOffset.size() * sizeof(uint32_t) +
           edgeTarget.size() * sizeof(uint32_t) +
           edgeWeight.size() * sizeof(double) +
           inputs.size() * sizeof(inputs[0]) +
           consts.size() * sizeof(consts[0]) +
           levelOffset.size() * sizeof(uint32_t) +
           levelNodes.size() * sizeof(uint32_t);
}

void
FlatGraph::validate() const
{
    const size_t n = numNodes();
    reasonAssert(root < n, "flat graph root out of range");
    reasonAssert(edgeOffset.size() == n + 1, "edge offset size mismatch");
    reasonAssert(edgeOffset.front() == 0 && edgeOffset.back() == numEdges(),
                 "edge offsets must span the edge array");
    reasonAssert(edgeWeight.size() == edgeTarget.size(),
                 "edge weights must align with edge targets");
    for (size_t i = 0; i < n; ++i) {
        reasonAssert(edgeOffset[i] <= edgeOffset[i + 1],
                     "edge offsets must be monotone");
        for (uint32_t e = edgeOffset[i]; e < edgeOffset[i + 1]; ++e)
            reasonAssert(edgeTarget[e] < i,
                         "operands must precede consumers");
    }
    size_t op_nodes = 0;
    for (uint8_t op : ops)
        if (FlatOp(op) != FlatOp::Input && FlatOp(op) != FlatOp::Const)
            ++op_nodes;
    reasonAssert(levelNodes.size() == op_nodes,
                 "level schedule must cover every operation node");
}

LevelSchedule
buildLevelSchedule(size_t num_nodes,
                   std::span<const uint32_t> edge_offset,
                   std::span<const uint32_t> edge_target,
                   std::span<const uint8_t> schedulable)
{
    std::vector<uint32_t> level(num_nodes, 0);
    uint32_t max_level = 0;
    for (size_t i = 0; i < num_nodes; ++i) {
        uint32_t lvl = 0;
        for (uint32_t e = edge_offset[i]; e < edge_offset[i + 1]; ++e)
            lvl = std::max(lvl, level[edge_target[e]] + 1);
        level[i] = lvl;
        max_level = std::max(max_level, lvl);
    }
    const auto scheduled = [&](size_t i) {
        return schedulable.empty() || schedulable[i] != 0;
    };
    // Counting sort by level keeps ascending node id within a level.
    LevelSchedule s;
    s.offset.assign(max_level + 2, 0);
    for (size_t i = 0; i < num_nodes; ++i)
        if (scheduled(i))
            ++s.offset[level[i] + 1];
    for (size_t l = 1; l < s.offset.size(); ++l)
        s.offset[l] += s.offset[l - 1];
    s.nodes.resize(s.offset.back());
    std::vector<uint32_t> cursor(s.offset.begin(), s.offset.end() - 1);
    for (size_t i = 0; i < num_nodes; ++i)
        if (scheduled(i))
            s.nodes[cursor[level[i]]++] = uint32_t(i);
    return s;
}

FlatGraph
lowerDag(const Dag &dag)
{
    dag.validate();
    const size_t n = dag.numNodes();
    FlatGraph g;
    g.ops.resize(n);
    g.edgeOffset.reserve(n + 1);
    g.edgeOffset.push_back(0);
    g.edgeTarget.reserve(dag.numEdges());
    g.edgeWeight.reserve(dag.numEdges());
    g.numInputs = dag.numInputs();
    g.root = dag.root();

    for (size_t i = 0; i < n; ++i) {
        const DagNode &node = dag.node(NodeId(i));
        FlatOp op;
        switch (node.op) {
          case DagOp::Input:
            op = FlatOp::Input;
            g.inputs.emplace_back(uint32_t(i), node.tag);
            break;
          case DagOp::Const:
            op = FlatOp::Const;
            g.consts.emplace_back(uint32_t(i), node.value);
            break;
          case DagOp::Sum:
            op = node.weights.empty() ? FlatOp::Sum : FlatOp::WeightedSum;
            break;
          case DagOp::Product: op = FlatOp::Product; break;
          case DagOp::Max: op = FlatOp::Max; break;
          case DagOp::Min: op = FlatOp::Min; break;
          case DagOp::Not: op = FlatOp::Not; break;
          default: panic("unknown DagOp in lowering");
        }
        g.ops[i] = uint8_t(op);
        for (size_t k = 0; k < node.inputs.size(); ++k) {
            g.edgeTarget.push_back(node.inputs[k]);
            g.edgeWeight.push_back(
                node.weights.empty() ? 1.0 : node.weights[k]);
        }
        g.edgeOffset.push_back(uint32_t(g.edgeTarget.size()));
    }

    // Wavefront schedule over operation nodes only: leaves (level 0
    // inputs/consts) are excluded — they are pre-filled.
    std::vector<uint8_t> schedulable(n);
    for (size_t i = 0; i < n; ++i) {
        FlatOp op = FlatOp(g.ops[i]);
        schedulable[i] = op != FlatOp::Input && op != FlatOp::Const;
    }
    LevelSchedule sched =
        buildLevelSchedule(n, g.edgeOffset, g.edgeTarget, schedulable);
    g.levelOffset = std::move(sched.offset);
    g.levelNodes = std::move(sched.nodes);
    g.validate();
    return g;
}

Evaluator::Evaluator(const FlatGraph &graph, util::ThreadPool *pool)
    : graph_(graph), pool_(pool), values_(graph.numNodes(), 0.0)
{
    // Constants never change: write them once, skip them per call.
    for (auto [node, value] : graph_.consts)
        values_[node] = value;
}

util::ThreadPool &
Evaluator::activePool() const
{
    // Resolved per call, not cached: setGlobalThreads may legally
    // replace the global pool between evaluation phases, and a cached
    // pointer would dangle.
    return pool_ ? *pool_ : util::globalThreadPool();
}

std::span<const double>
Evaluator::evaluate(std::span<const double> inputs)
{
    reasonAssert(inputs.size() >= graph_.numInputs,
                 "not enough input values supplied");
    util::ThreadPool &pool = activePool();
    double *val = values_.data();
    if (pool.numThreads() == 1) {
        evalAllSerial(graph_, inputs, val);
        return {values_.data(), values_.size()};
    }

    // Wavefront execution: every node inside a level depends only on
    // earlier levels and writes only val[i], so each level is a
    // data-parallel slice.  Partitioning is deterministic and per-node
    // expressions are unchanged, hence bit-identical to the serial walk.
    for (auto [node, tag] : graph_.inputs)
        val[node] = inputs[tag];
    const uint8_t *ops = graph_.ops.data();
    const uint32_t *off = graph_.edgeOffset.data();
    const uint32_t *tgt = graph_.edgeTarget.data();
    const double *wgt = graph_.edgeWeight.data();
    const uint32_t *sched = graph_.levelNodes.data();
    const size_t levels = graph_.numLevels();
    for (size_t l = 0; l < levels; ++l) {
        const size_t lo = graph_.levelOffset[l];
        const size_t hi = graph_.levelOffset[l + 1];
        pool.parallelFor(
            lo, hi, kMinNodesPerChunk,
            [&](size_t b, size_t e, unsigned) {
                for (size_t k = b; k < e; ++k)
                    evalNode(ops, off, tgt, wgt, val, sched[k]);
            });
    }
    return {values_.data(), values_.size()};
}

double
Evaluator::evaluateRoot(std::span<const double> inputs)
{
    return evaluate(inputs)[graph_.root];
}

void
Evaluator::evaluateBatch(std::span<const double> rows, size_t num_rows,
                         std::span<double> roots_out)
{
    const size_t stride = graph_.numInputs;
    reasonAssert(rows.size() >= num_rows * stride,
                 "batch input buffer too small");
    reasonAssert(roots_out.size() >= num_rows,
                 "batch output buffer too small");
    util::ThreadPool &pool = activePool();
    const unsigned threads = pool.numThreads();
    if (threads == 1 || num_rows < 2 * kMinRowsPerChunk) {
        for (size_t r = 0; r < num_rows; ++r)
            roots_out[r] =
                evaluate(rows.subspan(r * stride, stride))[graph_.root];
        return;
    }

    // Row-parallel: each worker streams a contiguous row slice through
    // its own value buffer; rows are independent, so any partitioning
    // yields the same per-row results as serial evaluate() calls.
    if (batchValues_.size() < threads) {
        batchValues_.resize(threads);
        for (auto &buf : batchValues_) {
            if (buf.empty()) {
                buf.assign(graph_.numNodes(), 0.0);
                for (auto [node, value] : graph_.consts)
                    buf[node] = value;
            }
        }
    }
    pool.parallelFor(
        0, num_rows, kMinRowsPerChunk,
        [&](size_t b, size_t e, unsigned worker) {
            double *val = batchValues_[worker].data();
            for (size_t r = b; r < e; ++r) {
                evalAllSerial(graph_,
                              rows.subspan(r * stride, stride), val);
                roots_out[r] = val[graph_.root];
            }
        });
}

} // namespace core
} // namespace reason
