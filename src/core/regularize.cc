#include "core/regularize.h"

#include "util/logging.h"

namespace reason {
namespace core {

namespace {

/**
 * Build a balanced binary reduction over operands (and optional weights)
 * in `out`, returning the root of the subtree.
 *
 * For weighted sums, weights are applied on the lowest binary level the
 * operand participates in; all upper levels use weight 1, preserving the
 * overall linear combination.
 */
NodeId
balancedReduce(Dag &out, DagOp op, std::vector<NodeId> operands,
               std::vector<double> weights)
{
    reasonAssert(!operands.empty(), "reduce needs operands");
    bool weighted = !weights.empty();
    while (operands.size() > 1) {
        std::vector<NodeId> next;
        std::vector<double> next_w;
        next.reserve((operands.size() + 1) / 2);
        for (size_t i = 0; i + 1 < operands.size(); i += 2) {
            if (weighted) {
                next.push_back(out.addOp(
                    op, {operands[i], operands[i + 1]},
                    {weights[i], weights[i + 1]}));
                next_w.push_back(1.0);
            } else {
                next.push_back(
                    out.addOp(op, {operands[i], operands[i + 1]}));
            }
        }
        if (operands.size() % 2 == 1) {
            // Odd operand out: promote as-is, keeping its weight.
            if (weighted) {
                NodeId last = operands.back();
                double w = weights.back();
                if (w == 1.0) {
                    next.push_back(last);
                    next_w.push_back(1.0);
                } else {
                    next.push_back(
                        out.addOp(DagOp::Sum, {last}, {w}));
                    next_w.push_back(1.0);
                }
            } else {
                next.push_back(operands.back());
            }
        }
        operands = std::move(next);
        if (weighted)
            weights = std::move(next_w);
    }
    // Single operand left.  A weighted single operand still needs its
    // scale applied.
    if (weighted && weights[0] != 1.0)
        return out.addOp(DagOp::Sum, {operands[0]}, {weights[0]});
    return operands[0];
}

} // namespace

RegularizeResult
regularizeTwoInput(Dag &dag)
{
    RegularizeResult res;
    DagStats before = dag.stats();
    res.nodesBefore = before.numNodes;
    res.maxFanInBefore = before.maxFanIn;
    res.depthBefore = before.depth;

    Dag out;
    std::vector<NodeId> remap(dag.numNodes(), kInvalidNode);
    for (NodeId id = 0; id < dag.numNodes(); ++id) {
        const DagNode &n = dag.node(id);
        switch (n.op) {
          case DagOp::Input:
            remap[id] = out.addInput(n.tag);
            break;
          case DagOp::Const:
            remap[id] = out.addConst(n.value);
            break;
          default: {
            std::vector<NodeId> inputs;
            inputs.reserve(n.inputs.size());
            for (NodeId c : n.inputs)
                inputs.push_back(remap[c]);
            if (inputs.size() <= 2) {
                remap[id] = out.addOp(n.op, std::move(inputs),
                                      n.weights);
            } else {
                remap[id] = balancedReduce(out, n.op,
                                           std::move(inputs),
                                           n.weights);
            }
            break;
          }
        }
    }
    out.markRoot(remap[dag.root()]);
    out.validate();
    reasonAssert(out.isTwoInput(), "regularization must yield fan-in <= 2");
    dag = std::move(out);

    DagStats after = dag.stats();
    res.nodesAfter = after.numNodes;
    res.depthAfter = after.depth;
    return res;
}

} // namespace core
} // namespace reason
