#include "arch/spmspm.h"

#include <algorithm>
#include <map>

#include "util/logging.h"
#include "util/rng.h"

namespace reason {
namespace arch {

void
CsrMatrix::validate() const
{
    reasonAssert(rowPtr.size() == size_t(rows) + 1,
                 "rowPtr must have rows+1 entries");
    reasonAssert(rowPtr.front() == 0, "rowPtr must start at 0");
    reasonAssert(rowPtr.back() == colIdx.size(),
                 "rowPtr must end at nnz");
    reasonAssert(colIdx.size() == values.size(),
                 "colIdx/values size mismatch");
    for (uint32_t r = 0; r < rows; ++r) {
        reasonAssert(rowPtr[r] <= rowPtr[r + 1],
                     "rowPtr must be non-decreasing");
        for (uint32_t k = rowPtr[r]; k < rowPtr[r + 1]; ++k)
            reasonAssert(colIdx[k] < cols, "column index out of range");
    }
}

std::vector<double>
CsrMatrix::denseRow(uint32_t r) const
{
    std::vector<double> out(cols, 0.0);
    for (uint32_t k = rowPtr.at(r); k < rowPtr.at(r + 1); ++k)
        out[colIdx[k]] += values[k];
    return out;
}

CsrMatrix
randomSparse(Rng &rng, uint32_t rows, uint32_t cols, double density)
{
    reasonAssert(density > 0.0 && density <= 1.0,
                 "density must be in (0,1]");
    CsrMatrix m;
    m.rows = rows;
    m.cols = cols;
    m.rowPtr.push_back(0);
    for (uint32_t r = 0; r < rows; ++r) {
        for (uint32_t c = 0; c < cols; ++c) {
            if (rng.bernoulli(density)) {
                m.colIdx.push_back(c);
                m.values.push_back(rng.uniformReal(-1.5, 1.5));
            }
        }
        m.rowPtr.push_back(static_cast<uint32_t>(m.colIdx.size()));
    }
    m.validate();
    return m;
}

std::vector<double>
spmv(const CsrMatrix &a, const std::vector<double> &x)
{
    reasonAssert(x.size() >= a.cols, "vector too short");
    std::vector<double> y(a.rows, 0.0);
    for (uint32_t r = 0; r < a.rows; ++r)
        for (uint32_t k = a.rowPtr[r]; k < a.rowPtr[r + 1]; ++k)
            y[r] += a.values[k] * x[a.colIdx[k]];
    return y;
}

CsrMatrix
spmspm(const CsrMatrix &a, const CsrMatrix &b)
{
    reasonAssert(a.cols == b.rows, "dimension mismatch");
    CsrMatrix c;
    c.rows = a.rows;
    c.cols = b.cols;
    c.rowPtr.push_back(0);
    for (uint32_t r = 0; r < a.rows; ++r) {
        // Row-merge: accumulate contributions of each A(r,k) * B(k,:).
        std::map<uint32_t, double> acc;
        for (uint32_t ka = a.rowPtr[r]; ka < a.rowPtr[r + 1]; ++ka) {
            uint32_t k = a.colIdx[ka];
            double av = a.values[ka];
            for (uint32_t kb = b.rowPtr[k]; kb < b.rowPtr[k + 1]; ++kb)
                acc[b.colIdx[kb]] += av * b.values[kb];
        }
        for (const auto &kv : acc) {
            if (kv.second == 0.0)
                continue;
            c.colIdx.push_back(kv.first);
            c.values.push_back(kv.second);
        }
        c.rowPtr.push_back(static_cast<uint32_t>(c.colIdx.size()));
    }
    c.validate();
    return c;
}

core::Dag
buildSpmvDag(const CsrMatrix &a, std::vector<core::NodeId> *row_outputs,
             const std::vector<double> *combine)
{
    a.validate();
    core::Dag dag;
    std::vector<core::NodeId> x(a.cols);
    for (uint32_t c = 0; c < a.cols; ++c)
        x[c] = dag.addInput(c);

    std::vector<core::NodeId> rows(a.rows, core::kInvalidNode);
    for (uint32_t r = 0; r < a.rows; ++r) {
        if (a.rowPtr[r] == a.rowPtr[r + 1])
            continue;
        std::vector<core::NodeId> terms;
        std::vector<double> weights;
        for (uint32_t k = a.rowPtr[r]; k < a.rowPtr[r + 1]; ++k) {
            terms.push_back(x[a.colIdx[k]]);
            weights.push_back(a.values[k]);
        }
        rows[r] = dag.addOp(core::DagOp::Sum, std::move(terms),
                            std::move(weights));
    }

    std::vector<core::NodeId> finals;
    std::vector<double> final_w;
    for (uint32_t r = 0; r < a.rows; ++r) {
        if (rows[r] == core::kInvalidNode)
            continue;
        finals.push_back(rows[r]);
        final_w.push_back(combine ? (*combine)[r] : 1.0);
    }
    core::NodeId root =
        finals.empty()
            ? dag.addConst(0.0)
            : dag.addOp(core::DagOp::Sum, std::move(finals),
                        std::move(final_w));
    dag.markRoot(root);
    dag.validate();
    if (row_outputs)
        *row_outputs = std::move(rows);
    return dag;
}

core::Dag
buildSpmspmColumnDag(const CsrMatrix &a,
                     const std::vector<double> &combine)
{
    reasonAssert(combine.size() >= a.rows,
                 "combine weights must cover all rows");
    return buildSpmvDag(a, nullptr, &combine);
}

uint64_t
spmvMacs(const CsrMatrix &a)
{
    return a.nnz();
}

} // namespace arch
} // namespace reason
