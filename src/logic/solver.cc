#include "logic/solver.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace reason {
namespace logic {

CdclSolver::CdclSolver(const CnfFormula &formula, SolverConfig config)
    : numVars_(formula.numVars()), config_(config)
{
    watches_.resize(size_t(numVars_) * 2);
    assigns_.assign(numVars_, LBool::Undef);
    savedPhase_.assign(numVars_, false);
    level_.assign(numVars_, 0);
    reason_.assign(numVars_, kNoReason);
    activity_.assign(numVars_, 0.0);
    seen_.assign(numVars_, false);
    restartLimit_ = config_.restartBase;

    for (const auto &c : formula.clauses()) {
        // Normalize: drop duplicate literals; skip tautologies.
        Clause lits = c;
        std::sort(lits.begin(), lits.end());
        lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
        bool tautology = false;
        for (size_t i = 0; i + 1 < lits.size(); ++i) {
            if (lits[i].var() == lits[i + 1].var()) {
                tautology = true;
                break;
            }
        }
        if (tautology)
            continue;
        if (lits.empty()) {
            unsatOnConstruction_ = true;
            continue;
        }
        clauses_.push_back({std::move(lits), 0.0, false});
        attachClause(static_cast<uint32_t>(clauses_.size() - 1));
    }
    numOriginalClauses_ = clauses_.size();
}

void
CdclSolver::attachClause(uint32_t idx)
{
    auto &c = clauses_[idx].lits;
    if (c.size() == 1)
        return; // unit clauses are enqueued at solve start
    watches_[c[0].code()].push_back({idx, c[1]});
    watches_[c[1].code()].push_back({idx, c[0]});
}

LBool
CdclSolver::litValue(Lit l) const
{
    LBool v = assigns_[l.var()];
    if (v == LBool::Undef)
        return v;
    return l.negated() ? negate(v) : v;
}

void
CdclSolver::enqueue(Lit l, uint32_t reason_idx)
{
    reasonAssert(litValue(l) == LBool::Undef, "enqueue on assigned literal");
    assigns_[l.var()] = l.negated() ? LBool::False : LBool::True;
    level_[l.var()] = static_cast<uint32_t>(trailLim_.size());
    reason_[l.var()] = reason_idx;
    trail_.push_back(l);
    ++stats_.propagations;
}

uint32_t
CdclSolver::propagate()
{
    while (qhead_ < trail_.size()) {
        Lit p = trail_[qhead_++];
        Lit false_lit = ~p; // literals watching ~p may now be falsified
        auto &ws = watches_[false_lit.code()];
        size_t keep = 0;
        for (size_t i = 0; i < ws.size(); ++i) {
            Watcher w = ws[i];
            // Blocker fast path: clause already satisfied.
            if (litValue(w.blocker) == LBool::True) {
                ws[keep++] = w;
                continue;
            }
            auto &lits = clauses_[w.clauseIdx].lits;
            // Ensure the falsified literal sits at position 1.
            if (lits[0] == false_lit)
                std::swap(lits[0], lits[1]);
            stats_.literalVisits += lits.size();
            if (litValue(lits[0]) == LBool::True) {
                ws[keep++] = {w.clauseIdx, lits[0]};
                continue;
            }
            // Look for a new literal to watch.
            bool moved = false;
            for (size_t k = 2; k < lits.size(); ++k) {
                if (litValue(lits[k]) != LBool::False) {
                    std::swap(lits[1], lits[k]);
                    watches_[lits[1].code()].push_back(
                        {w.clauseIdx, lits[0]});
                    moved = true;
                    break;
                }
            }
            if (moved)
                continue;
            // Clause is unit or conflicting.
            ws[keep++] = w;
            if (litValue(lits[0]) == LBool::False) {
                // Conflict: restore remaining watchers and report.
                for (size_t j = i + 1; j < ws.size(); ++j)
                    ws[keep++] = ws[j];
                ws.resize(keep);
                qhead_ = trail_.size();
                return w.clauseIdx;
            }
            enqueue(lits[0], w.clauseIdx);
        }
        ws.resize(keep);
    }
    return kNoReason;
}

void
CdclSolver::bumpVar(uint32_t var)
{
    activity_[var] += varInc_;
    if (activity_[var] > 1e100) {
        for (auto &a : activity_)
            a *= 1e-100;
        varInc_ *= 1e-100;
    }
}

void
CdclSolver::decayActivities()
{
    varInc_ /= config_.varDecay;
    clauseInc_ /= config_.clauseDecay;
}

void
CdclSolver::analyze(uint32_t confl, std::vector<Lit> &learnt,
                    uint32_t &bt_level)
{
    learnt.clear();
    learnt.push_back(Lit()); // slot for the asserting literal
    uint32_t path_count = 0;
    Lit p;
    size_t index = trail_.size();
    uint32_t current_level = static_cast<uint32_t>(trailLim_.size());
    // Every variable marked in seen_ must be unmarked before returning;
    // literals dropped by minimization and current-level literals that
    // were never popped would otherwise leak marks into later calls.
    std::vector<uint32_t> to_clear;

    uint32_t clause_idx = confl;
    bool first = true;
    do {
        reasonAssert(clause_idx != kNoReason, "analyze lost the reason");
        auto &cl = clauses_[clause_idx];
        if (cl.learned) {
            cl.activity += clauseInc_;
            if (cl.activity > 1e20) {
                for (auto &c2 : clauses_)
                    if (c2.learned)
                        c2.activity *= 1e-20;
                clauseInc_ *= 1e-20;
            }
        }
        size_t start = first ? 0 : 1;
        first = false;
        for (size_t j = start; j < cl.lits.size(); ++j) {
            Lit q = cl.lits[j];
            if (seen_[q.var()] || level_[q.var()] == 0)
                continue;
            seen_[q.var()] = true;
            to_clear.push_back(q.var());
            bumpVar(q.var());
            if (level_[q.var()] >= current_level) {
                ++path_count;
            } else {
                learnt.push_back(q);
            }
        }
        // Walk the trail backwards to the next marked literal.
        while (!seen_[trail_[index - 1].var()])
            --index;
        p = trail_[--index];
        seen_[p.var()] = false;
        clause_idx = reason_[p.var()];
        --path_count;
    } while (path_count > 0);
    learnt[0] = ~p;

    // Self-subsumption minimization: drop literals whose reason clause is
    // entirely subsumed by the rest of the learnt clause.
    auto redundant = [&](Lit l) {
        uint32_t r = reason_[l.var()];
        if (r == kNoReason)
            return false;
        for (size_t j = 1; j < clauses_[r].lits.size(); ++j) {
            Lit q = clauses_[r].lits[j];
            if (!seen_[q.var()] && level_[q.var()] > 0)
                return false;
        }
        return true;
    };
    for (size_t i = 1; i < learnt.size(); ++i) {
        if (!seen_[learnt[i].var()]) {
            seen_[learnt[i].var()] = true;
            to_clear.push_back(learnt[i].var());
        }
    }
    size_t keep = 1;
    for (size_t i = 1; i < learnt.size(); ++i)
        if (!redundant(learnt[i]))
            learnt[keep++] = learnt[i];
    learnt.resize(keep);
    for (uint32_t v : to_clear)
        seen_[v] = false;

    // Backtrack level: highest level among the non-asserting literals.
    bt_level = 0;
    size_t max_i = 1;
    for (size_t i = 1; i < learnt.size(); ++i) {
        if (level_[learnt[i].var()] > bt_level) {
            bt_level = level_[learnt[i].var()];
            max_i = i;
        }
    }
    if (learnt.size() > 1)
        std::swap(learnt[1], learnt[max_i]);
}

void
CdclSolver::backtrack(uint32_t target_level)
{
    if (trailLim_.size() <= target_level)
        return;
    size_t lim = trailLim_[target_level];
    for (size_t i = trail_.size(); i > lim; --i) {
        Lit l = trail_[i - 1];
        if (config_.phaseSaving)
            savedPhase_[l.var()] = !l.negated();
        assigns_[l.var()] = LBool::Undef;
        reason_[l.var()] = kNoReason;
    }
    trail_.resize(lim);
    trailLim_.resize(target_level);
    qhead_ = lim;
}

Lit
CdclSolver::pickBranchLit()
{
    uint32_t best = ~0u;
    double best_act = -1.0;
    for (uint32_t v = 0; v < numVars_; ++v) {
        if (assigns_[v] == LBool::Undef && activity_[v] > best_act) {
            best = v;
            best_act = activity_[v];
        }
    }
    if (best == ~0u)
        return Lit();
    bool phase = config_.phaseSaving ? savedPhase_[best] : false;
    return Lit::make(best, !phase);
}

double
CdclSolver::luby(uint64_t i)
{
    // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
    uint64_t k = 1;
    while ((uint64_t(1) << (k + 1)) - 1 <= i)
        ++k;
    while (true) {
        if (i == (uint64_t(1) << k) - 1)
            return static_cast<double>(uint64_t(1) << (k - 1));
        i = i - ((uint64_t(1) << (k - 1)) - 1) - 1;
        k = 1;
        while ((uint64_t(1) << (k + 1)) - 1 <= i)
            ++k;
    }
}

bool
CdclSolver::lubyRestartDue() const
{
    return conflictsSinceRestart_ >= restartLimit_;
}

void
CdclSolver::reduceLearnedDb()
{
    uint64_t limit = config_.learntLimitBase +
                     stats_.restarts * (config_.learntLimitBase / 4);
    size_t learned_count = clauses_.size() - numOriginalClauses_;
    if (learned_count <= limit)
        return;

    // Collect learned clause indices not currently used as reasons,
    // sorted by ascending activity; delete the weakest half.
    std::vector<bool> is_reason(clauses_.size(), false);
    for (uint32_t v = 0; v < numVars_; ++v)
        if (assigns_[v] != LBool::Undef && reason_[v] != kNoReason)
            is_reason[reason_[v]] = true;

    std::vector<uint32_t> candidates;
    for (uint32_t i = static_cast<uint32_t>(numOriginalClauses_);
         i < clauses_.size(); ++i)
        if (!is_reason[i] && clauses_[i].lits.size() > 2)
            candidates.push_back(i);
    std::sort(candidates.begin(), candidates.end(),
              [&](uint32_t a, uint32_t b) {
                  return clauses_[a].activity < clauses_[b].activity;
              });
    candidates.resize(candidates.size() / 2);
    if (candidates.empty())
        return;

    std::vector<bool> dead(clauses_.size(), false);
    for (uint32_t i : candidates)
        dead[i] = true;
    stats_.deletedClauses += candidates.size();

    // Compact the clause array and remap watches and reasons.
    std::vector<uint32_t> remap(clauses_.size(), kNoReason);
    std::vector<InternalClause> kept;
    kept.reserve(clauses_.size() - candidates.size());
    for (uint32_t i = 0; i < clauses_.size(); ++i) {
        if (dead[i])
            continue;
        remap[i] = static_cast<uint32_t>(kept.size());
        kept.push_back(std::move(clauses_[i]));
    }
    clauses_ = std::move(kept);
    for (auto &ws : watches_) {
        size_t keep = 0;
        for (auto &w : ws) {
            if (remap[w.clauseIdx] != kNoReason) {
                w.clauseIdx = remap[w.clauseIdx];
                ws[keep++] = w;
            }
        }
        ws.resize(keep);
    }
    for (uint32_t v = 0; v < numVars_; ++v)
        if (reason_[v] != kNoReason)
            reason_[v] = remap[reason_[v]];
}

SolveResult
CdclSolver::search()
{
    std::vector<Lit> learnt;
    while (true) {
        uint32_t confl = propagate();
        if (confl != kNoReason) {
            ++stats_.conflicts;
            ++conflictsSinceRestart_;
            if (trailLim_.empty())
                return SolveResult::Unsat;
            uint32_t bt_level = 0;
            analyze(confl, learnt, bt_level);
            // Never undo the assumption prefix.
            uint32_t floor_level =
                static_cast<uint32_t>(assumptions_.size());
            if (bt_level < floor_level) {
                // Learnt clause asserts below the assumptions: if it
                // contradicts them the instance is Unsat under
                // assumptions; handled by re-propagation below.
                bt_level = std::min<uint32_t>(
                    floor_level, static_cast<uint32_t>(trailLim_.size()));
                if (learnt.size() == 1)
                    bt_level = 0;
            }
            backtrack(bt_level);
            if (litValue(learnt[0]) != LBool::Undef) {
                // Asserting literal already falsified at this level:
                // conflict below assumptions -> unsatisfiable cube.
                return SolveResult::Unsat;
            }
            stats_.learnedClauses++;
            stats_.learnedLiterals += learnt.size();
            clauses_.push_back({learnt, clauseInc_, true});
            uint32_t idx = static_cast<uint32_t>(clauses_.size() - 1);
            if (learnt.size() > 1)
                attachClause(idx);
            enqueue(learnt[0], learnt.size() > 1 ? idx : kNoReason);
            decayActivities();
            if (config_.conflictBudget &&
                stats_.conflicts >= config_.conflictBudget)
                return SolveResult::Unknown;
            continue;
        }

        if (lubyRestartDue()) {
            ++stats_.restarts;
            conflictsSinceRestart_ = 0;
            restartLimit_ = static_cast<uint64_t>(
                config_.restartBase * luby(stats_.restarts));
            backtrack(static_cast<uint32_t>(assumptions_.size()));
            reduceLearnedDb();
            continue;
        }

        // Place pending assumptions as decisions first.
        if (trailLim_.size() < assumptions_.size()) {
            Lit a = assumptions_[trailLim_.size()];
            LBool v = litValue(a);
            if (v == LBool::False)
                return SolveResult::Unsat;
            trailLim_.push_back(trail_.size());
            if (v == LBool::Undef)
                enqueue(a, kNoReason);
            continue;
        }

        Lit next = pickBranchLit();
        if (!next.valid()) {
            model_.assign(numVars_, false);
            for (uint32_t v = 0; v < numVars_; ++v)
                model_[v] = (assigns_[v] == LBool::True);
            return SolveResult::Sat;
        }
        ++stats_.decisions;
        trailLim_.push_back(trail_.size());
        stats_.maxDecisionLevel =
            std::max<uint64_t>(stats_.maxDecisionLevel, trailLim_.size());
        enqueue(next, kNoReason);
    }
}

SolveResult
CdclSolver::solve()
{
    return solve({});
}

SolveResult
CdclSolver::solve(const std::vector<Lit> &assumptions)
{
    if (unsatOnConstruction_)
        return SolveResult::Unsat;
    backtrack(0);
    assumptions_ = assumptions;
    // Enqueue unit clauses at level 0 once.
    for (uint32_t i = 0; i < clauses_.size(); ++i) {
        if (clauses_[i].lits.size() == 1) {
            Lit u = clauses_[i].lits[0];
            LBool v = litValue(u);
            if (v == LBool::False)
                return SolveResult::Unsat;
            if (v == LBool::Undef)
                enqueue(u, kNoReason);
        }
    }
    if (propagate() != kNoReason)
        return SolveResult::Unsat;
    SolveResult r = search();
    assumptions_.clear();
    return r;
}

SolveResult
solveCnf(const CnfFormula &formula, std::vector<bool> *model,
         SolverStats *stats)
{
    CdclSolver solver(formula);
    SolveResult r = solver.solve();
    if (r == SolveResult::Sat && model)
        *model = solver.model();
    if (stats)
        *stats = solver.stats();
    return r;
}

} // namespace logic
} // namespace reason
