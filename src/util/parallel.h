/**
 * @file
 * Minimal reusable thread pool with a deterministic parallel-for, the
 * software backbone of wavefront (level-parallel) execution in the flat
 * kernel engines (core/flat.h, pc/flat_pc.h).
 *
 * Design contract, relied on by every flat evaluator:
 *
 *  - **Deterministic partitioning.**  `parallelFor(begin, end, ...)`
 *    splits the index range into at most numThreads() *contiguous*
 *    chunks whose boundaries depend only on the range size and the
 *    thread count — never on scheduling races.  Chunk i is always
 *    executed by worker i (worker 0 is the calling thread), so
 *    per-worker scratch buffers are reused stably across calls.
 *  - **No hidden reductions.**  The pool only runs disjoint index
 *    ranges; all accumulation policy stays in the caller, which is how
 *    the flat engines guarantee bit-identical results for any thread
 *    count (each output cell has exactly one writer and an unchanged
 *    floating-point expression).
 *  - **Inline fallback.**  Ranges smaller than twice `min_grain` (and
 *    all work on a 1-thread pool) run inline on the caller with zero
 *    synchronization, so sprinkling parallelFor over small levels is
 *    free.
 *
 * Thread-safety: a ThreadPool may be shared by many evaluators, but
 * parallelFor is *not* reentrant — only one parallelFor may be active
 * on a pool at a time (nested or concurrent calls from worker threads
 * must use a different pool or run inline).  The global pool accessors
 * follow the setLogLevel convention: configure once at startup.
 */

#ifndef REASON_UTIL_PARALLEL_H
#define REASON_UTIL_PARALLEL_H

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

namespace reason {
namespace util {

class ThreadPool
{
  public:
    /**
     * Create a pool with `threads` total workers including the calling
     * thread (so `threads - 1` OS threads are spawned).  `threads == 0`
     * uses std::thread::hardware_concurrency().
     */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total workers, including the calling thread; always >= 1. */
    unsigned numThreads() const
    {
        return unsigned(workers_.size()) + 1;
    }

    /** Raw chunk callback: [begin, end) slice plus the worker index. */
    using RangeFn = void (*)(void *ctx, size_t begin, size_t end,
                             unsigned worker);

    /**
     * Run `fn` over [begin, end) split into deterministic contiguous
     * chunks, one per participating worker; blocks until every chunk
     * has finished.  At most `(end - begin) / min_grain` workers
     * participate so no chunk is smaller than `min_grain` (the whole
     * range runs inline on the caller when that limit is 1).
     */
    void parallelForRaw(size_t begin, size_t end, size_t min_grain,
                        RangeFn fn, void *ctx);

    /** Typed wrapper: f(chunk_begin, chunk_end, worker_index). */
    template <typename F>
    void
    parallelFor(size_t begin, size_t end, size_t min_grain, F &&f)
    {
        parallelForRaw(
            begin, end, min_grain,
            [](void *ctx, size_t b, size_t e, unsigned w) {
                (*static_cast<std::remove_reference_t<F> *>(ctx))(b, e, w);
            },
            &f);
    }

  private:
    void workerLoop(unsigned worker_index);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    /** Monotone job counter; workers run one job per increment. */
    uint64_t generation_ = 0;
    /** Workers still to finish the current job (or acknowledge skip). */
    unsigned pending_ = 0;
    bool shutdown_ = false;
    /** Current job (valid while pending_ > 0). */
    RangeFn jobFn_ = nullptr;
    void *jobCtx_ = nullptr;
    size_t jobBegin_ = 0;
    size_t jobEnd_ = 0;
    unsigned jobChunks_ = 0;
};

/**
 * Process-wide evaluation pool used by the flat engines when no pool is
 * passed explicitly.  Created lazily with the thread count from
 * setGlobalThreads (default: hardware concurrency).
 */
ThreadPool &globalThreadPool();

/**
 * Set the worker count of the global pool (the `--threads` knob of the
 * CLI, bench_eval, and sys::ReasonRuntime).  `n == 0` restores the
 * hardware-concurrency default.  Recreates the pool; call at startup or
 * between evaluation phases, never while a parallelFor is in flight.
 */
void setGlobalThreads(unsigned n);

/** Worker count the global pool has (or would be created with). */
unsigned globalThreads();

/**
 * Parse a user-supplied thread count (CLI/bench `--threads` values).
 * Accepts decimal integers in [0, kMaxThreads] (0 = hardware
 * concurrency); rejects negatives, garbage, and absurd counts instead
 * of wrapping them into ~4-billion-thread pool requests.
 *
 * @return true and sets *out on success, false otherwise.
 */
inline constexpr unsigned kMaxThreads = 1024;
bool parseThreadCount(const char *text, unsigned *out);

} // namespace util
} // namespace reason

#endif // REASON_UTIL_PARALLEL_H
