#include "logic/knowledge.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <sstream>
#include <unordered_map>

#include "util/logging.h"
#include "util/rng.h"

namespace reason {
namespace logic {

const char *
nnfTypeName(NnfType type)
{
    switch (type) {
      case NnfType::True: return "true";
      case NnfType::False: return "false";
      case NnfType::Lit: return "lit";
      case NnfType::And: return "and";
      case NnfType::Or: return "or";
    }
    return "?";
}

LitWeights
LitWeights::uniform(uint32_t num_vars)
{
    LitWeights w;
    w.pos.assign(num_vars, 0.5);
    w.neg.assign(num_vars, 0.5);
    return w;
}

LitWeights
LitWeights::indicator(const std::vector<bool> &assignment)
{
    LitWeights w;
    w.pos.resize(assignment.size());
    w.neg.resize(assignment.size());
    for (size_t v = 0; v < assignment.size(); ++v) {
        w.pos[v] = assignment[v] ? 1.0 : 0.0;
        w.neg[v] = assignment[v] ? 0.0 : 1.0;
    }
    return w;
}

LitWeights
LitWeights::random(Rng &rng, uint32_t num_vars)
{
    LitWeights w;
    w.pos.resize(num_vars);
    w.neg.resize(num_vars);
    for (uint32_t v = 0; v < num_vars; ++v) {
        double p = 0.1 + 0.8 * rng.uniform01();
        w.pos[v] = p;
        w.neg[v] = 1.0 - p;
    }
    return w;
}

// --------------------------------------------------------------------------
// DnnfGraph queries
// --------------------------------------------------------------------------

size_t
DnnfGraph::numEdges() const
{
    size_t n = 0;
    for (const auto &node : nodes_)
        n += node.children.size();
    return n;
}

std::vector<std::vector<uint32_t>>
DnnfGraph::scopes() const
{
    std::vector<std::vector<uint32_t>> scope(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) {
        const NnfNode &node = nodes_[i];
        switch (node.type) {
          case NnfType::True:
          case NnfType::False:
            break;
          case NnfType::Lit:
            scope[i].push_back(node.lit.var());
            break;
          case NnfType::And:
          case NnfType::Or:
            for (NnfId c : node.children) {
                scope[i].insert(scope[i].end(), scope[c].begin(),
                                scope[c].end());
            }
            if (node.type == NnfType::Or)
                scope[i].push_back(node.decisionVar);
            std::sort(scope[i].begin(), scope[i].end());
            scope[i].erase(std::unique(scope[i].begin(), scope[i].end()),
                           scope[i].end());
            break;
        }
    }
    return scope;
}

std::vector<double>
DnnfGraph::weightedValues(const LitWeights &weights) const
{
    const std::vector<double> &pos = weights.pos;
    const std::vector<double> &neg = weights.neg;
    reasonAssert(pos.size() >= numVars_ && neg.size() >= numVars_,
                 "literal weights must cover all formula variables");
    auto scope = scopes();
    std::vector<double> value(nodes_.size(), 0.0);

    // Product of (pos+neg) over scope(parent) minus scope(child).
    auto gapFactor = [&](const std::vector<uint32_t> &parent,
                         const std::vector<uint32_t> &child) {
        double f = 1.0;
        size_t ci = 0;
        for (uint32_t v : parent) {
            while (ci < child.size() && child[ci] < v)
                ++ci;
            if (ci < child.size() && child[ci] == v)
                continue;
            f *= pos[v] + neg[v];
        }
        return f;
    };

    for (size_t i = 0; i < nodes_.size(); ++i) {
        const NnfNode &node = nodes_[i];
        switch (node.type) {
          case NnfType::True:
            value[i] = 1.0;
            break;
          case NnfType::False:
            value[i] = 0.0;
            break;
          case NnfType::Lit:
            value[i] = node.lit.negated() ? neg[node.lit.var()]
                                          : pos[node.lit.var()];
            break;
          case NnfType::And: {
            double v = 1.0;
            for (NnfId c : node.children)
                v *= value[c];
            value[i] = v;
            break;
          }
          case NnfType::Or: {
            double v = 0.0;
            for (NnfId c : node.children)
                v += value[c] * gapFactor(scope[i], scope[c]);
            value[i] = v;
            break;
          }
        }
    }
    return value;
}

namespace {

/** Total (pos+neg) factor for variables of [0,numVars) outside `scope`. */
double
freeVarFactor(const std::vector<double> &pos, const std::vector<double> &neg,
              const std::vector<uint32_t> &scope, uint32_t num_vars)
{
    double f = 1.0;
    size_t si = 0;
    for (uint32_t var = 0; var < num_vars; ++var) {
        while (si < scope.size() && scope[si] < var)
            ++si;
        if (si < scope.size() && scope[si] == var)
            continue;
        f *= pos[var] + neg[var];
    }
    return f;
}

} // namespace

double
DnnfGraph::modelCount() const
{
    LitWeights ones;
    ones.pos.assign(numVars_, 1.0);
    ones.neg.assign(numVars_, 1.0);
    return wmc(ones);
}

double
DnnfGraph::wmc(const LitWeights &weights) const
{
    std::vector<double> value = weightedValues(weights);
    return value[root_] * freeVarFactor(weights.pos, weights.neg,
                                        scopes()[root_], numVars_);
}

bool
DnnfGraph::isModel(const std::vector<bool> &assignment) const
{
    reasonAssert(assignment.size() >= numVars_,
                 "assignment must cover all formula variables");
    std::vector<char> value(nodes_.size(), 0);
    for (size_t i = 0; i < nodes_.size(); ++i) {
        const NnfNode &node = nodes_[i];
        switch (node.type) {
          case NnfType::True:
            value[i] = 1;
            break;
          case NnfType::False:
            value[i] = 0;
            break;
          case NnfType::Lit:
            value[i] = assignment[node.lit.var()] != node.lit.negated();
            break;
          case NnfType::And: {
            char v = 1;
            for (NnfId c : node.children)
                v = char(v && value[c]);
            value[i] = v;
            break;
          }
          case NnfType::Or: {
            char v = 0;
            for (NnfId c : node.children)
                v = char(v || value[c]);
            value[i] = v;
            break;
          }
        }
    }
    return value[root_] != 0;
}

void
DnnfGraph::validate() const
{
    reasonAssert(root_ < nodes_.size(), "dnnf root out of range");
    auto scope = scopes();
    for (size_t i = 0; i < nodes_.size(); ++i) {
        const NnfNode &node = nodes_[i];
        for (NnfId c : node.children)
            reasonAssert(c < i, "dnnf children must precede parents");
        if (node.type == NnfType::Lit)
            reasonAssert(node.lit.var() < numVars_, "lit var out of range");
        if (node.type == NnfType::Or) {
            reasonAssert(node.children.size() == 2,
                         "decision Or must have exactly two children");
            reasonAssert(node.decisionVar < numVars_,
                         "decision var out of range");
        }
        if (node.type == NnfType::And) {
            // Decomposability: children scopes pairwise disjoint.
            std::vector<uint32_t> merged;
            size_t total = 0;
            for (NnfId c : node.children) {
                merged.insert(merged.end(), scope[c].begin(),
                              scope[c].end());
                total += scope[c].size();
            }
            std::sort(merged.begin(), merged.end());
            merged.erase(std::unique(merged.begin(), merged.end()),
                         merged.end());
            reasonAssert(merged.size() == total,
                         "And children must have disjoint scopes");
        }
    }
}

std::string
DnnfGraph::toString() const
{
    std::ostringstream os;
    os << "dnnf(" << numVars_ << " vars, " << nodes_.size() << " nodes)\n";
    for (size_t i = 0; i < nodes_.size(); ++i) {
        const NnfNode &node = nodes_[i];
        os << "  n" << i << ": " << nnfTypeName(node.type);
        if (node.type == NnfType::Lit)
            os << " " << node.lit.toString();
        if (node.type == NnfType::Or)
            os << " on x" << node.decisionVar;
        for (NnfId c : node.children)
            os << " n" << c;
        os << "\n";
    }
    return os.str();
}

DnnfGraph
DnnfGraph::fromNodes(std::vector<NnfNode> nodes, NnfId root,
                     uint32_t num_vars)
{
    DnnfGraph g;
    g.nodes_ = std::move(nodes);
    g.root_ = root;
    g.numVars_ = num_vars;
    g.validate();
    return g;
}

// --------------------------------------------------------------------------
// Compiler
// --------------------------------------------------------------------------

namespace {

/** Residual CNF: clauses over the still-unassigned literals. */
using Residual = std::vector<std::vector<Lit>>;

struct ResidualKeyHash
{
    size_t operator()(const std::vector<uint32_t> &key) const
    {
        size_t h = 1469598103934665603ull;
        for (uint32_t v : key) {
            h ^= v;
            h *= 1099511628211ull;
        }
        return h;
    }
};

} // namespace

/** Top-down exhaustive-DPLL d-DNNF builder (single compilation run). */
class DnnfCompiler
{
  public:
    explicit DnnfCompiler(const CnfFormula &formula)
    {
        graph_.numVars_ = formula.numVars();
        trueNode_ = addNode({NnfType::True, Lit(), 0, {}});
        falseNode_ = addNode({NnfType::False, Lit(), 0, {}});
        litNode_.assign(size_t(formula.numVars()) * 2, kInvalidNnf);

        Residual residual;
        residual.reserve(formula.numClauses());
        for (const auto &clause : formula.clauses()) {
            std::vector<Lit> c(clause.begin(), clause.end());
            std::sort(c.begin(), c.end());
            c.erase(std::unique(c.begin(), c.end()), c.end());
            bool tautology = false;
            for (size_t i = 0; i + 1 < c.size(); ++i)
                if (c[i + 1] == ~c[i])
                    tautology = true;
            if (!tautology)
                residual.push_back(std::move(c));
        }
        graph_.root_ = compile(residual);
        graph_.stats_.cacheEntries = cache_.size();
    }

    DnnfGraph take() { return std::move(graph_); }

  private:
    NnfId addNode(NnfNode node)
    {
        graph_.nodes_.push_back(std::move(node));
        return NnfId(graph_.nodes_.size() - 1);
    }

    NnfId litNode(Lit l)
    {
        NnfId &slot = litNode_[l.code()];
        if (slot == kInvalidNnf)
            slot = addNode({NnfType::Lit, l, 0, {}});
        return slot;
    }

    /** And over parts, flattening and short-circuiting constants. */
    NnfId makeAnd(std::vector<NnfId> parts)
    {
        std::vector<NnfId> kept;
        for (NnfId p : parts) {
            const NnfNode &node = graph_.nodes_[p];
            if (node.type == NnfType::False)
                return falseNode_;
            if (node.type == NnfType::True)
                continue;
            kept.push_back(p);
        }
        if (kept.empty())
            return trueNode_;
        if (kept.size() == 1)
            return kept[0];
        return addNode({NnfType::And, Lit(), 0, std::move(kept)});
    }

    /**
     * Apply a literal to a residual.  @return false on an empty clause
     * (contradiction); true otherwise with `out` holding the reduct.
     */
    static bool applyLit(const Residual &in, Lit l, Residual &out)
    {
        out.clear();
        out.reserve(in.size());
        for (const auto &clause : in) {
            bool satisfied = false;
            for (Lit x : clause) {
                if (x == l) {
                    satisfied = true;
                    break;
                }
            }
            if (satisfied)
                continue;
            std::vector<Lit> reduced;
            reduced.reserve(clause.size());
            for (Lit x : clause)
                if (x != ~l)
                    reduced.push_back(x);
            if (reduced.empty())
                return false;
            out.push_back(std::move(reduced));
        }
        return true;
    }

    /**
     * Unit-propagate to fixpoint.  Collects the implied literal nodes in
     * `units`; @return false on contradiction.
     */
    bool propagate(Residual &residual, std::vector<NnfId> &units)
    {
        bool changed = true;
        while (changed) {
            changed = false;
            for (const auto &clause : residual) {
                if (clause.size() != 1)
                    continue;
                Lit u = clause[0];
                Residual next;
                if (!applyLit(residual, u, next))
                    return false;
                units.push_back(litNode(u));
                ++graph_.stats_.unitPropagations;
                residual = std::move(next);
                changed = true;
                break;
            }
        }
        return true;
    }

    static std::vector<uint32_t> canonicalKey(const Residual &residual)
    {
        std::vector<std::vector<uint32_t>> rows;
        rows.reserve(residual.size());
        for (const auto &clause : residual) {
            std::vector<uint32_t> row;
            row.reserve(clause.size());
            for (Lit l : clause)
                row.push_back(l.code());
            std::sort(row.begin(), row.end());
            rows.push_back(std::move(row));
        }
        std::sort(rows.begin(), rows.end());
        std::vector<uint32_t> key;
        for (auto &row : rows) {
            key.insert(key.end(), row.begin(), row.end());
            key.push_back(~0u);
        }
        return key;
    }

    /** Partition clause indices into variable-connected components. */
    static std::vector<std::vector<size_t>>
    components(const Residual &residual)
    {
        // Union-find over variables appearing in the residual.
        std::unordered_map<uint32_t, uint32_t> parent;
        std::function<uint32_t(uint32_t)> find =
            [&](uint32_t v) -> uint32_t {
            auto it = parent.find(v);
            if (it == parent.end()) {
                parent[v] = v;
                return v;
            }
            if (it->second == v)
                return v;
            uint32_t r = find(it->second);
            parent[v] = r;
            return r;
        };
        for (const auto &clause : residual) {
            uint32_t first = find(clause[0].var());
            for (size_t i = 1; i < clause.size(); ++i)
                parent[find(clause[i].var())] = first;
        }
        std::unordered_map<uint32_t, size_t> group;
        std::vector<std::vector<size_t>> comps;
        for (size_t ci = 0; ci < residual.size(); ++ci) {
            uint32_t r = find(residual[ci][0].var());
            auto it = group.find(r);
            if (it == group.end()) {
                group[r] = comps.size();
                comps.push_back({ci});
            } else {
                comps[it->second].push_back(ci);
            }
        }
        return comps;
    }

    /** Most frequently occurring variable in the residual. */
    static uint32_t pickBranchVar(const Residual &residual)
    {
        std::unordered_map<uint32_t, uint32_t> count;
        for (const auto &clause : residual)
            for (Lit l : clause)
                ++count[l.var()];
        uint32_t best_var = residual[0][0].var();
        uint32_t best = 0;
        for (auto [var, c] : count) {
            if (c > best || (c == best && var < best_var)) {
                best = c;
                best_var = var;
            }
        }
        return best_var;
    }

    NnfId compile(Residual residual)
    {
        std::vector<NnfId> units;
        if (!propagate(residual, units))
            return falseNode_;
        if (residual.empty())
            return makeAnd(std::move(units));

        auto key = canonicalKey(residual);
        auto it = cache_.find(key);
        if (it != cache_.end()) {
            ++graph_.stats_.cacheHits;
            units.push_back(it->second);
            return makeAnd(std::move(units));
        }

        NnfId result;
        auto comps = components(residual);
        if (comps.size() > 1) {
            ++graph_.stats_.componentSplits;
            std::vector<NnfId> parts;
            for (const auto &comp : comps) {
                Residual sub;
                sub.reserve(comp.size());
                for (size_t ci : comp)
                    sub.push_back(residual[ci]);
                parts.push_back(compile(std::move(sub)));
            }
            result = makeAnd(std::move(parts));
        } else {
            uint32_t var = pickBranchVar(residual);
            ++graph_.stats_.decisions;
            Lit pos = Lit::make(var, false);

            NnfId branch[2];
            for (int sign = 0; sign < 2; ++sign) {
                Lit l = sign ? ~pos : pos;
                Residual sub;
                if (!applyLit(residual, l, sub)) {
                    branch[sign] = falseNode_;
                    continue;
                }
                branch[sign] = makeAnd({litNode(l), compile(std::move(sub))});
            }
            bool pos_dead =
                graph_.nodes_[branch[0]].type == NnfType::False;
            bool neg_dead =
                graph_.nodes_[branch[1]].type == NnfType::False;
            if (pos_dead && neg_dead)
                result = falseNode_;
            else if (pos_dead)
                result = branch[1];
            else if (neg_dead)
                result = branch[0];
            else
                result = addNode(
                    {NnfType::Or, Lit(), var, {branch[0], branch[1]}});
        }

        cache_.emplace(std::move(key), result);
        units.push_back(result);
        return makeAnd(std::move(units));
    }

    DnnfGraph graph_;
    NnfId trueNode_ = kInvalidNnf;
    NnfId falseNode_ = kInvalidNnf;
    std::vector<NnfId> litNode_; // indexed by lit code
    std::unordered_map<std::vector<uint32_t>, NnfId, ResidualKeyHash>
        cache_;
};

DnnfGraph
compileToDnnf(const CnfFormula &formula)
{
    DnnfCompiler compiler(formula);
    return compiler.take();
}

double
countModels(const CnfFormula &formula)
{
    return compileToDnnf(formula).modelCount();
}

double
weightedModelCount(const CnfFormula &formula, const LitWeights &weights)
{
    return compileToDnnf(formula).wmc(weights);
}

double
conditionalMarginal(const CnfFormula &formula, const LitWeights &weights,
                    uint32_t var)
{
    DnnfGraph graph = compileToDnnf(formula);
    double z = graph.wmc(weights);
    if (z <= 0.0)
        return -1.0;
    LitWeights conditioned = weights;
    conditioned.neg[var] = 0.0;
    return graph.wmc(conditioned) / z;
}

} // namespace logic
} // namespace reason
