/**
 * @file
 * Tests for the first-order logic substrate: terms, unification,
 * clausification, grounding to propositional CNF, and the resolution
 * prover on textbook theorems.
 */

#include <gtest/gtest.h>

#include "logic/fol.h"
#include "logic/solver.h"

using namespace reason;
using namespace reason::logic;

namespace {

Term
c(const std::string &name)
{
    return Term::constant(name);
}

Term
v(const std::string &name)
{
    return Term::var(name);
}

} // namespace

TEST(Term, ToStringForms)
{
    EXPECT_EQ(v("x").toString(), "?x");
    EXPECT_EQ(c("a").toString(), "a");
    EXPECT_EQ(Term::func("f", {v("x"), c("a")}).toString(), "f(?x,a)");
}

TEST(Unify, VariableBindsToConstant)
{
    auto s = unify(v("x"), c("a"));
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(applySubst(v("x"), *s), c("a"));
}

TEST(Unify, FunctionArgumentsUnify)
{
    Term f1 = Term::func("f", {v("x"), c("b")});
    Term f2 = Term::func("f", {c("a"), v("y")});
    auto s = unify(f1, f2);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(applySubst(f1, *s), applySubst(f2, *s));
}

TEST(Unify, OccursCheckRejects)
{
    Term fx = Term::func("f", {v("x")});
    EXPECT_FALSE(unify(v("x"), fx).has_value());
}

TEST(Unify, MismatchedFunctorsFail)
{
    EXPECT_FALSE(unify(c("a"), c("b")).has_value());
    EXPECT_FALSE(unify(Term::func("f", {c("a")}),
                       Term::func("g", {c("a")}))
                     .has_value());
}

TEST(Unify, ChainedSubstitutionResolves)
{
    auto s = unify(v("x"), v("y"));
    ASSERT_TRUE(s.has_value());
    auto s2 = unify(v("y"), c("a"), *s);
    ASSERT_TRUE(s2.has_value());
    EXPECT_EQ(applySubst(v("x"), *s2), c("a"));
}

TEST(Clausify, ImplicationBecomesDisjunction)
{
    // P -> Q  ==>  {~P, Q}
    auto f = FolFormula::implies(FolFormula::pred("P"),
                                 FolFormula::pred("Q"));
    auto clauses = clausify(f);
    ASSERT_EQ(clauses.size(), 1u);
    ASSERT_EQ(clauses[0].size(), 2u);
}

TEST(Clausify, IffProducesTwoClauses)
{
    auto f = FolFormula::iff(FolFormula::pred("P"),
                             FolFormula::pred("Q"));
    auto clauses = clausify(f);
    EXPECT_EQ(clauses.size(), 2u);
}

TEST(Clausify, DistributionOverConjunction)
{
    // P | (Q & R)  ==>  {P,Q}, {P,R}
    auto f = FolFormula::lor(
        FolFormula::pred("P"),
        FolFormula::land(FolFormula::pred("Q"), FolFormula::pred("R")));
    auto clauses = clausify(f);
    EXPECT_EQ(clauses.size(), 2u);
}

TEST(Clausify, SkolemizationIntroducesFunctions)
{
    // forall x. exists y. Loves(x, y): y becomes sk(x).
    auto f = FolFormula::forall(
        "x", FolFormula::exists(
                 "y", FolFormula::pred("Loves", {v("x"), v("y")})));
    auto clauses = clausify(f);
    ASSERT_EQ(clauses.size(), 1u);
    ASSERT_EQ(clauses[0].size(), 1u);
    const FolLiteral &lit = clauses[0][0];
    ASSERT_EQ(lit.args.size(), 2u);
    EXPECT_TRUE(lit.args[0].isVar());
    EXPECT_FALSE(lit.args[1].isVar());
    EXPECT_EQ(lit.args[1].args.size(), 1u); // skolem depends on x
}

TEST(Clausify, NegationPushedThroughQuantifiers)
{
    // ~(forall x. P(x))  ==>  ~P(sk) for a fresh constant sk.
    auto f = FolFormula::lnot(FolFormula::forall(
        "x", FolFormula::pred("P", {v("x")})));
    auto clauses = clausify(f);
    ASSERT_EQ(clauses.size(), 1u);
    ASSERT_EQ(clauses[0].size(), 1u);
    EXPECT_TRUE(clauses[0][0].negated);
    EXPECT_FALSE(clauses[0][0].args[0].isVar());
}

TEST(Grounder, EnumeratesDomain)
{
    // forall x. P(x): over {a, b} -> two unit clauses.
    auto f =
        FolFormula::forall("x", FolFormula::pred("P", {v("x")}));
    Grounder g({"a", "b"});
    CnfFormula cnf = g.ground(clausify(f));
    EXPECT_EQ(cnf.numClauses(), 2u);
    EXPECT_EQ(g.numAtoms(), 2u);
    EXPECT_EQ(solveCnf(cnf), SolveResult::Sat);
}

TEST(Grounder, EntailmentViaSat)
{
    // Theory: forall x. Man(x) -> Mortal(x);  Man(socrates).
    // Query: Mortal(socrates).  Theory + ~query must be UNSAT.
    auto rule = FolFormula::forall(
        "x", FolFormula::implies(
                 FolFormula::pred("Man", {v("x")}),
                 FolFormula::pred("Mortal", {v("x")})));
    auto fact = FolFormula::pred("Man", {c("socrates")});
    auto query = FolFormula::pred("Mortal", {c("socrates")});

    auto clauses = clausify({rule, fact, FolFormula::lnot(query)});
    Grounder g({"socrates", "plato"});
    CnfFormula cnf = g.ground(clauses);
    EXPECT_EQ(solveCnf(cnf), SolveResult::Unsat);

    // Without the negated query the theory is satisfiable.
    Grounder g2({"socrates", "plato"});
    CnfFormula cnf2 = g2.ground(clausify({rule, fact}));
    EXPECT_EQ(solveCnf(cnf2), SolveResult::Sat);
}

TEST(Resolution, SocratesIsMortal)
{
    auto rule = FolFormula::forall(
        "x", FolFormula::implies(
                 FolFormula::pred("Man", {v("x")}),
                 FolFormula::pred("Mortal", {v("x")})));
    auto fact = FolFormula::pred("Man", {c("socrates")});
    auto query = FolFormula::pred("Mortal", {c("socrates")});
    ResolutionResult r = resolutionProve({rule, fact}, query);
    EXPECT_TRUE(r.proved);
}

TEST(Resolution, DoesNotProveUnrelatedGoal)
{
    auto fact = FolFormula::pred("Man", {c("socrates")});
    auto query = FolFormula::pred("Mortal", {c("socrates")});
    ResolutionResult r = resolutionProve({fact}, query, 2000);
    EXPECT_FALSE(r.proved);
}

TEST(Resolution, TransitivityChain)
{
    // parent(a,b), parent(b,c), forall x,y,z: parent(x,y) &
    // parent(y,z) -> grandparent(x,z).  Prove grandparent(a,c).
    auto rule = FolFormula::forall(
        "x",
        FolFormula::forall(
            "y",
            FolFormula::forall(
                "z",
                FolFormula::implies(
                    FolFormula::land(
                        FolFormula::pred("parent", {v("x"), v("y")}),
                        FolFormula::pred("parent", {v("y"), v("z")})),
                    FolFormula::pred("grandparent",
                                     {v("x"), v("z")})))));
    auto f1 = FolFormula::pred("parent", {c("a"), c("b")});
    auto f2 = FolFormula::pred("parent", {c("b"), c("c")});
    auto goal = FolFormula::pred("grandparent", {c("a"), c("c")});
    ResolutionResult r = resolutionProve({rule, f1, f2}, goal);
    EXPECT_TRUE(r.proved);
    EXPECT_GT(r.resolutionSteps, 0u);
}

TEST(Resolution, ExistentialWitness)
{
    // P(a) proves exists x. P(x).
    auto fact = FolFormula::pred("P", {c("a")});
    auto goal =
        FolFormula::exists("x", FolFormula::pred("P", {v("x")}));
    EXPECT_TRUE(resolutionProve({fact}, goal).proved);
}

TEST(Resolution, RefuteEmptyClauseImmediately)
{
    std::vector<FolClause> clauses;
    clauses.push_back({}); // empty clause
    EXPECT_TRUE(resolutionRefute(std::move(clauses)).proved);
}

TEST(Resolution, SaturatesOnConsistentSet)
{
    std::vector<FolClause> clauses;
    clauses.push_back({FolLiteral{false, "P", {c("a")}}});
    clauses.push_back({FolLiteral{false, "Q", {c("b")}}});
    ResolutionResult r = resolutionRefute(std::move(clauses));
    EXPECT_FALSE(r.proved);
    EXPECT_TRUE(r.saturated);
}
