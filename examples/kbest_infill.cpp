/**
 * @file
 * Ctrl-G-style constrained infilling with ranked alternatives.
 *
 * A banded HMM stands in for the sequence model of a text-infilling
 * agent.  Hard constraints pin keyword states at fixed positions; the
 * example decodes the best constrained completion, ranks the top-k
 * unconstrained alternatives, and reports how much probability mass the
 * constraints retain — the quantity Ctrl-G uses to steer the LLM.
 */

#include <cmath>
#include <cstdio>

#include "hmm/constrained.h"
#include "hmm/hmm.h"
#include "util/rng.h"

using namespace reason;
using namespace reason::hmm;

namespace {

void
printPath(const char *label, const std::vector<uint32_t> &path,
          double log_prob)
{
    std::printf("%s [", label);
    for (size_t t = 0; t < path.size(); ++t)
        std::printf("%s%u", t ? " " : "", path[t]);
    std::printf("]  logP = %.3f\n", log_prob);
}

} // namespace

int
main()
{
    Rng rng(2026);

    // 12 latent "topic" states, 20 observable tokens, band-1 dynamics:
    // the structure of a constrained-decoding model.
    Hmm model = Hmm::banded(rng, 12, 20, 1, 0.4);

    // A 10-token observation window to infill.
    Sequence obs;
    std::vector<uint32_t> true_states;
    model.sample(rng, 10, &obs, &true_states);

    std::printf("observed tokens:");
    for (uint32_t o : obs)
        std::printf(" %u", o);
    std::printf("\n\n");

    // Unconstrained: the 4 most probable completions.
    std::printf("top-4 unconstrained completions:\n");
    auto ranked = kBestPaths(model, obs, 4);
    for (size_t i = 0; i < ranked.size(); ++i)
        printPath("  ", ranked[i].path, ranked[i].logProb);

    // Ctrl-G constraint: the infill must pass through keyword state 6
    // at position 4 and must not open in state 0.
    DecodeConstraints dc;
    dc.required.push_back({4, 6});
    dc.forbidden.push_back({0, 0});

    ViterbiResult best = constrainedViterbi(model, obs, dc);
    std::printf("\nconstrained best completion:\n");
    if (best.path.empty()) {
        std::printf("  infeasible under the constraints\n");
    } else {
        printPath("  ", best.path, best.logProb);
        std::printf("  honors keyword slot: %s\n",
                    best.path[4] == 6 ? "yes" : "NO");
    }

    double mass = constraintSatisfactionProbability(model, obs, dc);
    std::printf("\nconstraint satisfaction probability: %.3e\n", mass);
    std::printf("(fraction of posterior path mass meeting the keyword "
                "constraints;\n Ctrl-G multiplies the LLM proposal by "
                "this quantity per step)\n");

    // Posterior (minimum-error) decoding for comparison.
    auto posterior = posteriorDecode(model, obs);
    size_t agree = 0;
    for (size_t t = 0; t < posterior.size(); ++t)
        agree += posterior[t] == true_states[t];
    std::printf("\nposterior decode agreement with generating path: "
                "%zu/%zu positions\n",
                agree, posterior.size());
    return 0;
}
