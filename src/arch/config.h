/**
 * @file
 * Architectural parameters of the REASON accelerator (Fig. 10, Sec. V-F).
 *
 * Defaults reflect the paper's selected configuration: 12 tree PEs of
 * depth D=3 (8 leaf slots, 7 compute nodes each), B=64 register banks of
 * R=32 registers, 1.25 MB local SRAM, 104 GB/s LPDDR5 DRAM, 500 MHz at
 * TSMC 28 nm.
 */

#ifndef REASON_ARCH_CONFIG_H
#define REASON_ARCH_CONFIG_H

#include <cstddef>
#include <cstdint>

#include "compiler/compile.h"

namespace reason {
namespace arch {

/** Full hardware configuration of one REASON instance. */
struct ArchConfig
{
    // Compute fabric.
    uint32_t numPes = 12;
    uint32_t treeDepth = 3; ///< D
    // Register file.
    uint32_t numBanks = 64;   ///< B
    uint32_t regsPerBank = 32; ///< R
    uint32_t bankReadPorts = 2;
    // Memory system.
    uint32_t sramBytes = 1280 * 1024; ///< 1.25 MB local SRAM
    uint32_t sramBanks = 16;
    uint32_t dmaLatencyCycles = 24;  ///< L2/DRAM fetch latency
    double dramBandwidthGBps = 104.0;
    // Symbolic engine.
    uint32_t bcpFifoDepth = 16;
    // Clocking.
    double clockGhz = 0.5;

    /** Cycles for one root-to-leaf broadcast (tree levels + drive). */
    uint32_t broadcastCycles() const { return treeDepth + 1; }
    /** Cycles for one leaf-to-root reduction. */
    uint32_t reductionCycles() const { return treeDepth + 1; }
    /** End-to-end tree pipeline latency for one block. */
    uint32_t pipelineLatency() const { return treeDepth + 3; }

    size_t leavesPerPe() const { return size_t(1) << treeDepth; }
    size_t nodesPerPe() const { return (size_t(1) << treeDepth) - 1; }
    /** Total arithmetic tree nodes across the fabric. */
    size_t totalTreeNodes() const { return numPes * nodesPerPe(); }

    /** Seconds per cycle. */
    double cycleSeconds() const { return 1e-9 / clockGhz; }

    /** Matching compiler target. */
    compiler::TargetConfig
    compilerTarget() const
    {
        compiler::TargetConfig t;
        t.treeDepth = treeDepth;
        t.numPes = numPes;
        t.numBanks = numBanks;
        t.regsPerBank = regsPerBank;
        return t;
    }
};

} // namespace arch
} // namespace reason

#endif // REASON_ARCH_CONFIG_H
