/**
 * @file
 * Fig. 13 reproduction: REASON vs ML accelerators (TPU-like systolic
 * array, DPU-like tree array) across the six neuro-symbolic workloads:
 * neural-only, symbolic-only (logical/probabilistic), and end-to-end
 * normalized runtime.
 *
 * Paper shape: neural-only TPU ≈ 0.69x, DPU ≈ 4.3x; symbolic-only
 * TPU ≈ 75-110x, DPU ≈ 5-25x; end-to-end TPU ≈ 2.9-9.8x,
 * DPU ≈ 2.2-23x (REASON = 1.0).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "sys/system.h"
#include "util/table.h"
#include "workloads/timing.h"
#include "workloads/workloads.h"

using namespace reason;
using workloads::DatasetId;
using workloads::WorkloadId;

namespace {

void
BM_SymbolicCostAllPlatforms(benchmark::State &state)
{
    workloads::TaskBundle b = workloads::generate(
        DatasetId::CommonGen, workloads::TaskScale::Small, 4);
    workloads::SymbolicOps ops = workloads::measureSymbolicOps(b);
    for (auto _ : state) {
        for (auto p : {sys::Platform::ReasonAccel,
                       sys::Platform::TpuLike, sys::Platform::DpuLike})
            benchmark::DoNotOptimize(sys::symbolicCost(p, ops).seconds);
    }
}
BENCHMARK(BM_SymbolicCostAllPlatforms);

/** Representative dataset per workload (Fig. 13's x-axis). */
DatasetId
datasetFor(WorkloadId w)
{
    switch (w) {
      case WorkloadId::AlphaGeo: return DatasetId::IMO;
      case WorkloadId::R2Guard: return DatasetId::TwinSafety;
      case WorkloadId::GeLaTo: return DatasetId::CommonGen;
      case WorkloadId::CtrlG: return DatasetId::CoAuthor;
      case WorkloadId::NeuroPC: return DatasetId::AwA2;
      case WorkloadId::Linc: return DatasetId::FOLIO;
    }
    return DatasetId::IMO;
}

void
printFig13()
{
    arch::ArchConfig cfg;
    Table neural({"Workload", "TPU-like", "DPU-like", "REASON"});
    Table symbolic({"Workload", "TPU-like", "DPU-like", "REASON"});
    Table end2end({"Workload", "TPU-like", "DPU-like", "REASON"});

    for (WorkloadId w : workloads::allWorkloads()) {
        workloads::TaskBundle b = workloads::generate(
            datasetFor(w), workloads::TaskScale::Small, 17);
        workloads::SymbolicOps ops =
            workloads::measureSymbolicOps(b, true);

        // Neural-only: small-model SpMSpM-mode rates (Sec. V-B).
        double n_reason = 1.0 / sys::accelNeuralMacsPerSec(
                                    sys::Platform::ReasonAccel, cfg);
        double n_tpu = 1.0 / sys::accelNeuralMacsPerSec(
                                 sys::Platform::TpuLike, cfg);
        double n_dpu = 1.0 / sys::accelNeuralMacsPerSec(
                                 sys::Platform::DpuLike, cfg);
        neural.addRow({workloads::workloadName(w),
                       Table::num(n_tpu / n_reason, 2),
                       Table::num(n_dpu / n_reason, 2), "1.00"});

        // Symbolic-only.
        double s_reason =
            sys::symbolicCost(sys::Platform::ReasonAccel, ops).seconds;
        double s_tpu =
            sys::symbolicCost(sys::Platform::TpuLike, ops).seconds;
        double s_dpu =
            sys::symbolicCost(sys::Platform::DpuLike, ops).seconds;
        symbolic.addRow({workloads::workloadName(w),
                         Table::num(s_tpu / s_reason, 1),
                         Table::num(s_dpu / s_reason, 1), "1.0"});

        // End-to-end: the neural stage is sized so that on REASON the
        // neural/symbolic split matches the paper's measured fraction;
        // each accelerator then runs both stages back to back.
        double neural_s_reason = s_reason * b.neuralFractionA6000 /
                                 (1.0 - b.neuralFractionA6000);
        double e_reason = neural_s_reason + s_reason;
        double e_tpu =
            neural_s_reason * (n_tpu / n_reason) + s_tpu;
        double e_dpu =
            neural_s_reason * (n_dpu / n_reason) + s_dpu;
        end2end.addRow({workloads::workloadName(w),
                        Table::num(e_tpu / e_reason, 2),
                        Table::num(e_dpu / e_reason, 2), "1.00"});
    }

    std::printf("\n");
    neural.print("Fig. 13 (left) — neural-only normalized runtime "
                 "(paper: TPU ~0.69x, DPU ~4.3x)");
    std::printf("\n");
    symbolic.print("Fig. 13 (middle) — symbolic-only normalized "
                   "runtime (paper: TPU ~75-110x, DPU ~5-25x)");
    std::printf("\n");
    end2end.print("Fig. 13 (right) — end-to-end normalized runtime "
                  "(paper: TPU ~2.9-9.8x, DPU ~2.2-23x)");
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printFig13();
    return 0;
}
