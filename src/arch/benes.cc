#include "arch/benes.h"

#include <algorithm>

#include "util/logging.h"

namespace reason {
namespace arch {

BenesNetwork::BenesNetwork(uint32_t log2_n) : log2N_(log2_n)
{
    reasonAssert(log2_n >= 1 && log2_n <= 16,
                 "Benes size must be 2..65536 endpoints");
}

void
BenesNetwork::routeRecursive(const std::vector<uint32_t> &dest,
                             const std::vector<uint32_t> &inputs,
                             uint32_t first_stage, uint32_t last_stage,
                             uint32_t offset,
                             std::vector<std::vector<bool>> &settings) const
{
    const uint32_t n = static_cast<uint32_t>(dest.size());
    (void)inputs;
    if (n == 2) {
        reasonAssert(first_stage == last_stage, "base block is one stage");
        settings[first_stage][offset / 2] = (dest[0] == 1);
        return;
    }

    // Inverse permutation within the block.
    std::vector<uint32_t> src(n);
    for (uint32_t i = 0; i < n; ++i)
        src[dest[i]] = i;

    // Looping algorithm: assign each block input to the upper (true) or
    // lower (false) subnetwork such that paired inputs and paired
    // outputs split across subnetworks.
    std::vector<int8_t> up(n, -1);
    for (uint32_t p = 0; p < n; ++p) {
        if (up[p] != -1)
            continue;
        uint32_t cur = p;
        bool flag = true;
        while (true) {
            up[cur] = flag ? 1 : 0;
            uint32_t partner = cur ^ 1u;
            up[partner] = flag ? 0 : 1;
            uint32_t out_partner = dest[partner] ^ 1u;
            uint32_t nxt = src[out_partner];
            if (up[nxt] != -1) {
                reasonAssert(up[nxt] == (flag ? 1 : 0),
                             "looping algorithm produced a conflict");
                break;
            }
            cur = nxt;
        }
    }

    // Input-stage switches: straight when even port goes upper.
    const uint32_t half = n / 2;
    for (uint32_t w = 0; w < half; ++w)
        settings[first_stage][offset / 2 + w] = (up[2 * w] == 0);

    // Output-stage switches: straight when even output comes from upper.
    for (uint32_t w = 0; w < half; ++w) {
        bool even_from_upper = (up[src[2 * w]] == 1);
        settings[last_stage][offset / 2 + w] = !even_from_upper;
    }

    // Sub-permutations: the up-assigned input of switch w enters the
    // upper subnetwork at port w and must leave at port dest[.]/2.
    std::vector<uint32_t> upper_dest(half), lower_dest(half);
    for (uint32_t w = 0; w < half; ++w) {
        uint32_t in_even = 2 * w;
        uint32_t in_odd = 2 * w + 1;
        uint32_t up_in = (up[in_even] == 1) ? in_even : in_odd;
        uint32_t low_in = (up[in_even] == 1) ? in_odd : in_even;
        upper_dest[w] = dest[up_in] / 2;
        lower_dest[w] = dest[low_in] / 2;
    }

    std::vector<uint32_t> dummy;
    routeRecursive(upper_dest, dummy, first_stage + 1, last_stage - 1,
                   offset, settings);
    routeRecursive(lower_dest, dummy, first_stage + 1, last_stage - 1,
                   offset + half, settings);
}

std::vector<std::vector<bool>>
BenesNetwork::route(const std::vector<uint32_t> &dest) const
{
    const uint32_t n = numEndpoints();
    reasonAssert(dest.size() == n, "permutation size mismatch");
    std::vector<bool> seen(n, false);
    for (uint32_t d : dest) {
        reasonAssert(d < n && !seen[d], "dest must be a permutation");
        seen[d] = true;
    }
    std::vector<std::vector<bool>> settings(
        numStages(), std::vector<bool>(n / 2, false));
    std::vector<uint32_t> dummy;
    routeRecursive(dest, dummy, 0, numStages() - 1, 0, settings);
    return settings;
}

namespace {

/** Recursive evaluation mirroring the wiring in routeRecursive. */
std::vector<uint32_t>
evalBlock(const std::vector<std::vector<bool>> &settings,
          uint32_t first_stage, uint32_t last_stage, uint32_t offset,
          std::vector<uint32_t> values)
{
    const uint32_t n = static_cast<uint32_t>(values.size());
    if (n == 2) {
        if (settings[first_stage][offset / 2])
            std::swap(values[0], values[1]);
        return values;
    }
    const uint32_t half = n / 2;
    std::vector<uint32_t> upper_in(half), lower_in(half);
    for (uint32_t w = 0; w < half; ++w) {
        bool crossed = settings[first_stage][offset / 2 + w];
        uint32_t even = values[2 * w];
        uint32_t odd = values[2 * w + 1];
        // straight: even -> upper, odd -> lower.
        upper_in[w] = crossed ? odd : even;
        lower_in[w] = crossed ? even : odd;
    }
    auto upper_out = evalBlock(settings, first_stage + 1, last_stage - 1,
                               offset, std::move(upper_in));
    auto lower_out = evalBlock(settings, first_stage + 1, last_stage - 1,
                               offset + half, std::move(lower_in));
    std::vector<uint32_t> out(n);
    for (uint32_t w = 0; w < half; ++w) {
        bool crossed = settings[last_stage][offset / 2 + w];
        // straight: upper -> even output, lower -> odd output.
        out[2 * w] = crossed ? lower_out[w] : upper_out[w];
        out[2 * w + 1] = crossed ? upper_out[w] : lower_out[w];
    }
    return out;
}

} // namespace

std::vector<uint32_t>
BenesNetwork::evaluate(
    const std::vector<std::vector<bool>> &settings) const
{
    reasonAssert(settings.size() == numStages(), "settings stage mismatch");
    std::vector<uint32_t> values(numEndpoints());
    for (uint32_t i = 0; i < numEndpoints(); ++i)
        values[i] = i;
    return evalBlock(settings, 0, numStages() - 1, 0, std::move(values));
}

bool
BenesNetwork::verifyPermutation(const std::vector<uint32_t> &dest) const
{
    auto settings = route(dest);
    auto arrived = evaluate(settings);
    // arrived[o] = input index delivered to output o.
    for (uint32_t i = 0; i < numEndpoints(); ++i)
        if (arrived[dest[i]] != i)
            return false;
    return true;
}

} // namespace arch
} // namespace reason
