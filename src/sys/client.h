/**
 * @file
 * sys::Client — a resilient wire-protocol client for the socket
 * serving front-end (sys::SocketServer), extracted from the
 * `reason_cli bench-client` loop so tests, benchmarks, and tools
 * share one hardened implementation.
 *
 * The client pipelines queries over one TCP connection and survives
 * transport failure:
 *
 *  - **Reconnect with capped exponential backoff.**  Any transport
 *    error (reset, torn frame, EOF, handshake timeout) tears the
 *    connection down and reconnects, waiting
 *    min(cap, base * 2^k) + deterministic LCG jitter between
 *    consecutive failures.  `maxRetries` bounds *consecutive*
 *    failures without progress; any answered query resets the count.
 *  - **Idempotent retry.**  Unanswered in-flight queries are re-sent
 *    on the new connection under the same query id.  The client's
 *    nonzero clientId (sent in Hello, protocol v3) lets the server
 *    suppress duplicate execution and replay the cached answer, so a
 *    retry can never produce a different — or double-executed —
 *    result.
 *  - **Per-query deadlines.**  A relative deadline travels in each
 *    Submit (the server expires queued work) *and* caps the client's
 *    whole retry loop for that query: when it passes unanswered, the
 *    outcome is REASON_ERR_DEADLINE_EXCEEDED.  0 disables.
 *  - **Typed errors, never hangs.**  Every query ends in exactly one
 *    of: a successful result (bitwise-identical to a fault-free run),
 *    an authoritative server error (never retried — the server
 *    answered), or a client-side error (kClientErrTransport /
 *    kClientErrVersionMismatch).  Receive waits are bounded, so a
 *    silent peer cannot wedge the loop.
 *
 * Single-threaded: runBatch drives send and receive from one thread
 * with bounded receive waits — no reader thread, no shared state.
 */

#ifndef REASON_SYS_CLIENT_H
#define REASON_SYS_CLIENT_H

#include "sys/net.h"

#if REASON_HAS_SOCKETS

#include <cstdint>
#include <string>
#include <vector>

#include "pc/pc.h"
#include "sys/wire.h"

namespace reason {
namespace sys {

/**
 * Client-side error codes, disjoint from the engine's ReasonError
 * range so an outcome's provenance is unambiguous.
 */
enum ClientError : int
{
    /** Transport gave out: reconnect budget exhausted mid-query. */
    kClientErrTransport = -100,
    /** Server speaks a different protocol version (authoritative —
     *  reconnecting cannot fix it). */
    kClientErrVersionMismatch = -101
};

/** Connection and resilience knobs of a Client. */
struct ClientOptions
{
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    /**
     * Stable client identity for idempotent retry (Hello, v3).
     * 0 = anonymous: the server will re-execute re-sent ids (still
     * bit-identical answers — execution is deterministic — but
     * without duplicate suppression).
     */
    uint64_t clientId = 0;
    /** Max in-flight queries on the connection. */
    size_t pipeline = 16;
    /** Consecutive transport failures tolerated without progress. */
    unsigned maxRetries = 16;
    /** Exponential backoff: base delay and cap (milliseconds). */
    unsigned backoffBaseMs = 5;
    unsigned backoffCapMs = 500;
    /** Seed of the deterministic backoff jitter. */
    uint64_t seed = 1;
    /** Accuracy budget of every query (0 = exact tier). */
    double budget = 0.0;
    /**
     * Per-query relative deadline in nanoseconds; travels on the wire
     * and caps the client-side retry loop.  0 = none.
     */
    uint64_t deadlineNs = 0;
    /** Handshake / receive-wait bound (milliseconds). */
    unsigned recvTimeoutMs = 2000;
};

/** Final state of one query after runBatch. */
struct QueryOutcome
{
    /** REASON_OK, a server-side ReasonError, or a ClientError. */
    int error = kClientErrTransport;
    double value = 0.0;
    /** Approximate tier: certified interval endpoints. */
    double boundLo = 0.0;
    double boundHi = 0.0;
    uint8_t tier = 0;
    /**
     * End-to-end latency of a server-answered query: first send to
     * answer, retries and reconnects included.  0 when never answered.
     */
    uint64_t latencyNs = 0;
};

/** Resilience telemetry accumulated across runBatch calls. */
struct ClientStats
{
    /** Successful (re)connections, the first one included. */
    uint64_t connects = 0;
    /** Connection attempts that failed before the handshake held. */
    uint64_t connectFailures = 0;
    /** Submits re-sent after a reconnect (idempotent retries). */
    uint64_t retriesSent = 0;
    /** Transport errors observed on an established connection. */
    uint64_t transportErrors = 0;
};

/**
 * The resilient client.  Not thread-safe: one Client per thread.
 * runBatch may be called repeatedly; the connection persists between
 * calls.
 */
class Client
{
  public:
    explicit Client(const ClientOptions &options);
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Drive every query to a terminal outcome (see file comment).
     * `outcomes` is resized to match.  Query ids on the wire are
     * `idBase + index`, so distinct batches of one client must pass
     * distinct idBase ranges for duplicate suppression to stay
     * correct.  Returns true when every outcome is a successful
     * result or an authoritative server error (i.e. no client-side
     * transport/version failures).
     */
    bool runBatch(const std::vector<pc::Assignment> &queries,
                  std::vector<QueryOutcome> *outcomes,
                  uint64_t idBase = 0);

    /**
     * Heartbeat: send Ping, wait for the matching Pong on a healthy
     * connection (connecting first if needed).  False on transport
     * failure or timeout.
     */
    bool ping(uint64_t token);

    ClientStats stats() const { return stats_; }

  private:
    bool ensureConnected();
    void disconnect();

    ClientOptions options_;
    int fd_ = -1;
    wire::FrameDecoder decoder_;
    uint64_t jitterLcg_ = 0;
    unsigned consecutiveFailures_ = 0;
    bool versionMismatch_ = false;
    ClientStats stats_;
};

} // namespace sys
} // namespace reason

#endif // REASON_HAS_SOCKETS

#endif // REASON_SYS_CLIENT_H
