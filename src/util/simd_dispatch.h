/**
 * @file
 * Runtime ISA dispatch for the hot SIMD kernels.
 *
 * simd.h selects its backend at *compile* time, which leaves a default
 * (portable) binary on the SSE2 floor even when the host CPU has AVX2
 * or AVX-512.  This layer fixes that: the same kernels are compiled
 * again in dedicated per-ISA translation units
 * (util/simd_kernels_{avx2,avx512}.cc, built with -mavx2 / -mavx512f
 * and isolated by the ABI inline namespaces of simd.h/numeric.h), each
 * exposing a table of C function pointers through an always-defined
 * accessor (an explicit symbol reference, not static-init
 * registration, which a static-library link would dead-strip along
 * with the unreferenced object file).  At first use, activeKernels()
 * CPUID-gates the candidate tables (__builtin_cpu_supports) and picks
 * the widest one the host can run; the baseline table — whatever ISA
 * the rest of the binary targets — is always available as the floor.
 *
 * Dispatch is safe *because of* the bit-exactness contract of simd.h:
 * every backend produces bit-identical results, so the choice of table
 * affects speed only, never output.  Callers on the block hot path
 * hoist `const KernelTable &k = activeKernels()` once and then pay one
 * indirect call per kernel invocation.
 *
 * The dispatched surface is the array-shaped serving hot path (sum
 * layers, gather logsumexp, flow exp-multiplies, reduction merges).
 * Lane-op-heavy code that inlines pack primitives directly (the HMM
 * leaf batches, core/flat.cc) keeps the compile-time backend — a
 * function-pointer boundary per lane op would cost more than the wider
 * registers buy; REASON_NATIVE builds (one CI leg) cover those at full
 * width.
 */

#ifndef REASON_UTIL_SIMD_DISPATCH_H
#define REASON_UTIL_SIMD_DISPATCH_H

#include <cstddef>

namespace reason {
namespace simd {

/**
 * One ISA's kernel entry points.  All functions follow the exact
 * semantics of their simd.h namesakes; sumLayerBlockStaged writes the
 * 8-lane result pack to `out` (kLanes doubles) instead of returning a
 * Pack, since Pack types differ per ABI namespace and must not cross
 * this boundary.
 */
struct KernelTable
{
    /** Backend name: "avx512f", "avx2", "sse2", "neon", "scalar". */
    const char *isa;
    double (*logSumExpMasked)(const double *xs, size_t n);
    void (*expMulOrZero)(const double *args, const double *scale,
                         double *out, size_t n);
    void (*addInto)(double *dst, const double *src, size_t n);
    void (*sumLayerBlockStaged)(size_t fanin, const double *terms,
                                double *out);
};

/**
 * The widest CPUID-supported kernel table in this binary, selected
 * once on first call (thread-safe; subsequent calls are a load).
 */
const KernelTable &activeKernels();

/** ISA name of the runtime-selected kernels (activeKernels().isa). */
const char *activeIsaName();

/**
 * All tables this binary carries that the host CPU can run, baseline
 * first (for the cross-ISA agreement tests).  Writes up to `maxOut`
 * pointers into `out`; returns the count written.
 */
size_t runnableKernelTables(const KernelTable **out, size_t maxOut);

namespace detail {

/**
 * Per-ISA table accessors, defined (always, so the dispatcher can
 * reference them unconditionally) by the kernel TUs; nullptr when the
 * table is compiled out — wrong architecture, toolchain without the
 * ISA, scalar-forced build, or subsumed by a wider baseline.
 */
const KernelTable *avx2KernelTable();
const KernelTable *avx512KernelTable();

} // namespace detail

} // namespace simd
} // namespace reason

#endif // REASON_UTIL_SIMD_DISPATCH_H
