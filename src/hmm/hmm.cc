#include "hmm/hmm.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/numeric.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/simd.h"

namespace reason {
namespace hmm {

namespace {

// ---------------------------------------------------------------------------
// SIMD-width leaf batching (util/simd.h).
//
// The forward/backward inner loops are restructured so every lane's
// accumulation order matches the seed scalar loops exactly — the
// vectorized passes are **bit-identical** to the reference recurrences
// (asserted by bench_eval's hmm_leaf_batch variant):
//
//  - leaf (emission) scoring reads one contiguous "emission column"
//    per observed symbol from the transposed table emitT[sym*N + s]
//    instead of a stride-numSymbols gather;
//  - the forward matvec runs i-outer/j-vector (a rank-1 update), so
//    each next[j] still accumulates prev[i]*trans(i,j) in ascending i
//    order;
//  - the backward matvec runs j-outer/i-vector over the transposed
//    transitions, so each bt[i] still accumulates
//    (trans(i,j)*emit)*beta in ascending j order with the reference
//    association;
//  - scaling sums stay scalar left folds; the divisions are
//    lane-parallel (identical per-lane rounding).
// ---------------------------------------------------------------------------

/** emitT[sym * N + s] = emission(s, sym). */
void
buildEmissionColumns(const Hmm &hmm, std::vector<double> &emit_t)
{
    const uint32_t N = hmm.numStates();
    const uint32_t M = hmm.numSymbols();
    emit_t.resize(size_t(M) * N);
    for (uint32_t s = 0; s < N; ++s) {
        const double *row = hmm.emissionRow(s);
        for (uint32_t m = 0; m < M; ++m)
            emit_t[size_t(m) * N + s] = row[m];
    }
}

/** transT[j * N + i] = transition(i, j). */
void
buildTransitionColumns(const Hmm &hmm, std::vector<double> &trans_t)
{
    const uint32_t N = hmm.numStates();
    trans_t.resize(size_t(N) * N);
    for (uint32_t i = 0; i < N; ++i) {
        const double *row = hmm.transitionRow(i);
        for (uint32_t j = 0; j < N; ++j)
            trans_t[size_t(j) * N + i] = row[j];
    }
}

/** Scalar left-fold sum in ascending index order (the scaling sums
 *  are order-sensitive and stay bit-identical to the seed loop). */
inline double
sumRow(const double *p, size_t n)
{
    double c = 0.0;
    for (size_t i = 0; i < n; ++i)
        c += p[i];
    return c;
}

/** p[i] /= c lane-parallel (per-lane rounding identical to scalar). */
inline void
divideRow(double *p, double c, size_t n)
{
    const simd::Pack d = simd::splat(c);
    size_t i = 0;
    for (; i + simd::kLanes <= n; i += simd::kLanes)
        simd::store(p + i, simd::div(simd::load(p + i), d));
    if (i < n)
        simd::storeN(p + i, n - i,
                     simd::div(simd::loadN(p + i, n - i, 1.0), d));
}

/**
 * next[j] = (sum_i prev[i] * trans(i, j)) * emitcol[j]: the scaled
 * forward step as an i-outer rank-1 update — each next[j] accumulates
 * in ascending i order, bit-identical to the scalar j-loop.
 */
inline void
forwardStep(const Hmm &hmm, const double *prev, const double *emitcol,
            double *next, uint32_t N)
{
    std::fill_n(next, N, 0.0);
    for (uint32_t i = 0; i < N; ++i) {
        const simd::Pack p = simd::splat(prev[i]);
        const double *row = hmm.transitionRow(i);
        size_t j = 0;
        for (; j + simd::kLanes <= N; j += simd::kLanes)
            simd::store(next + j,
                        simd::add(simd::load(next + j),
                                  simd::mul(p, simd::load(row + j))));
        if (j < N) {
            const size_t r = N - j;
            simd::storeN(
                next + j, r,
                simd::add(simd::loadN(next + j, r, 0.0),
                          simd::mul(p, simd::loadN(row + j, r, 0.0))));
        }
    }
    size_t j = 0;
    for (; j + simd::kLanes <= N; j += simd::kLanes)
        simd::store(next + j,
                    simd::mul(simd::load(next + j),
                              simd::load(emitcol + j)));
    if (j < N) {
        const size_t r = N - j;
        simd::storeN(next + j, r,
                     simd::mul(simd::loadN(next + j, r, 0.0),
                               simd::loadN(emitcol + j, r, 0.0)));
    }
}

/**
 * bt[i] = (sum_j trans(i, j) * emitcol[j] * bnext[j]) / scale: the
 * backward step as a j-outer rank-1 update over the transposed
 * transitions — each bt[i] accumulates in ascending j order with the
 * reference ((trans*emit)*beta) association.
 */
inline void
backwardStep(const double *trans_t, const double *emitcol,
             const double *bnext, double scale, double *bt, uint32_t N)
{
    std::fill_n(bt, N, 0.0);
    for (uint32_t j = 0; j < N; ++j) {
        const simd::Pack eb = simd::splat(emitcol[j]);
        const simd::Pack bn = simd::splat(bnext[j]);
        const double *col = trans_t + size_t(j) * N;
        size_t i = 0;
        for (; i + simd::kLanes <= N; i += simd::kLanes)
            simd::store(
                bt + i,
                simd::add(simd::load(bt + i),
                          simd::mul(simd::mul(simd::load(col + i), eb),
                                    bn)));
        if (i < N) {
            const size_t r = N - i;
            simd::storeN(
                bt + i, r,
                simd::add(
                    simd::loadN(bt + i, r, 0.0),
                    simd::mul(simd::mul(simd::loadN(col + i, r, 0.0),
                                        eb),
                              bn)));
        }
    }
    divideRow(bt, scale, N);
}

} // namespace

Hmm::Hmm(uint32_t num_states, uint32_t num_symbols)
    : numStates_(num_states), numSymbols_(num_symbols),
      initial_(num_states, 1.0 / num_states),
      trans_(size_t(num_states) * num_states, 1.0 / num_states),
      emit_(size_t(num_states) * num_symbols, 1.0 / num_symbols)
{
    reasonAssert(num_states > 0 && num_symbols > 0,
                 "HMM needs states and symbols");
}

void
Hmm::setInitial(std::vector<double> pi)
{
    reasonAssert(pi.size() == numStates_, "initial size mismatch");
    initial_ = std::move(pi);
}

void
Hmm::setTransitionRow(uint32_t from, std::vector<double> row)
{
    reasonAssert(row.size() == numStates_, "transition row size mismatch");
    std::copy(row.begin(), row.end(),
              trans_.begin() + size_t(from) * numStates_);
}

void
Hmm::setEmissionRow(uint32_t state, std::vector<double> row)
{
    reasonAssert(row.size() == numSymbols_, "emission row size mismatch");
    std::copy(row.begin(), row.end(),
              emit_.begin() + size_t(state) * numSymbols_);
}

size_t
Hmm::numActiveTransitions() const
{
    return static_cast<size_t>(
        std::count_if(trans_.begin(), trans_.end(),
                      [](double p) { return p > 0.0; }));
}

size_t
Hmm::numActiveEmissions() const
{
    return static_cast<size_t>(
        std::count_if(emit_.begin(), emit_.end(),
                      [](double p) { return p > 0.0; }));
}

void
Hmm::normalize()
{
    auto normalize_span = [](double *begin, size_t n, const char *what) {
        double total = 0.0;
        for (size_t i = 0; i < n; ++i)
            total += begin[i];
        if (total <= 0.0)
            fatal("%s row has no probability mass", what);
        for (size_t i = 0; i < n; ++i)
            begin[i] /= total;
    };
    normalize_span(initial_.data(), numStates_, "initial");
    for (uint32_t s = 0; s < numStates_; ++s)
        normalize_span(trans_.data() + size_t(s) * numStates_, numStates_,
                       "transition");
    for (uint32_t s = 0; s < numStates_; ++s)
        normalize_span(emit_.data() + size_t(s) * numSymbols_,
                       numSymbols_, "emission");
}

Hmm
Hmm::random(Rng &rng, uint32_t num_states, uint32_t num_symbols,
            double concentration)
{
    Hmm h(num_states, num_symbols);
    h.setInitial(rng.dirichlet(num_states, concentration));
    for (uint32_t s = 0; s < num_states; ++s) {
        h.setTransitionRow(s, rng.dirichlet(num_states, concentration));
        h.setEmissionRow(s, rng.dirichlet(num_symbols, concentration));
    }
    return h;
}

Hmm
Hmm::banded(Rng &rng, uint32_t num_states, uint32_t num_symbols,
            uint32_t band, double concentration)
{
    Hmm h(num_states, num_symbols);
    h.setInitial(rng.dirichlet(num_states, 1.0));
    for (uint32_t s = 0; s < num_states; ++s) {
        std::vector<double> row(num_states, 0.0);
        uint32_t width = 2 * band + 1;
        auto mass = rng.dirichlet(width, concentration);
        for (uint32_t k = 0; k < width; ++k) {
            uint32_t to =
                (s + num_states + k - band) % num_states;
            row[to] += mass[k];
        }
        h.setTransitionRow(s, std::move(row));
        h.setEmissionRow(s, rng.dirichlet(num_symbols, concentration));
    }
    return h;
}

void
Hmm::sample(Rng &rng, size_t length, Sequence *obs,
            std::vector<uint32_t> *states) const
{
    reasonAssert(obs != nullptr, "sample needs an output sequence");
    obs->clear();
    if (states)
        states->clear();
    if (length == 0)
        return;
    uint32_t state = static_cast<uint32_t>(rng.categorical(initial_));
    for (size_t t = 0; t < length; ++t) {
        std::vector<double> erow(
            emit_.begin() + size_t(state) * numSymbols_,
            emit_.begin() + size_t(state + 1) * numSymbols_);
        obs->push_back(static_cast<uint32_t>(rng.categorical(erow)));
        if (states)
            states->push_back(state);
        if (t + 1 < length) {
            std::vector<double> trow(
                trans_.begin() + size_t(state) * numStates_,
                trans_.begin() + size_t(state + 1) * numStates_);
            state = static_cast<uint32_t>(rng.categorical(trow));
        }
    }
}

void
forwardBackwardInto(const Hmm &hmm, const Sequence &obs, FbWorkspace &ws,
                    bool reuse_tables)
{
    const size_t T = obs.size();
    const uint32_t N = hmm.numStates();
    reasonAssert(T > 0, "empty sequence");
    ws.T = T;
    ws.N = N;
    ws.alpha.assign(T * N, 0.0);
    ws.beta.assign(T * N, 0.0);
    ws.gamma.assign(T * N, 0.0);
    ws.xi.assign(T > 1 ? (T - 1) * size_t(N) * N : 0, 0.0);
    ws.scale.assign(T, 0.0);
    // O(N*(N+M)) transpose pair, skipped inside a fixed-model sweep
    // (the caller vouches for unchanged parameters via reuse_tables).
    if (!reuse_tables || ws.emitT.size() !=
                             size_t(hmm.numSymbols()) * N) {
        buildEmissionColumns(hmm, ws.emitT);
        buildTransitionColumns(hmm, ws.transT);
    }
    const double *emit_t = ws.emitT.data();

    double *alpha = ws.alpha.data();
    double *beta = ws.beta.data();
    double *gamma = ws.gamma.data();
    double *xi = ws.xi.data();

    // Forward with per-step scaling.
    {
        const double *init = hmm.initialData();
        const double *e0 = emit_t + size_t(obs[0]) * N;
        for (uint32_t s = 0; s < N; ++s)
            alpha[s] = init[s] * e0[s];
    }
    for (size_t t = 0; t < T; ++t) {
        double *at = alpha + t * N;
        if (t > 0)
            forwardStep(hmm, alpha + (t - 1) * N,
                        emit_t + size_t(obs[t]) * N, at, N);
        const double c = sumRow(at, N);
        if (c <= 0.0) {
            // Observation impossible under the model.
            ws.logLikelihood = kLogZero;
            return;
        }
        ws.scale[t] = c;
        divideRow(at, c, N);
    }
    ws.logLikelihood = 0.0;
    for (double c : ws.scale)
        ws.logLikelihood += std::log(c);

    // Backward under the same scaling.
    for (uint32_t s = 0; s < N; ++s)
        beta[(T - 1) * N + s] = 1.0;
    for (size_t t = T - 1; t-- > 0;)
        backwardStep(ws.transT.data(), emit_t + size_t(obs[t + 1]) * N,
                     beta + (t + 1) * N, ws.scale[t + 1], beta + t * N,
                     N);

    // Posteriors.  gamma rows are lane-parallel products; the
    // normalizers stay scalar left folds over the stored rows, which
    // visit the same values in the same order as the seed loop.
    for (size_t t = 0; t < T; ++t) {
        double *gt = gamma + t * N;
        const double *at = alpha + t * N;
        const double *bt = beta + t * N;
        size_t s = 0;
        for (; s + simd::kLanes <= N; s += simd::kLanes)
            simd::store(gt + s, simd::mul(simd::load(at + s),
                                          simd::load(bt + s)));
        if (s < N) {
            const size_t r = N - s;
            simd::storeN(gt + s, r,
                         simd::mul(simd::loadN(at + s, r, 0.0),
                                   simd::loadN(bt + s, r, 0.0)));
        }
        const double norm = sumRow(gt, N);
        if (norm > 0.0)
            divideRow(gt, norm, N);
    }
    for (size_t t = 0; t + 1 < T; ++t) {
        double *xt = xi + t * size_t(N) * N;
        const double *emitcol = emit_t + size_t(obs[t + 1]) * N;
        const double *bnext = beta + (t + 1) * N;
        const simd::Pack sc = simd::splat(ws.scale[t + 1]);
        for (uint32_t i = 0; i < N; ++i) {
            const simd::Pack a = simd::splat(alpha[t * N + i]);
            const double *row = hmm.transitionRow(i);
            double *out = xt + size_t(i) * N;
            size_t j = 0;
            for (; j + simd::kLanes <= N; j += simd::kLanes)
                simd::store(
                    out + j,
                    simd::div(
                        simd::mul(
                            simd::mul(simd::mul(a, simd::load(row + j)),
                                      simd::load(emitcol + j)),
                            simd::load(bnext + j)),
                        sc));
            if (j < N) {
                const size_t r = N - j;
                simd::storeN(
                    out + j, r,
                    simd::div(
                        simd::mul(
                            simd::mul(
                                simd::mul(a,
                                          simd::loadN(row + j, r, 0.0)),
                                simd::loadN(emitcol + j, r, 0.0)),
                            simd::loadN(bnext + j, r, 0.0)),
                        sc));
            }
        }
        const double norm = sumRow(xt, size_t(N) * N);
        if (norm > 0.0)
            divideRow(xt, norm, size_t(N) * N);
    }
}

ForwardBackward
forwardBackward(const Hmm &hmm, const Sequence &obs)
{
    // Reference wrapper: run the flat pass, then re-shape into the
    // nested-vector view.  Hot loops should call forwardBackwardInto
    // with a reused workspace instead.
    FbWorkspace ws;
    forwardBackwardInto(hmm, obs, ws);
    const size_t T = ws.T;
    const uint32_t N = ws.N;
    ForwardBackward fb;
    fb.logLikelihood = ws.logLikelihood;
    fb.alpha.assign(T, std::vector<double>(N, 0.0));
    fb.beta.assign(T, std::vector<double>(N, 0.0));
    fb.gamma.assign(T, std::vector<double>(N, 0.0));
    fb.scale = ws.scale;
    if (T > 1)
        fb.xi.assign(T - 1, std::vector<double>(size_t(N) * N, 0.0));
    for (size_t t = 0; t < T; ++t) {
        std::copy_n(ws.alpha.begin() + t * N, N, fb.alpha[t].begin());
        std::copy_n(ws.beta.begin() + t * N, N, fb.beta[t].begin());
        std::copy_n(ws.gamma.begin() + t * N, N, fb.gamma[t].begin());
    }
    for (size_t t = 0; t + 1 < T; ++t)
        std::copy_n(ws.xi.begin() + t * size_t(N) * N, size_t(N) * N,
                    fb.xi[t].begin());
    return fb;
}

namespace {

/** Forward pass against a prebuilt emission-column table. */
double
sequenceLogLikelihoodWithColumns(const Hmm &hmm, const Sequence &obs,
                                 const double *emit_t,
                                 std::vector<double> &alpha,
                                 std::vector<double> &next)
{
    const size_t T = obs.size();
    const uint32_t N = hmm.numStates();
    reasonAssert(T > 0, "empty sequence");
    alpha.resize(N);
    next.resize(N);
    {
        const double *init = hmm.initialData();
        const double *e0 = emit_t + size_t(obs[0]) * N;
        for (uint32_t s = 0; s < N; ++s)
            alpha[s] = init[s] * e0[s];
    }
    double ll = 0.0;
    for (size_t t = 0;; ++t) {
        const double c = sumRow(alpha.data(), N);
        if (c <= 0.0)
            return kLogZero;
        ll += std::log(c);
        divideRow(alpha.data(), c, N);
        if (t + 1 == T)
            break;
        forwardStep(hmm, alpha.data(), emit_t + size_t(obs[t + 1]) * N,
                    next.data(), N);
        alpha.swap(next);
    }
    return ll;
}

} // namespace

double
sequenceLogLikelihood(const Hmm &hmm, const Sequence &obs)
{
    std::vector<double> emit_t, alpha, next;
    buildEmissionColumns(hmm, emit_t);
    return sequenceLogLikelihoodWithColumns(hmm, obs, emit_t.data(),
                                            alpha, next);
}

void
sequenceLogLikelihoods(const Hmm &hmm, const std::vector<Sequence> &data,
                       std::vector<double> &out, util::ThreadPool *pool)
{
    out.resize(data.size());
    if (data.empty())
        return;
    if (pool == nullptr)
        pool = &util::globalThreadPool();
    // Each sequence is an independent forward pass with its own local
    // buffers; out[i] has one writer, so any partitioning yields the
    // same per-sequence values as serial calls.  The emission-column
    // table depends only on the (immutable during this call) model, so
    // it is transposed once and shared read-only by all workers.
    std::vector<double> emit_t;
    buildEmissionColumns(hmm, emit_t);
    pool->parallelFor(0, data.size(), 1,
                      [&](size_t b, size_t e, unsigned) {
                          std::vector<double> alpha, next;
                          for (size_t i = b; i < e; ++i)
                              out[i] = sequenceLogLikelihoodWithColumns(
                                  hmm, data[i], emit_t.data(), alpha,
                                  next);
                      });
}

ViterbiResult
viterbi(const Hmm &hmm, const Sequence &obs)
{
    const size_t T = obs.size();
    const uint32_t N = hmm.numStates();
    reasonAssert(T > 0, "empty sequence");
    std::vector<std::vector<double>> delta(T, std::vector<double>(N));
    std::vector<std::vector<uint32_t>> psi(T, std::vector<uint32_t>(N, 0));

    auto log_or_zero = [](double p) {
        return p > 0.0 ? std::log(p) : kLogZero;
    };

    for (uint32_t s = 0; s < N; ++s)
        delta[0][s] = log_or_zero(hmm.initial(s)) +
                      log_or_zero(hmm.emission(s, obs[0]));
    for (size_t t = 1; t < T; ++t) {
        for (uint32_t j = 0; j < N; ++j) {
            double best = kLogZero;
            uint32_t arg = 0;
            for (uint32_t i = 0; i < N; ++i) {
                double cand =
                    delta[t - 1][i] + log_or_zero(hmm.transition(i, j));
                if (cand > best) {
                    best = cand;
                    arg = i;
                }
            }
            delta[t][j] = best + log_or_zero(hmm.emission(j, obs[t]));
            psi[t][j] = arg;
        }
    }

    ViterbiResult res;
    uint32_t arg = 0;
    double best = kLogZero;
    for (uint32_t s = 0; s < N; ++s) {
        if (delta[T - 1][s] > best) {
            best = delta[T - 1][s];
            arg = s;
        }
    }
    res.logProb = best;
    res.path.assign(T, 0);
    res.path[T - 1] = arg;
    for (size_t t = T - 1; t-- > 0;)
        res.path[t] = psi[t + 1][res.path[t + 1]];
    return res;
}

double
bruteForceLogLikelihood(const Hmm &hmm, const Sequence &obs)
{
    const size_t T = obs.size();
    const uint32_t N = hmm.numStates();
    uint64_t limit = 0;
    reasonAssert(checkedIntPow(N, T, uint64_t(1) << 22, &limit),
                 "brute force path count too large");
    double acc = kLogZero;
    std::vector<uint32_t> z(T);
    for (uint64_t m = 0; m < limit; ++m) {
        uint64_t rest = m;
        for (size_t t = 0; t < T; ++t) {
            z[t] = static_cast<uint32_t>(rest % N);
            rest /= N;
        }
        double logp = std::log(hmm.initial(z[0])) +
                      std::log(hmm.emission(z[0], obs[0]));
        bool dead = hmm.initial(z[0]) <= 0.0 ||
                    hmm.emission(z[0], obs[0]) <= 0.0;
        for (size_t t = 1; t < T && !dead; ++t) {
            double pt = hmm.transition(z[t - 1], z[t]);
            double pe = hmm.emission(z[t], obs[t]);
            if (pt <= 0.0 || pe <= 0.0) {
                dead = true;
                break;
            }
            logp += std::log(pt) + std::log(pe);
        }
        if (!dead)
            acc = logAdd(acc, logp);
    }
    return acc;
}

namespace {

/** Per-shard Baum-Welch expected-count buffers. */
struct BwStats
{
    std::vector<double> pi;
    std::vector<double> transNum;
    std::vector<double> transDen;
    std::vector<double> emitNum;
    std::vector<double> emitDen;

    void
    reset(uint32_t N, uint32_t M)
    {
        pi.assign(N, 0.0);
        transNum.assign(size_t(N) * N, 0.0);
        transDen.assign(N, 0.0);
        emitNum.assign(size_t(N) * M, 0.0);
        emitDen.assign(N, 0.0);
    }

    void
    mergeFrom(const BwStats &other)
    {
        auto fold = [](std::vector<double> &a,
                       const std::vector<double> &b) {
            simd::addInto(a.data(), b.data(), a.size());
        };
        fold(pi, other.pi);
        fold(transNum, other.transNum);
        fold(transDen, other.transDen);
        fold(emitNum, other.emitNum);
        fold(emitDen, other.emitDen);
    }
};

} // namespace

BaumWelchTrace
baumWelch(Hmm &hmm, const std::vector<Sequence> &data,
          const BaumWelchOptions &options, util::ThreadPool *pool)
{
    reasonAssert(!data.empty(), "baumWelch needs data");
    const uint32_t N = hmm.numStates();
    const uint32_t M = hmm.numSymbols();
    const double smoothing = options.smoothing;
    BaumWelchTrace trace;

    if (pool == nullptr)
        pool = &util::globalThreadPool();
    const unsigned shards = util::resolveShardCount(
        options.shards, options.deterministic, data.size(),
        pool->numThreads());

    // Per-sequence likelihoods run thread-parallel; the reduction over
    // the materialized vector stays serial in dataset order, so the
    // trace is independent of the thread count.
    std::vector<double> lls;
    auto total_ll = [&]() {
        sequenceLogLikelihoods(hmm, data, lls, pool);
        double acc = 0.0;
        for (double ll : lls)
            acc += ll;
        return acc / static_cast<double>(data.size());
    };
    trace.logLikelihood.push_back(total_ll());
    // One workspace and statistic buffer per shard, reused across
    // iterations; shard boundaries depend only on (sequences, shards).
    std::vector<FbWorkspace> ws(shards);
    std::vector<BwStats> stats(shards);

    for (uint32_t it = 0; it < options.maxIterations; ++it) {
        // E-step: each shard left-folds its contiguous sequence slice
        // into private buffers (one writer per shard), then the shards
        // are merged by a fixed-shape tree reduction into stats[0].
        // With shards == 1 this is exactly the legacy serial fold.
        util::shardSlices(
            *pool, data.size(), shards,
            [&](size_t s, size_t lo, size_t hi) {
                BwStats &st = stats[s];
                st.reset(N, M);
                for (size_t q = lo; q < hi; ++q) {
                    const Sequence &seq = data[q];
                    // The model is fixed for the whole E-step, so the
                    // shard's workspace tables are built once (q ==
                    // lo, every iteration) and reused for the rest of
                    // the slice.
                    forwardBackwardInto(hmm, seq, ws[s], q != lo);
                    if (ws[s].logLikelihood == kLogZero)
                        continue;
                    // Expected-count accumulation: every target entry
                    // folds its per-step contributions in ascending t
                    // order, so the lane-parallel adds are
                    // bit-identical to the scalar loops.
                    simd::addInto(st.pi.data(), ws[s].gamma.data(), N);
                    for (size_t t = 0; t + 1 < seq.size(); ++t) {
                        const double *gt = ws[s].gamma.data() + t * N;
                        const double *xt =
                            ws[s].xi.data() + t * size_t(N) * N;
                        simd::addInto(st.transDen.data(), gt, N);
                        simd::addInto(st.transNum.data(), xt,
                                      size_t(N) * N);
                    }
                    for (size_t t = 0; t < seq.size(); ++t) {
                        const double *gt = ws[s].gamma.data() + t * N;
                        simd::addInto(st.emitDen.data(), gt, N);
                        // Column scatter (stride M): stays scalar.
                        for (uint32_t z = 0; z < N; ++z)
                            st.emitNum[size_t(z) * M + seq[t]] += gt[z];
                    }
                }
            });
        util::treeReduce(shards, [&](size_t a, size_t b) {
            stats[a].mergeFrom(stats[b]);
        });
        const BwStats &total = stats[0];

        std::vector<double> new_pi(N);
        double pi_total = 0.0;
        for (uint32_t s = 0; s < N; ++s)
            pi_total += total.pi[s] + smoothing;
        for (uint32_t s = 0; s < N; ++s)
            new_pi[s] = (total.pi[s] + smoothing) / pi_total;
        hmm.setInitial(new_pi);

        for (uint32_t i = 0; i < N; ++i) {
            std::vector<double> row(N);
            double denom = total.transDen[i] + smoothing * N;
            for (uint32_t j = 0; j < N; ++j)
                row[j] =
                    (total.transNum[size_t(i) * N + j] + smoothing) /
                    denom;
            hmm.setTransitionRow(i, std::move(row));
        }
        for (uint32_t s = 0; s < N; ++s) {
            std::vector<double> row(M);
            double denom = total.emitDen[s] + smoothing * M;
            for (uint32_t m = 0; m < M; ++m)
                row[m] =
                    (total.emitNum[size_t(s) * M + m] + smoothing) /
                    denom;
            hmm.setEmissionRow(s, std::move(row));
        }
        hmm.normalize();

        double ll = total_ll();
        trace.logLikelihood.push_back(ll);
        ++trace.iterations;
        double prev = trace.logLikelihood[trace.logLikelihood.size() - 2];
        if (ll - prev < options.tolerance)
            break;
    }
    return trace;
}

BaumWelchTrace
baumWelch(Hmm &hmm, const std::vector<Sequence> &data,
          uint32_t max_iterations, double tolerance, double smoothing)
{
    BaumWelchOptions options;
    options.maxIterations = max_iterations;
    options.tolerance = tolerance;
    options.smoothing = smoothing;
    return baumWelch(hmm, data, options);
}

HmmPruneResult
pruneByPosterior(const Hmm &hmm, const std::vector<Sequence> &data,
                 double usage_threshold)
{
    reasonAssert(!data.empty(), "pruneByPosterior needs data");
    const uint32_t N = hmm.numStates();
    const uint32_t M = hmm.numSymbols();

    std::vector<double> trans_usage(size_t(N) * N, 0.0);
    std::vector<double> emit_usage(size_t(N) * M, 0.0);
    double total_trans = 0.0;
    double total_emit = 0.0;
    FbWorkspace ws; // reused across sequences (model fixed: reuse tables)
    for (size_t q = 0; q < data.size(); ++q) {
        const Sequence &seq = data[q];
        forwardBackwardInto(hmm, seq, ws, q != 0);
        if (ws.logLikelihood == kLogZero)
            continue;
        for (size_t t = 0; t + 1 < seq.size(); ++t) {
            const double *xt = ws.xi.data() + t * trans_usage.size();
            for (size_t k = 0; k < trans_usage.size(); ++k) {
                trans_usage[k] += xt[k];
                total_trans += xt[k];
            }
        }
        for (size_t t = 0; t < seq.size(); ++t) {
            const double *gt = ws.gamma.data() + t * N;
            for (uint32_t s = 0; s < N; ++s) {
                emit_usage[size_t(s) * M + seq[t]] += gt[s];
                total_emit += gt[s];
            }
        }
    }

    HmmPruneResult res;
    Hmm out = hmm;
    size_t active_trans = hmm.numActiveTransitions();
    size_t active_emit = hmm.numActiveEmissions();
    size_t params_before = active_trans + active_emit;

    // The threshold is a fraction of the *average* usage per active
    // entry of each type, so transition and emission pruning are
    // calibrated independently of their entry counts.
    double trans_cut =
        active_trans > 0
            ? usage_threshold * total_trans / double(active_trans)
            : 0.0;
    double emit_cut =
        active_emit > 0
            ? usage_threshold * total_emit / double(active_emit)
            : 0.0;

    for (uint32_t i = 0; i < N; ++i) {
        std::vector<double> row(N);
        uint32_t best = 0;
        for (uint32_t j = 0; j < N; ++j) {
            row[j] = hmm.transition(i, j);
            if (trans_usage[size_t(i) * N + j] >
                trans_usage[size_t(i) * N + best])
                best = j;
        }
        for (uint32_t j = 0; j < N; ++j) {
            if (j == best || row[j] == 0.0)
                continue;
            if (trans_usage[size_t(i) * N + j] < trans_cut) {
                row[j] = 0.0;
                ++res.transitionsRemoved;
            }
        }
        out.setTransitionRow(i, std::move(row));
    }
    for (uint32_t s = 0; s < N; ++s) {
        std::vector<double> row(M);
        uint32_t best = 0;
        for (uint32_t m = 0; m < M; ++m) {
            row[m] = hmm.emission(s, m);
            if (emit_usage[size_t(s) * M + m] >
                emit_usage[size_t(s) * M + best])
                best = m;
        }
        for (uint32_t m = 0; m < M; ++m) {
            if (m == best || row[m] == 0.0)
                continue;
            if (emit_usage[size_t(s) * M + m] < emit_cut) {
                row[m] = 0.0;
                ++res.emissionsRemoved;
            }
        }
        out.setEmissionRow(s, std::move(row));
    }
    out.normalize();

    size_t params_after =
        out.numActiveTransitions() + out.numActiveEmissions();
    res.parameterReduction =
        params_before == 0
            ? 0.0
            : 1.0 - static_cast<double>(params_after) /
                        static_cast<double>(params_before);
    res.pruned = std::move(out);
    return res;
}

} // namespace hmm
} // namespace reason
