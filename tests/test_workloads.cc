/**
 * @file
 * Workload generator tests: determinism, bundle composition per
 * dataset, metric ranges, scale behavior, and the Table IV property
 * that pruning preserves task metrics at reduced memory.
 */

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "logic/implication_graph.h"
#include "pc/flows.h"
#include "workloads/timing.h"
#include "workloads/workloads.h"

using namespace reason;
using namespace reason::workloads;

TEST(Generate, DeterministicForSeed)
{
    TaskBundle a = generate(DatasetId::IMO, TaskScale::Small, 99);
    TaskBundle b = generate(DatasetId::IMO, TaskScale::Small, 99);
    ASSERT_EQ(a.sat.instances.size(), b.sat.instances.size());
    for (size_t i = 0; i < a.sat.instances.size(); ++i)
        EXPECT_EQ(a.sat.instances[i].toDimacs(),
                  b.sat.instances[i].toDimacs());
}

TEST(Generate, DatasetToWorkloadMapping)
{
    EXPECT_EQ(workloadOf(DatasetId::IMO), WorkloadId::AlphaGeo);
    EXPECT_EQ(workloadOf(DatasetId::XSTest), WorkloadId::R2Guard);
    EXPECT_EQ(workloadOf(DatasetId::News), WorkloadId::GeLaTo);
    EXPECT_EQ(workloadOf(DatasetId::CoAuthor), WorkloadId::CtrlG);
    EXPECT_EQ(workloadOf(DatasetId::AwA2), WorkloadId::NeuroPC);
    EXPECT_EQ(workloadOf(DatasetId::ProofWriter), WorkloadId::Linc);
}

TEST(Generate, EveryDatasetHasItsKernelFamily)
{
    for (DatasetId d : allDatasets()) {
        TaskBundle b = generate(d, TaskScale::Small, 3);
        EXPECT_TRUE(b.hasSat() || b.hasPc() || b.hasHmm())
            << datasetName(d);
        EXPECT_FALSE(b.metricName.empty());
        EXPECT_GT(b.neuralFractionA6000, 0.0);
        EXPECT_LT(b.neuralFractionA6000, 1.0);
    }
    // Family checks per workload.
    EXPECT_TRUE(generate(DatasetId::IMO, TaskScale::Small, 1).hasSat());
    TaskBundle guard = generate(DatasetId::TwinSafety,
                                TaskScale::Small, 1);
    EXPECT_TRUE(guard.hasPc());
    EXPECT_TRUE(guard.hasHmm());
    EXPECT_TRUE(
        generate(DatasetId::CommonGen, TaskScale::Small, 1).hasHmm());
    EXPECT_TRUE(generate(DatasetId::AwA2, TaskScale::Small, 1).hasPc());
}

TEST(Generate, LargeScaleGrowsWork)
{
    TaskBundle s = generate(DatasetId::CommonGen, TaskScale::Small, 7);
    TaskBundle l = generate(DatasetId::CommonGen, TaskScale::Large, 7);
    EXPECT_GT(l.hmms.queries.size(), s.hmms.queries.size());
    EXPECT_GT(l.hmms.queries[0].size(), s.hmms.queries[0].size());
}

TEST(Metrics, SatSuiteAccuracyInBand)
{
    TaskBundle b = generate(DatasetId::IMO, TaskScale::Small, 11);
    double acc = satAccuracy(b.sat);
    EXPECT_GT(acc, 0.5);
    EXPECT_LE(acc, 1.0);
}

TEST(Metrics, PcClassificationBeatsChance)
{
    TaskBundle b = generate(DatasetId::AwA2, TaskScale::Small, 12);
    double acc = pcClassificationAccuracy(
        b.pcs.classCircuits, b.pcs.queries, b.pcs.labels);
    // 4 classes: chance is 0.25.
    EXPECT_GT(acc, 0.4);
}

TEST(Metrics, HmmDecodeAgreementBeatsChance)
{
    TaskBundle b = generate(DatasetId::CommonGen, TaskScale::Small, 13);
    double agree = hmmDecodeAgreement(
        b.hmms.model, b.hmms.queries, b.hmms.truePaths);
    double chance = 1.0 / double(b.hmms.model.numStates());
    EXPECT_GT(agree, 2.0 * chance);
}

TEST(Metrics, ConstraintSuccessNonTrivial)
{
    TaskBundle b = generate(DatasetId::CoAuthor, TaskScale::Small, 14);
    double s = hmmConstraintSuccess(
        b.hmms.model, b.hmms.queries, b.hmms.constraints);
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 1.0);
}

TEST(Metrics, TaskMetricDispatches)
{
    for (DatasetId d : allDatasets()) {
        TaskBundle b = generate(d, TaskScale::Small, 15);
        double m = taskMetric(b);
        EXPECT_GE(m, 0.0) << datasetName(d);
        EXPECT_LE(m, 1.0) << datasetName(d);
    }
}

TEST(MeasureOps, PopulatesTheRightFamilies)
{
    TaskBundle sat_b = generate(DatasetId::FOLIO, TaskScale::Small, 16);
    SymbolicOps sat_ops = measureSymbolicOps(sat_b);
    EXPECT_GT(sat_ops.sat.propagations, 0u);
    EXPECT_EQ(sat_ops.totalDagNodes(), 0u);

    TaskBundle hmm_b = generate(DatasetId::News, TaskScale::Small, 17);
    SymbolicOps hmm_ops = measureSymbolicOps(hmm_b);
    EXPECT_GT(hmm_ops.hmmDagNodes, 0u);
    EXPECT_EQ(hmm_ops.sat.propagations, 0u);
}

TEST(MeasureOps, OptimizationShrinksWork)
{
    TaskBundle b = generate(DatasetId::TwinSafety, TaskScale::Small, 18);
    SymbolicOps base = measureSymbolicOps(b, false);
    SymbolicOps opt = measureSymbolicOps(b, true);
    EXPECT_LE(opt.totalDagNodes(), base.totalDagNodes());
}

/** Table IV property: pruning keeps the task metric, shrinks memory. */
TEST(TableIV, SatPruningPreservesAccuracyExactly)
{
    TaskBundle b = generate(DatasetId::MiniF2F, TaskScale::Small, 19);
    double base_acc = satAccuracy(b.sat);
    // Prune every instance (equivalence-preserving).
    SatSuite pruned = b.sat;
    for (auto &inst : pruned.instances)
        inst = logic::pruneCnf(inst).pruned;
    double pruned_acc = satAccuracy(pruned);
    // Logical equivalence: answers cannot flip (budget effects can only
    // help since instances shrink); allow one instance of slack.
    EXPECT_NEAR(pruned_acc, base_acc,
                1.0 / double(b.sat.instances.size()) + 1e-9);
}

TEST(TableIV, PcPruningKeepsClassificationClose)
{
    TaskBundle b = generate(DatasetId::AwA2, TaskScale::Small, 20);
    double base_acc = pcClassificationAccuracy(
        b.pcs.classCircuits, b.pcs.queries, b.pcs.labels);
    std::vector<pc::Circuit> pruned;
    for (const auto &c : b.pcs.classCircuits)
        pruned.push_back(
            pc::pruneByFlow(c, b.pcs.calibration, 1e-3).pruned);
    double pruned_acc = pcClassificationAccuracy(
        pruned, b.pcs.queries, b.pcs.labels);
    EXPECT_NEAR(pruned_acc, base_acc, 0.06);
}
