/**
 * @file
 * Fig. 2 reproduction: scaling performance of compositional
 * neuro-symbolic systems vs monolithic LLMs.
 *
 * The mechanism is reproduced with our substrates: a compositional
 * system's task accuracy factorizes into parse accuracy (neural, grows
 * quickly with model size and saturates) times solver accuracy (from
 * the actual budgeted CDCL suite, size-independent); a monolithic model
 * must amortize the reasoning itself and improves much more slowly.
 * Panel (d) compares runtime against RL/CoT-style reasoning that issues
 * many LLM queries per decision step.
 *
 * Paper shape: compositional (C) curves sit above monolithic (M) at
 * every size; a small C model matches or beats the largest M model;
 * neuro-symbolic reaches >2x runtime efficiency over CoT reasoning.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "baselines/device.h"
#include "pc/flat_pc.h"
#include "sys/system.h"
#include "util/table.h"
#include "workloads/workloads.h"

using namespace reason;

namespace {

void
BM_SatSuiteAccuracy(benchmark::State &state)
{
    workloads::TaskBundle b = workloads::generate(
        workloads::DatasetId::IMO, workloads::TaskScale::Small, 31);
    for (auto _ : state)
        benchmark::DoNotOptimize(workloads::satAccuracy(b.sat));
}
BENCHMARK(BM_SatSuiteAccuracy)->Unit(benchmark::kMillisecond);

/** Seed path: per-call Circuit::logLikelihood over the PC queries. */
void
BM_PcQueriesSeedWalker(benchmark::State &state)
{
    workloads::TaskBundle b = workloads::generate(
        workloads::DatasetId::XSTest, workloads::TaskScale::Small, 31);
    const pc::Circuit &c = b.pcs.classCircuits.front();
    for (auto _ : state) {
        double acc = 0.0;
        for (const auto &q : b.pcs.queries)
            acc += c.logLikelihood(q);
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_PcQueriesSeedWalker)->Unit(benchmark::kMillisecond);

/** Flat path: one lowering + batched CSR evaluation (core engine). */
void
BM_PcQueriesFlatBatched(benchmark::State &state)
{
    workloads::TaskBundle b = workloads::generate(
        workloads::DatasetId::XSTest, workloads::TaskScale::Small, 31);
    pc::FlatCircuit flat(b.pcs.classCircuits.front());
    pc::CircuitEvaluator eval(flat);
    std::vector<double> out(b.pcs.queries.size());
    for (auto _ : state) {
        eval.logLikelihoodBatch(b.pcs.queries, out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_PcQueriesFlatBatched)->Unit(benchmark::kMillisecond);

/** Parse accuracy of the neural front-end vs parameter count. */
double
parseAccuracy(double params_b)
{
    return 1.0 - 0.42 * std::exp(-params_b / 6.0);
}

/** Monolithic model accuracy: must learn the reasoning end to end. */
double
monolithicAccuracy(double params_b, double task_difficulty)
{
    return task_difficulty *
           (0.32 + 0.50 * (1.0 - std::exp(-params_b / 90.0)));
}

void
printFig2()
{
    // Solver-stage accuracy measured from the real budgeted CDCL runs.
    workloads::TaskBundle imo = workloads::generate(
        workloads::DatasetId::IMO, workloads::TaskScale::Small, 31);
    double solver_acc = workloads::satAccuracy(imo.sat);

    Table t({"Model size", "Compositional (C)", "Monolithic (M)"});
    const double sizes[] = {7, 8, 13, 70, 175}; // billions ("GPT"=175)
    const char *labels[] = {"7B", "8B", "13B", "70B", "GPT"};
    double c_small = 0.0, m_large = 0.0;
    for (int i = 0; i < 5; ++i) {
        double c = parseAccuracy(sizes[i]) * solver_acc;
        double m = monolithicAccuracy(sizes[i], solver_acc);
        if (i == 0)
            c_small = c;
        m_large = m;
        t.addRow({labels[i], Table::percent(c), Table::percent(m)});
    }
    std::printf("\n");
    t.print("Fig. 2(a-c) — task accuracy vs model size "
            "(complex-reasoning family; solver accuracy measured = " +
            std::string(Table::percent(solver_acc)) + ")");
    std::printf("smallest compositional (%.1f%%) vs largest monolithic "
                "(%.1f%%): %s\n",
                c_small * 100.0, m_large * 100.0,
                c_small >= m_large ? "small C >= large M (paper shape)"
                                   : "shape violated");

    // Panel (d): runtime vs CoT-RL reasoning.  One neuro-symbolic step
    // = 1 LLM call + symbolic solve; CoT = many LLM calls per step.
    baselines::DeviceModel gpu = baselines::rtxA6000();
    baselines::KernelWork llm_call;
    llm_call.cls = baselines::KernelClass::DenseMatMul;
    llm_call.flops = 2.0 * 7e9 * 256; // 7B params, 256 tokens
    llm_call.bytes = 7e9 * 2.0;
    double llm_s = gpu.seconds(llm_call);
    workloads::SymbolicOps ops = workloads::measureSymbolicOps(imo);
    double sym_s =
        sys::symbolicCost(sys::Platform::RtxA6000, ops).seconds;

    Table rt({"Reasoner", "Steps", "LLM calls/step",
              "Runtime [min, 10 problems]"});
    double ns_runtime = 10.0 * (llm_s + sym_s) * 30.0 / 60.0;
    double cot_runtime = 10.0 * (llm_s * 64.0) * 30.0 / 60.0;
    rt.addRow({"Neuro-symbolic (AlphaGeo-like)", "30", "1",
               Table::num(ns_runtime, 1)});
    rt.addRow({"RL-based CoT", "30", "64", Table::num(cot_runtime, 1)});
    std::printf("\n");
    rt.print("Fig. 2(d) — runtime efficiency vs CoT reasoning "
             "(paper: >2x efficiency for neuro-symbolic)");
    std::printf("efficiency gain: %.1fx\n", cot_runtime / ns_runtime);
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printFig2();
    return 0;
}
