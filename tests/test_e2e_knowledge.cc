/**
 * @file
 * End-to-end integration of the new reasoning paths:
 *
 *  - the full R2-Guard pipeline — rules CNF -> d-DNNF -> probabilistic
 *    circuit -> unified DAG -> compiled VLIW -> cycle-accurate fabric —
 *    asserting the fabric's likelihoods equal WMC ratios exactly;
 *  - preprocessing feeding the CDCL solver on instances beyond
 *    brute-force reach, with model reconstruction against the original
 *    formula;
 *  - knowledge-compilation marginals cross-checked against the
 *    circuit-query machinery.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "arch/accelerator.h"
#include "compiler/compile.h"
#include "core/builders.h"
#include "logic/cnf.h"
#include "logic/knowledge.h"
#include "logic/preprocess.h"
#include "logic/solver.h"
#include "pc/from_logic.h"
#include "pc/queries.h"
#include "util/rng.h"

using namespace reason;

class GuardPathSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(GuardPathSweep, RulesToFabricLikelihoodsMatchWmc)
{
    Rng rng(GetParam());
    logic::CnfFormula rules = logic::plantedKSat(rng, 8, 16, 3);
    logic::LitWeights prior = logic::LitWeights::random(rng, 8);

    logic::DnnfGraph dnnf = logic::compileToDnnf(rules);
    double z = dnnf.wmc(prior);
    ASSERT_GT(z, 0.0);
    pc::Circuit guard = pc::fromDnnf(dnnf, prior);

    std::vector<pc::NodeId> leaf_order;
    core::Dag dag = core::buildFromCircuit(guard, &leaf_order);
    arch::ArchConfig cfg;
    compiler::Program program =
        compiler::compile(dag, cfg.compilerTarget());
    arch::Accelerator accel(cfg);

    // Every complete world: fabric == circuit == WMC ratio.
    for (uint64_t bits = 0; bits < (1u << 8); bits += 17) {
        pc::Assignment x(8);
        std::vector<bool> xb(8);
        logic::LitWeights ind;
        double weight = 1.0;
        for (uint32_t v = 0; v < 8; ++v) {
            xb[v] = (bits >> v) & 1;
            x[v] = xb[v] ? 1 : 0;
            weight *= xb[v] ? prior.pos[v] : prior.neg[v];
        }
        double expected = rules.evaluate(xb) ? weight / z : 0.0;

        auto inputs = core::circuitLeafInputs(guard, leaf_order, x);
        double fabric = accel.run(program, inputs).rootValue;
        EXPECT_NEAR(fabric, expected, 1e-9 * std::max(1.0, expected))
            << "world " << bits;
    }

    // Marginal queries: fabric with marginalized leaves == WMC ratio.
    for (uint32_t v = 0; v < 8; v += 3) {
        pc::Assignment q(8, pc::kMissing);
        q[v] = 1;
        auto inputs = core::circuitLeafInputs(guard, leaf_order, q);
        double fabric = accel.run(program, inputs).rootValue;
        logic::LitWeights cond = prior;
        cond.neg[v] = 0.0;
        EXPECT_NEAR(fabric, dnnf.wmc(cond) / z, 1e-9) << "var " << v;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GuardPathSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(GuardPath, PosteriorMarginalsAgreeWithConditionalMarginal)
{
    Rng rng(7);
    logic::CnfFormula rules = logic::plantedKSat(rng, 10, 22, 3);
    logic::LitWeights prior = logic::LitWeights::random(rng, 10);
    pc::Circuit guard = pc::compileCnf(rules, prior);

    pc::Assignment none(10, pc::kMissing);
    pc::MarginalTable table = pc::posteriorMarginals(guard, none);
    for (uint32_t v = 0; v < 10; ++v) {
        double expected = logic::conditionalMarginal(rules, prior, v);
        EXPECT_NEAR(table.prob[v][1], expected, 1e-9) << "var " << v;
    }
}

class PreSolveSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(PreSolveSweep, PreprocessedCdclAgreesAndReconstructs)
{
    // Instances large enough that brute force is out of reach; the
    // reference is CDCL on the unpreprocessed formula.
    Rng rng(GetParam());
    bool planted = GetParam() % 2 == 0;
    logic::CnfFormula f =
        planted ? logic::plantedKSat(rng, 60, 250, 3)
                : logic::randomKSat(rng, 50, 210, 3);

    logic::SolveResult reference = logic::solveCnf(f);

    logic::Preprocessor pre(f);
    pre.run();
    if (pre.knownUnsat()) {
        EXPECT_EQ(reference, logic::SolveResult::Unsat);
        return;
    }
    std::vector<bool> model;
    logic::SolveResult simplified_res =
        logic::solveCnf(pre.simplified(), &model);
    EXPECT_EQ(simplified_res, reference);
    if (simplified_res == logic::SolveResult::Sat) {
        auto full = pre.reconstructModel(model);
        EXPECT_TRUE(f.evaluate(full));
    }
}

TEST_P(PreSolveSweep, PreprocessingReducesSolverEffort)
{
    // Not universally guaranteed, but on planted instances with
    // redundancy the clause database shrinks; assert the preprocessed
    // solve never explores a larger clause database.
    Rng rng(GetParam() + 40);
    logic::CnfFormula f = logic::plantedKSat(rng, 60, 260, 3);
    logic::PreprocessStats stats;
    logic::CnfFormula g = logic::preprocessCnf(f, &stats);
    EXPECT_LE(g.numClauses(), f.numClauses());
    EXPECT_LE(stats.clausesAfter, stats.clausesBefore);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PreSolveSweep,
                         ::testing::Values(101, 102, 103, 104, 105, 106,
                                           107, 108));

TEST(PreSolve, PigeonholeViaPreprocessAndCdcl)
{
    logic::CnfFormula f = logic::pigeonhole(5);
    logic::Preprocessor pre(f);
    pre.run();
    if (!pre.knownUnsat())
        EXPECT_EQ(logic::solveCnf(pre.simplified()),
                  logic::SolveResult::Unsat);
}
