/**
 * @file
 * Cycle-accurate execution of compiled DAG programs on the REASON fabric
 * (Sec. V-B/V-C, probabilistic and SpMSpM-style modes).
 *
 * The engine replays the compiler's pipeline-aware schedule while
 * enforcing the machine's structural constraints cycle by cycle:
 * per-PE single issue, tree pipeline latency, register-bank read-port
 * limits (operands beyond the port count stall the issuing block), DMA
 * preloading of external inputs, and spill traffic for values beyond the
 * per-bank register capacity.  Functional results are bit-identical to
 * Dag::evaluate on the same inputs — tests rely on this.
 */

#ifndef REASON_ARCH_ACCELERATOR_H
#define REASON_ARCH_ACCELERATOR_H

#include <cstdint>
#include <vector>

#include "arch/config.h"
#include "compiler/program.h"
#include "util/stats.h"

namespace reason {
namespace arch {

/** Result of executing one program. */
struct ExecutionResult
{
    /** Value of the DAG root computed by the fabric. */
    double rootValue = 0.0;
    /** Per-block results, indexed by block id. */
    std::vector<double> blockValues;
    /** Total cycles from first issue to last writeback. */
    uint64_t cycles = 0;
    /** Cycles spent stalled on bank-port conflicts. */
    uint64_t bankStallCycles = 0;
    /** Cycles spent waiting for input DMA. */
    uint64_t dmaStallCycles = 0;
    /** Issue slots where a PE had no ready work. */
    uint64_t idlePeCycles = 0;
    /** Achieved PE utilization in [0,1]. */
    double peUtilization = 0.0;
    /** Event counters for the energy model. */
    StatGroup events;

    /** Wall-clock seconds at the configured clock. */
    double seconds(const ArchConfig &cfg) const
    {
        return static_cast<double>(cycles) * cfg.cycleSeconds();
    }
};

/**
 * The REASON accelerator in DAG-execution mode.
 */
class Accelerator
{
  public:
    explicit Accelerator(const ArchConfig &config);

    const ArchConfig &config() const { return config_; }

    /**
     * Execute a compiled program with the given external input values
     * (indexed by DAG input tag).
     *
     * @param preloaded when true, inputs are assumed resident in the
     *        register banks (steady-state batch processing); otherwise an
     *        initial DMA fill is modeled.
     */
    ExecutionResult run(const compiler::Program &program,
                        const std::vector<double> &inputs,
                        bool preloaded = false) const;

  private:
    double evalBlock(const compiler::Program &program,
                     const compiler::Block &blk,
                     const std::vector<double> &regfile,
                     StatGroup &events) const;

    ArchConfig config_;
    /** Register-file addressing stride of the program being run. */
    mutable size_t stride_ = 1;
};

} // namespace arch
} // namespace reason

#endif // REASON_ARCH_ACCELERATOR_H
