/**
 * @file
 * Tests for advanced probabilistic-circuit queries: conditionals,
 * posterior marginals (log-space backward pass) against brute-force
 * enumeration, conditional sampling frequencies, entropy, expectations,
 * and mutual information, over random circuit sweeps.
 */

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "pc/pc.h"
#include "pc/queries.h"
#include "util/numeric.h"
#include "util/rng.h"

using namespace reason;
using namespace reason::pc;

namespace {

/** All complete assignments over (vars, arity). */
std::vector<Assignment>
enumerate(uint32_t vars, uint32_t arity)
{
    std::vector<Assignment> all;
    uint64_t combos = 1;
    for (uint32_t v = 0; v < vars; ++v)
        combos *= arity;
    for (uint64_t n = 0; n < combos; ++n) {
        Assignment x(vars);
        uint64_t rem = n;
        for (uint32_t v = 0; v < vars; ++v) {
            x[v] = uint32_t(rem % arity);
            rem /= arity;
        }
        all.push_back(std::move(x));
    }
    return all;
}

/** Brute-force P(var = val | evidence) by enumeration. */
double
bruteMarginal(const Circuit &c, const Assignment &evidence, uint32_t var,
              uint32_t val)
{
    double num = 0.0, den = 0.0;
    for (const auto &x : enumerate(c.numVars(), c.arity())) {
        bool compatible = true;
        for (uint32_t v = 0; v < c.numVars(); ++v)
            if (evidence[v] != kMissing && x[v] != evidence[v])
                compatible = false;
        if (!compatible)
            continue;
        double p = std::exp(c.logLikelihood(x));
        den += p;
        if (x[var] == val)
            num += p;
    }
    return num / den;
}

} // namespace

struct QuerySweepParam
{
    uint32_t vars;
    uint32_t arity;
    uint64_t seed;
};

class QuerySweep : public ::testing::TestWithParam<QuerySweepParam>
{
  protected:
    Circuit
    make() const
    {
        Rng rng(GetParam().seed);
        return randomCircuit(rng, GetParam().vars, GetParam().arity, 2, 3);
    }
};

TEST_P(QuerySweep, PosteriorMarginalsMatchEnumeration)
{
    Circuit c = make();
    Rng rng(GetParam().seed + 99);
    // Evidence on roughly a third of the variables.
    Assignment evidence(c.numVars(), kMissing);
    for (uint32_t v = 0; v < c.numVars(); v += 3)
        evidence[v] = uint32_t(rng.uniformInt(0, c.arity() - 1));

    MarginalTable table = posteriorMarginals(c, evidence);
    for (uint32_t v = 0; v < c.numVars(); ++v) {
        double row = 0.0;
        for (uint32_t val = 0; val < c.arity(); ++val) {
            EXPECT_NEAR(table.prob[v][val],
                        bruteMarginal(c, evidence, v, val), 1e-8)
                << "var " << v << " val " << val;
            row += table.prob[v][val];
        }
        EXPECT_NEAR(row, 1.0, 1e-8);
    }
}

TEST_P(QuerySweep, ConditionalChainRule)
{
    // P(a, b | e) == P(a | b, e) * P(b | e).
    Circuit c = make();
    ASSERT_GE(c.numVars(), 4u);
    Assignment e(c.numVars(), kMissing);
    e[0] = 0;

    Assignment qa(c.numVars(), kMissing), qb(c.numVars(), kMissing);
    qa[1] = c.arity() - 1;
    qb[2] = 0;

    Assignment be = e;
    be[2] = 0;

    double lhs = conditionalLogProbability(
        c,
        [&] {
            Assignment q = qa;
            q[2] = 0;
            return q;
        }(),
        e);
    double rhs = conditionalLogProbability(c, qa, be) +
                 conditionalLogProbability(c, qb, e);
    EXPECT_NEAR(lhs, rhs, 1e-9);
}

TEST_P(QuerySweep, ExactEntropyMatchesEnumeration)
{
    Circuit c = make();
    double expected = 0.0;
    for (const auto &x : enumerate(c.numVars(), c.arity())) {
        double ll = c.logLikelihood(x);
        if (ll != kLogZero)
            expected -= std::exp(ll) * ll;
    }
    EXPECT_NEAR(exactEntropy(c), expected, 1e-9);
}

TEST_P(QuerySweep, SampledEntropyApproximatesExact)
{
    Circuit c = make();
    Rng rng(GetParam().seed + 7);
    double exact = exactEntropy(c);
    double sampled = sampledEntropy(rng, c, 4000);
    // Monte-Carlo: loose tolerance.
    EXPECT_NEAR(sampled, exact, 0.25 * std::max(1.0, exact));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuerySweep,
    ::testing::Values(QuerySweepParam{4, 2, 1}, QuerySweepParam{6, 2, 2},
                      QuerySweepParam{8, 2, 3}, QuerySweepParam{5, 3, 4},
                      QuerySweepParam{6, 3, 5}, QuerySweepParam{4, 4, 6},
                      QuerySweepParam{9, 2, 7}, QuerySweepParam{7, 3, 8}));

TEST(Queries, LogDerivativesSumToValueTimesCount)
{
    // For a complete assignment, sum over leaves of d_l * leaf value
    // recovers the root value once per variable (smoothness).
    Rng rng(21);
    Circuit c = randomCircuit(rng, 6, 2, 2, 3);
    Assignment x(6);
    for (uint32_t v = 0; v < 6; ++v)
        x[v] = uint32_t(rng.uniformInt(0, 1));
    auto logv = c.evaluate(x);
    auto logd = logDerivatives(c, x);

    std::vector<double> per_var(6, kLogZero);
    for (size_t i = 0; i < c.numNodes(); ++i) {
        const PcNode &node = c.node(NodeId(i));
        if (node.type != PcNodeType::Leaf)
            continue;
        if (logd[i] == kLogZero || logv[i] == kLogZero)
            continue;
        per_var[node.var] =
            logAdd(per_var[node.var], logd[i] + logv[i]);
    }
    for (uint32_t v = 0; v < 6; ++v)
        EXPECT_NEAR(per_var[v], logv[c.root()], 1e-9) << "var " << v;
}

TEST(Queries, ConditionalSamplingFrequencies)
{
    Rng rng(33);
    Circuit c = randomCircuit(rng, 5, 2, 2, 3);
    Assignment evidence(5, kMissing);
    evidence[0] = 1;

    MarginalTable expected = posteriorMarginals(c, evidence);
    const int kSamples = 20000;
    std::vector<std::vector<int>> counts(5, std::vector<int>(2, 0));
    for (int s = 0; s < kSamples; ++s) {
        Assignment draw = sampleConditional(rng, c, evidence);
        for (uint32_t v = 0; v < 5; ++v) {
            ASSERT_NE(draw[v], kMissing);
            ++counts[v][draw[v]];
        }
    }
    for (uint32_t v = 0; v < 5; ++v)
        for (uint32_t val = 0; val < 2; ++val)
            EXPECT_NEAR(double(counts[v][val]) / kSamples,
                        expected.prob[v][val], 0.02)
                << "var " << v << " val " << val;
    // Evidence variables must be copied through.
    Assignment draw = sampleConditional(rng, c, evidence);
    EXPECT_EQ(draw[0], 1u);
}

TEST(Queries, ExpectedValueOfIndicatorIsMarginal)
{
    Rng rng(55);
    Circuit c = randomCircuit(rng, 6, 3, 2, 3);
    Assignment evidence(6, kMissing);
    evidence[5] = 2;

    std::vector<std::vector<double>> f(6, std::vector<double>(3, 0.0));
    f[2][1] = 1.0; // indicator of X2 = 1
    MarginalTable table = posteriorMarginals(c, evidence);
    EXPECT_NEAR(expectedValue(c, f, evidence), table.prob[2][1], 1e-9);
}

TEST(Queries, PairwiseMarginalSumsToOne)
{
    Rng rng(66);
    Circuit c = randomCircuit(rng, 6, 2, 2, 3);
    auto joint = pairwiseMarginal(c, 1, 4);
    double total = 0.0;
    for (const auto &row : joint)
        for (double p : row)
            total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Queries, MutualInformationProperties)
{
    Rng rng(77);
    Circuit c = randomCircuit(rng, 6, 2, 2, 3);
    // Non-negativity and symmetry.
    for (auto [a, b] : {std::pair<uint32_t, uint32_t>{0, 1},
                        {2, 5},
                        {1, 4}}) {
        double ab = mutualInformation(c, a, b);
        double ba = mutualInformation(c, b, a);
        EXPECT_GE(ab, 0.0);
        EXPECT_NEAR(ab, ba, 1e-9);
    }
}

TEST(Queries, IndependentProductHasZeroMi)
{
    // Two independent leaves under a product: MI must be ~0.
    Circuit c(2, 2);
    NodeId l0 = c.addLeaf(0, {0.3, 0.7});
    NodeId l1 = c.addLeaf(1, {0.6, 0.4});
    c.markRoot(c.addProduct({l0, l1}));
    EXPECT_NEAR(mutualInformation(c, 0, 1), 0.0, 1e-12);
}

TEST(Queries, FullyCorrelatedMixtureHasEntropyMi)
{
    // Mixture of (0,0) and (1,1): X0 determines X1.
    Circuit c(2, 2);
    NodeId a0 = c.addLeaf(0, {1.0, 0.0});
    NodeId a1 = c.addLeaf(1, {1.0, 0.0});
    NodeId b0 = c.addLeaf(0, {0.0, 1.0});
    NodeId b1 = c.addLeaf(1, {0.0, 1.0});
    NodeId pa = c.addProduct({a0, a1});
    NodeId pb = c.addProduct({b0, b1});
    c.markRoot(c.addSum({pa, pb}, {0.5, 0.5}));
    // I(X;Y) = H(X) = log 2 for a deterministic copy of a fair bit.
    EXPECT_NEAR(mutualInformation(c, 0, 1), std::log(2.0), 1e-9);
}
