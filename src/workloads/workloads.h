/**
 * @file
 * Synthetic neuro-symbolic workload and dataset generators standing in
 * for the paper's six workloads (Table I) and ten evaluation datasets
 * (Sec. VII-A).
 *
 * Substitution note (DESIGN.md): we have no LLM checkpoints or dataset
 * licenses, so each dataset family is replaced by a seeded generator
 * that produces the same *kernel types and shapes* the workload feeds to
 * the symbolic stage, plus ground-truth labels from the generating
 * process so accuracy is measurable:
 *
 *   AlphaGeometry (IMO, MiniF2F)    -> budgeted SAT deduction instances
 *   R2-Guard (TwinSafety, XSTest)   -> safety-rule PC classifiers + HMM
 *   GeLaTo (CommonGen, News)        -> banded constrained-decoding HMMs
 *   Ctrl-G (CoAuthor)               -> HMM text-infilling with keyword
 *                                      constraints
 *   NeuroPC (AwA2)                  -> class-conditional PC classifiers
 *   LINC (FOLIO, ProofWriter)       -> FOL theories grounded to SAT
 *                                      entailment queries
 *
 * The neural stage is a parametric LLM/DNN proxy; its runtime share on
 * an A6000-class GPU follows the paper's measured splits (Fig. 3).
 */

#ifndef REASON_WORKLOADS_WORKLOADS_H
#define REASON_WORKLOADS_WORKLOADS_H

#include <cstdint>
#include <string>
#include <vector>

#include "hmm/hmm.h"
#include "logic/cnf.h"
#include "logic/fol.h"
#include "pc/pc.h"

namespace reason {
namespace workloads {

/** The six neuro-symbolic workloads of Table I. */
enum class WorkloadId : uint8_t
{
    AlphaGeo, R2Guard, GeLaTo, CtrlG, NeuroPC, Linc
};

/** The ten evaluation datasets of Sec. VII-A. */
enum class DatasetId : uint8_t
{
    IMO, MiniF2F, TwinSafety, XSTest, CommonGen, News, CoAuthor,
    AwA2, FOLIO, ProofWriter
};

/** Task size class used by Fig. 3(b). */
enum class TaskScale : uint8_t { Small, Large };

const char *workloadName(WorkloadId id);
const char *datasetName(DatasetId id);
WorkloadId workloadOf(DatasetId id);

/** All ten datasets in paper order. */
std::vector<DatasetId> allDatasets();
/** All six workloads in paper order. */
std::vector<WorkloadId> allWorkloads();

/** SAT deduction queries with ground truth and a solver budget. */
struct SatSuite
{
    std::vector<logic::CnfFormula> instances;
    /** 1 = satisfiable, 0 = unsatisfiable. */
    std::vector<int> truth;
    /** CDCL conflict budget per instance (models the proof deadline). */
    uint64_t conflictBudget = 2000;
};

/** Class-conditional PC classification queries. */
struct PcSuite
{
    /** One circuit per class. */
    std::vector<pc::Circuit> classCircuits;
    /** Calibration data (flow pruning / EM), from the class models. */
    std::vector<pc::Assignment> calibration;
    std::vector<pc::Assignment> queries;
    std::vector<uint32_t> labels;
};

/** HMM sequence tasks: decoding agreement and/or constraint success. */
struct HmmSuite
{
    hmm::Hmm model;
    std::vector<hmm::Sequence> calibration;
    std::vector<hmm::Sequence> queries;
    /** True hidden paths for decode-agreement metrics. */
    std::vector<std::vector<uint32_t>> truePaths;
    /** Ctrl-G style constraints: (position, required state). */
    std::vector<std::pair<uint32_t, uint32_t>> constraints;

    HmmSuite() : model(1, 1) {}
};

/** A fully generated task bundle for one dataset at one scale. */
struct TaskBundle
{
    DatasetId dataset = DatasetId::IMO;
    WorkloadId workload = WorkloadId::AlphaGeo;
    TaskScale scale = TaskScale::Small;
    std::string metricName;
    /** Paper-measured neural runtime share on an A6000 (Fig. 3(a)). */
    double neuralFractionA6000 = 0.5;

    SatSuite sat;
    PcSuite pcs;
    HmmSuite hmms;

    bool hasSat() const { return !sat.instances.empty(); }
    bool hasPc() const { return !pcs.classCircuits.empty(); }
    bool hasHmm() const { return !hmms.queries.empty(); }
};

/** Generate the task bundle for a dataset (deterministic in seed). */
TaskBundle generate(DatasetId dataset, TaskScale scale, uint64_t seed);

// ----- metric evaluation -------------------------------------------------

/** Budgeted SAT accuracy: Unknown counts as wrong. */
double satAccuracy(const SatSuite &suite);

/** Classification accuracy of (possibly pruned) class circuits. */
double pcClassificationAccuracy(
    const std::vector<pc::Circuit> &class_circuits,
    const std::vector<pc::Assignment> &queries,
    const std::vector<uint32_t> &labels);

/**
 * Fraction of Viterbi-decoded states agreeing with the true paths.
 * `tolerance` counts a circular state distance <= tolerance as a match:
 * neighboring states of a banded model are near-synonymous, mirroring
 * BLEU's tolerance of near-synonymous tokens.
 */
double hmmDecodeAgreement(const hmm::Hmm &model,
                          const std::vector<hmm::Sequence> &queries,
                          const std::vector<std::vector<uint32_t>>
                              &true_paths,
                          uint32_t tolerance = 1);

/** Ctrl-G style success rate: decoded path honors all constraints. */
double hmmConstraintSuccess(
    const hmm::Hmm &model, const std::vector<hmm::Sequence> &queries,
    const std::vector<std::pair<uint32_t, uint32_t>> &constraints);

/**
 * Dataset-level task metric on a bundle, dispatching to the suite the
 * dataset uses (the "Baseline Performance" column of Table IV).
 */
double taskMetric(const TaskBundle &bundle);

} // namespace workloads
} // namespace reason

#endif // REASON_WORKLOADS_WORKLOADS_H
