#include "core/pipeline.h"

#include "util/logging.h"

namespace reason {
namespace core {

namespace {

double
reduction(const DagStats &before, const DagStats &after)
{
    if (before.memoryBytes == 0)
        return 0.0;
    return 1.0 - static_cast<double>(after.memoryBytes) /
                     static_cast<double>(before.memoryBytes);
}

} // namespace

namespace {

/**
 * Baseline metrics for memory accounting: the unpruned DAG in the same
 * canonical form the optimized DAG ends in, so the reported reduction
 * isolates the pruning effect (Table IV).
 */
DagStats
baselineStats(Dag unified, const PipelineConfig &config)
{
    if (config.regularize)
        regularizeTwoInput(unified);
    return unified.stats();
}

} // namespace

OptimizedKernel
optimizeCnf(const logic::CnfFormula &formula,
            const PipelineConfig &config)
{
    OptimizedKernel out;
    Dag unified = buildFromCnf(formula);
    out.statsBefore = baselineStats(unified, config);

    if (config.prune) {
        logic::CnfPruneResult pr = logic::pruneCnf(formula);
        out.elementsPruned = pr.literalsRemoved;
        out.dag = buildFromCnf(pr.pruned);
    } else {
        out.dag = std::move(unified);
    }
    eliminateDeadNodes(out.dag);
    if (config.regularize)
        regularizeTwoInput(out.dag);

    out.statsAfter = out.dag.stats();
    out.memoryReduction = reduction(out.statsBefore, out.statsAfter);
    return out;
}

OptimizedKernel
optimizeCircuit(const pc::Circuit &circuit,
                const std::vector<pc::Assignment> &data,
                const PipelineConfig &config,
                pc::Circuit *pruned_circuit,
                std::vector<pc::NodeId> *leaf_order)
{
    OptimizedKernel out;
    Dag unified = buildFromCircuit(circuit);
    out.statsBefore = baselineStats(unified, config);

    if (config.prune && !data.empty()) {
        pc::PcPruneResult pr =
            pc::pruneByFlow(circuit, data, config.pcFlowThreshold);
        out.elementsPruned = pr.edgesRemoved;
        out.dag = buildFromCircuit(pr.pruned, leaf_order);
        if (pruned_circuit)
            *pruned_circuit = pr.pruned;
    } else {
        out.dag = buildFromCircuit(circuit, leaf_order);
        if (pruned_circuit)
            *pruned_circuit = circuit;
    }
    eliminateDeadNodes(out.dag);
    if (config.regularize)
        regularizeTwoInput(out.dag);

    out.statsAfter = out.dag.stats();
    out.memoryReduction = reduction(out.statsBefore, out.statsAfter);
    return out;
}

OptimizedKernel
optimizeHmm(const hmm::Hmm &hmm, const std::vector<hmm::Sequence> &data,
            const hmm::Sequence &query, const PipelineConfig &config,
            hmm::Hmm *pruned_hmm)
{
    OptimizedKernel out;
    Dag unified = buildFromHmm(hmm, query);
    out.statsBefore = baselineStats(unified, config);

    if (config.prune && !data.empty()) {
        hmm::HmmPruneResult pr = hmm::pruneByPosterior(
            hmm, data, config.hmmUsageThreshold);
        out.elementsPruned =
            pr.transitionsRemoved + pr.emissionsRemoved;
        out.dag = buildFromHmm(pr.pruned, query);
        if (pruned_hmm)
            *pruned_hmm = pr.pruned;
    } else {
        out.dag = std::move(unified);
        if (pruned_hmm)
            *pruned_hmm = hmm;
    }
    eliminateDeadNodes(out.dag);
    if (config.regularize)
        regularizeTwoInput(out.dag);

    out.statsAfter = out.dag.stats();
    out.memoryReduction = reduction(out.statsBefore, out.statsAfter);
    return out;
}

} // namespace core
} // namespace reason
