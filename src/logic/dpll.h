/**
 * @file
 * DPLL search with unit propagation and lookahead branching, plus the
 * cube generation half of cube-and-conquer (Sec. II-C, V-E).
 *
 * The lookahead solver measures, for each free variable, how many
 * assignments unit propagation forces under each polarity, and branches on
 * the variable with the largest combined reduction.  The same engine emits
 * "cubes" (partial assignments) whose subproblems are handed to CDCL
 * conquer solvers.
 */

#ifndef REASON_LOGIC_DPLL_H
#define REASON_LOGIC_DPLL_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "logic/cnf.h"
#include "logic/solver.h"

namespace reason {
namespace logic {

/** Effort statistics for the DPLL/lookahead phase. */
struct DpllStats
{
    uint64_t nodes = 0;
    uint64_t propagations = 0;
    uint64_t lookaheads = 0;
    uint64_t backtracks = 0;
};

/**
 * Plain DPLL solver with unit propagation and lookahead branching.
 * Intended for small instances and cube generation; use CdclSolver for
 * anything serious.
 */
class DpllSolver
{
  public:
    explicit DpllSolver(const CnfFormula &formula);

    /** Solve completely; fills model() when Sat. */
    SolveResult solve();

    const std::vector<bool> &model() const { return model_; }
    const DpllStats &stats() const { return stats_; }

    /**
     * Lookahead score for branching: number of literals forced by
     * propagating `l` on top of the current partial assignment, or
     * UINT32_MAX if propagation hits a conflict (failed literal).
     */
    uint32_t lookaheadScore(Lit l);

  private:
    friend class CubeSplitter;

    bool propagateFrom(size_t from);
    /** Assign and propagate; @return false on conflict. */
    bool assume(Lit l);
    void undoTo(size_t trail_size);
    /** Pick a branch variable by lookahead; invalid Lit if none free. */
    Lit pickLookaheadLit();
    bool allClausesSatisfied() const;
    bool recurse();

    LBool litValue(Lit l) const;

    const CnfFormula &formula_;
    std::vector<LBool> assigns_;
    std::vector<Lit> trail_;
    DpllStats stats_;
    std::vector<bool> model_;
};

/** A cube: conjunction of decision literals defining a subproblem. */
struct Cube
{
    std::vector<Lit> lits;
    /** True when lookahead already refuted this branch. */
    bool refuted = false;
};

/**
 * Cube-and-conquer driver (Heule et al. style): split the formula into
 * cubes with DPLL lookahead, then conquer each cube with a CDCL solver
 * under assumptions.
 */
class CubeSplitter
{
  public:
    /**
     * @param max_cube_depth decisions per cube (2^depth cubes at most).
     */
    CubeSplitter(const CnfFormula &formula, uint32_t max_cube_depth);

    /** Generate cubes; refuted branches are included with refuted=true. */
    std::vector<Cube> split();

    const DpllStats &stats() const { return splitter_.stats(); }

  private:
    void splitRecurse(std::vector<Cube> &out, std::vector<Lit> &prefix,
                      uint32_t depth);

    const CnfFormula &formula_;
    uint32_t maxDepth_;
    DpllSolver splitter_;
};

/** Aggregate result of a cube-and-conquer run. */
struct CubeAndConquerResult
{
    SolveResult result = SolveResult::Unknown;
    std::vector<bool> model;
    size_t numCubes = 0;
    size_t refutedByLookahead = 0;
    /** Per-cube conquer statistics, index-aligned with the cube list. */
    std::vector<SolverStats> conquerStats;
    DpllStats splitStats;
};

/**
 * Full cube-and-conquer: split into at most 2^depth cubes and conquer each
 * with CDCL under assumptions.  Functionally equivalent to solveCnf.
 */
CubeAndConquerResult cubeAndConquer(const CnfFormula &formula,
                                    uint32_t cube_depth);

} // namespace logic
} // namespace reason

#endif // REASON_LOGIC_DPLL_H
