/**
 * @file
 * Knowledge-to-circuit bridge: convert a compiled decision-DNNF into a
 * probabilistic circuit (the R2-Guard construction: logical safety
 * rules -> tractable probabilistic model).  Two lowerings share it:
 *
 * **Normalized heap route** — fromDnnf() builds a smooth, decomposable
 * pc::Circuit for the literal-weight product distribution conditioned
 * on the formula holding:
 *
 *     P(x) = [x |= phi] * prod_v w(x_v) / WMC(phi)
 *
 * parameterized locally (PSDD-style): each Or decision mixes its two
 * branches by their smoothed weighted counts, each branch is padded with
 * marginal leaves for variables it does not mention, and literal nodes
 * become indicator leaves.  Marginal and conditional queries on the
 * circuit therefore agree with WMC ratios on the formula — tested
 * exhaustively in tests/test_knowledge.cc.
 *
 * **Direct flat route** — flatFromDnnf() and streamNnfToFlat() build an
 * *unnormalized* pc::FlatCircuit straight into CSR arrays, skipping the
 * heap Circuit (and, for the streaming loader, the heap DnnfGraph)
 * entirely.  Evaluating it under a partial assignment e yields
 * log WMC(phi ∧ e); the all-missing assignment yields log WMC(phi)
 * (flatLogWmc).  Literal weights ride on sum-edge weights over 0/1
 * indicator leaves, decisions become unit-weight sums over gap-padded
 * branches, and UNSAT formulas lower to a constant-false circuit whose
 * root evaluates to -inf — no normalization step, so unsatisfiable
 * inputs are representable.  Both flat builders emit the *same* node
 * sequence as toC2dFormat() serializes, so a direct build and a
 * streamed `.nnf` round-trip of the same graph produce byte-identical
 * arrays (asserted in tests/test_compile_flat.cc).
 */

#ifndef REASON_PC_FROM_LOGIC_H
#define REASON_PC_FROM_LOGIC_H

#include <iosfwd>

#include "logic/knowledge.h"
#include "logic/nnf_io.h"
#include "pc/flat_pc.h"
#include "pc/pc.h"

namespace reason {
namespace pc {

/**
 * Build the conditioned-product-distribution circuit from a d-DNNF.
 * Variables map 1:1 (PC value 1 = true, 0 = false).
 *
 * fatal()s when the formula is unsatisfiable under the weights
 * (WMC == 0): the conditional distribution does not exist.
 */
Circuit fromDnnf(const logic::DnnfGraph &graph,
                 const logic::LitWeights &weights);

/** One-shot: compile a CNF and convert (uniform weights by default). */
Circuit compileCnf(const logic::CnfFormula &formula);
Circuit compileCnf(const logic::CnfFormula &formula,
                   const logic::LitWeights &weights);

/**
 * Lower a d-DNNF directly into a FlatCircuit computing the weighted
 * model count (see the file comment for the construction).  Handles
 * unsatisfiable graphs (constant-false circuit).  The node sequence
 * matches toC2dFormat(): a streamed round-trip through the `.nnf`
 * text of `graph` yields byte-identical CSR arrays.
 */
FlatCircuit flatFromDnnf(const logic::DnnfGraph &graph,
                         const logic::LitWeights &weights);

/** One-shot: compile a CNF straight to the flat WMC circuit
 *  (uniform weights by default). */
FlatCircuit compileCnfFlat(const logic::CnfFormula &formula);
FlatCircuit compileCnfFlat(const logic::CnfFormula &formula,
                           const logic::LitWeights &weights);

/**
 * Stream a c2d `.nnf` file bottom-up straight into a flat WMC circuit
 * without materializing a DnnfGraph: peak memory is the output CSR
 * arrays plus per-node scope sets — no pointer graph.  `weights` must
 * cover the header's variable count.  On malformed input (anything
 * NnfStreamParser rejects, plus non-decomposable And nodes) returns
 * false with *err filled and leaves *out untouched; never crashes.
 */
bool streamNnfToFlat(std::istream &in, const logic::LitWeights &weights,
                     FlatCircuit *out, logic::NnfError *err);

/** log WMC of a flat WMC circuit: its root value under the all-missing
 *  assignment (-inf for a constant-false/UNSAT circuit). */
double flatLogWmc(const FlatCircuit &flat);

} // namespace pc
} // namespace reason

#endif // REASON_PC_FROM_LOGIC_H
