#include "hmm/hmm.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/numeric.h"
#include "util/rng.h"

namespace reason {
namespace hmm {

Hmm::Hmm(uint32_t num_states, uint32_t num_symbols)
    : numStates_(num_states), numSymbols_(num_symbols),
      initial_(num_states, 1.0 / num_states),
      trans_(size_t(num_states) * num_states, 1.0 / num_states),
      emit_(size_t(num_states) * num_symbols, 1.0 / num_symbols)
{
    reasonAssert(num_states > 0 && num_symbols > 0,
                 "HMM needs states and symbols");
}

void
Hmm::setInitial(std::vector<double> pi)
{
    reasonAssert(pi.size() == numStates_, "initial size mismatch");
    initial_ = std::move(pi);
}

void
Hmm::setTransitionRow(uint32_t from, std::vector<double> row)
{
    reasonAssert(row.size() == numStates_, "transition row size mismatch");
    std::copy(row.begin(), row.end(),
              trans_.begin() + size_t(from) * numStates_);
}

void
Hmm::setEmissionRow(uint32_t state, std::vector<double> row)
{
    reasonAssert(row.size() == numSymbols_, "emission row size mismatch");
    std::copy(row.begin(), row.end(),
              emit_.begin() + size_t(state) * numSymbols_);
}

size_t
Hmm::numActiveTransitions() const
{
    return static_cast<size_t>(
        std::count_if(trans_.begin(), trans_.end(),
                      [](double p) { return p > 0.0; }));
}

size_t
Hmm::numActiveEmissions() const
{
    return static_cast<size_t>(
        std::count_if(emit_.begin(), emit_.end(),
                      [](double p) { return p > 0.0; }));
}

void
Hmm::normalize()
{
    auto normalize_span = [](double *begin, size_t n, const char *what) {
        double total = 0.0;
        for (size_t i = 0; i < n; ++i)
            total += begin[i];
        if (total <= 0.0)
            fatal("%s row has no probability mass", what);
        for (size_t i = 0; i < n; ++i)
            begin[i] /= total;
    };
    normalize_span(initial_.data(), numStates_, "initial");
    for (uint32_t s = 0; s < numStates_; ++s)
        normalize_span(trans_.data() + size_t(s) * numStates_, numStates_,
                       "transition");
    for (uint32_t s = 0; s < numStates_; ++s)
        normalize_span(emit_.data() + size_t(s) * numSymbols_,
                       numSymbols_, "emission");
}

Hmm
Hmm::random(Rng &rng, uint32_t num_states, uint32_t num_symbols,
            double concentration)
{
    Hmm h(num_states, num_symbols);
    h.setInitial(rng.dirichlet(num_states, concentration));
    for (uint32_t s = 0; s < num_states; ++s) {
        h.setTransitionRow(s, rng.dirichlet(num_states, concentration));
        h.setEmissionRow(s, rng.dirichlet(num_symbols, concentration));
    }
    return h;
}

Hmm
Hmm::banded(Rng &rng, uint32_t num_states, uint32_t num_symbols,
            uint32_t band, double concentration)
{
    Hmm h(num_states, num_symbols);
    h.setInitial(rng.dirichlet(num_states, 1.0));
    for (uint32_t s = 0; s < num_states; ++s) {
        std::vector<double> row(num_states, 0.0);
        uint32_t width = 2 * band + 1;
        auto mass = rng.dirichlet(width, concentration);
        for (uint32_t k = 0; k < width; ++k) {
            uint32_t to =
                (s + num_states + k - band) % num_states;
            row[to] += mass[k];
        }
        h.setTransitionRow(s, std::move(row));
        h.setEmissionRow(s, rng.dirichlet(num_symbols, concentration));
    }
    return h;
}

void
Hmm::sample(Rng &rng, size_t length, Sequence *obs,
            std::vector<uint32_t> *states) const
{
    reasonAssert(obs != nullptr, "sample needs an output sequence");
    obs->clear();
    if (states)
        states->clear();
    if (length == 0)
        return;
    uint32_t state = static_cast<uint32_t>(rng.categorical(initial_));
    for (size_t t = 0; t < length; ++t) {
        std::vector<double> erow(
            emit_.begin() + size_t(state) * numSymbols_,
            emit_.begin() + size_t(state + 1) * numSymbols_);
        obs->push_back(static_cast<uint32_t>(rng.categorical(erow)));
        if (states)
            states->push_back(state);
        if (t + 1 < length) {
            std::vector<double> trow(
                trans_.begin() + size_t(state) * numStates_,
                trans_.begin() + size_t(state + 1) * numStates_);
            state = static_cast<uint32_t>(rng.categorical(trow));
        }
    }
}

ForwardBackward
forwardBackward(const Hmm &hmm, const Sequence &obs)
{
    const size_t T = obs.size();
    const uint32_t N = hmm.numStates();
    reasonAssert(T > 0, "empty sequence");
    ForwardBackward fb;
    fb.alpha.assign(T, std::vector<double>(N, 0.0));
    fb.beta.assign(T, std::vector<double>(N, 0.0));
    fb.scale.assign(T, 0.0);
    fb.gamma.assign(T, std::vector<double>(N, 0.0));
    if (T > 1)
        fb.xi.assign(T - 1, std::vector<double>(size_t(N) * N, 0.0));

    // Forward with per-step scaling.
    for (uint32_t s = 0; s < N; ++s)
        fb.alpha[0][s] = hmm.initial(s) * hmm.emission(s, obs[0]);
    for (size_t t = 0; t < T; ++t) {
        if (t > 0) {
            for (uint32_t j = 0; j < N; ++j) {
                double acc = 0.0;
                for (uint32_t i = 0; i < N; ++i)
                    acc += fb.alpha[t - 1][i] * hmm.transition(i, j);
                fb.alpha[t][j] = acc * hmm.emission(j, obs[t]);
            }
        }
        double c = 0.0;
        for (uint32_t s = 0; s < N; ++s)
            c += fb.alpha[t][s];
        if (c <= 0.0) {
            // Observation impossible under the model.
            fb.logLikelihood = kLogZero;
            return fb;
        }
        fb.scale[t] = c;
        for (uint32_t s = 0; s < N; ++s)
            fb.alpha[t][s] /= c;
    }
    fb.logLikelihood = 0.0;
    for (double c : fb.scale)
        fb.logLikelihood += std::log(c);

    // Backward under the same scaling.
    for (uint32_t s = 0; s < N; ++s)
        fb.beta[T - 1][s] = 1.0;
    for (size_t t = T - 1; t-- > 0;) {
        for (uint32_t i = 0; i < N; ++i) {
            double acc = 0.0;
            for (uint32_t j = 0; j < N; ++j)
                acc += hmm.transition(i, j) *
                       hmm.emission(j, obs[t + 1]) * fb.beta[t + 1][j];
            fb.beta[t][i] = acc / fb.scale[t + 1];
        }
    }

    // Posteriors.
    for (size_t t = 0; t < T; ++t) {
        double norm = 0.0;
        for (uint32_t s = 0; s < N; ++s) {
            fb.gamma[t][s] = fb.alpha[t][s] * fb.beta[t][s];
            norm += fb.gamma[t][s];
        }
        if (norm > 0.0)
            for (uint32_t s = 0; s < N; ++s)
                fb.gamma[t][s] /= norm;
    }
    for (size_t t = 0; t + 1 < T; ++t) {
        double norm = 0.0;
        for (uint32_t i = 0; i < N; ++i) {
            for (uint32_t j = 0; j < N; ++j) {
                double v = fb.alpha[t][i] * hmm.transition(i, j) *
                           hmm.emission(j, obs[t + 1]) *
                           fb.beta[t + 1][j] / fb.scale[t + 1];
                fb.xi[t][size_t(i) * N + j] = v;
                norm += v;
            }
        }
        if (norm > 0.0)
            for (auto &v : fb.xi[t])
                v /= norm;
    }
    return fb;
}

double
sequenceLogLikelihood(const Hmm &hmm, const Sequence &obs)
{
    const size_t T = obs.size();
    const uint32_t N = hmm.numStates();
    reasonAssert(T > 0, "empty sequence");
    std::vector<double> alpha(N), next(N);
    for (uint32_t s = 0; s < N; ++s)
        alpha[s] = hmm.initial(s) * hmm.emission(s, obs[0]);
    double ll = 0.0;
    for (size_t t = 0;; ++t) {
        double c = 0.0;
        for (uint32_t s = 0; s < N; ++s)
            c += alpha[s];
        if (c <= 0.0)
            return kLogZero;
        ll += std::log(c);
        for (uint32_t s = 0; s < N; ++s)
            alpha[s] /= c;
        if (t + 1 == T)
            break;
        for (uint32_t j = 0; j < N; ++j) {
            double acc = 0.0;
            for (uint32_t i = 0; i < N; ++i)
                acc += alpha[i] * hmm.transition(i, j);
            next[j] = acc * hmm.emission(j, obs[t + 1]);
        }
        alpha.swap(next);
    }
    return ll;
}

ViterbiResult
viterbi(const Hmm &hmm, const Sequence &obs)
{
    const size_t T = obs.size();
    const uint32_t N = hmm.numStates();
    reasonAssert(T > 0, "empty sequence");
    std::vector<std::vector<double>> delta(T, std::vector<double>(N));
    std::vector<std::vector<uint32_t>> psi(T, std::vector<uint32_t>(N, 0));

    auto log_or_zero = [](double p) {
        return p > 0.0 ? std::log(p) : kLogZero;
    };

    for (uint32_t s = 0; s < N; ++s)
        delta[0][s] = log_or_zero(hmm.initial(s)) +
                      log_or_zero(hmm.emission(s, obs[0]));
    for (size_t t = 1; t < T; ++t) {
        for (uint32_t j = 0; j < N; ++j) {
            double best = kLogZero;
            uint32_t arg = 0;
            for (uint32_t i = 0; i < N; ++i) {
                double cand =
                    delta[t - 1][i] + log_or_zero(hmm.transition(i, j));
                if (cand > best) {
                    best = cand;
                    arg = i;
                }
            }
            delta[t][j] = best + log_or_zero(hmm.emission(j, obs[t]));
            psi[t][j] = arg;
        }
    }

    ViterbiResult res;
    uint32_t arg = 0;
    double best = kLogZero;
    for (uint32_t s = 0; s < N; ++s) {
        if (delta[T - 1][s] > best) {
            best = delta[T - 1][s];
            arg = s;
        }
    }
    res.logProb = best;
    res.path.assign(T, 0);
    res.path[T - 1] = arg;
    for (size_t t = T - 1; t-- > 0;)
        res.path[t] = psi[t + 1][res.path[t + 1]];
    return res;
}

double
bruteForceLogLikelihood(const Hmm &hmm, const Sequence &obs)
{
    const size_t T = obs.size();
    const uint32_t N = hmm.numStates();
    double paths = std::pow(double(N), double(T));
    reasonAssert(paths <= (1 << 22), "brute force path count too large");
    uint64_t limit = static_cast<uint64_t>(paths);
    double acc = kLogZero;
    std::vector<uint32_t> z(T);
    for (uint64_t m = 0; m < limit; ++m) {
        uint64_t rest = m;
        for (size_t t = 0; t < T; ++t) {
            z[t] = static_cast<uint32_t>(rest % N);
            rest /= N;
        }
        double logp = std::log(hmm.initial(z[0])) +
                      std::log(hmm.emission(z[0], obs[0]));
        bool dead = hmm.initial(z[0]) <= 0.0 ||
                    hmm.emission(z[0], obs[0]) <= 0.0;
        for (size_t t = 1; t < T && !dead; ++t) {
            double pt = hmm.transition(z[t - 1], z[t]);
            double pe = hmm.emission(z[t], obs[t]);
            if (pt <= 0.0 || pe <= 0.0) {
                dead = true;
                break;
            }
            logp += std::log(pt) + std::log(pe);
        }
        if (!dead)
            acc = logAdd(acc, logp);
    }
    return acc;
}

BaumWelchTrace
baumWelch(Hmm &hmm, const std::vector<Sequence> &data,
          uint32_t max_iterations, double tolerance, double smoothing)
{
    reasonAssert(!data.empty(), "baumWelch needs data");
    const uint32_t N = hmm.numStates();
    const uint32_t M = hmm.numSymbols();
    BaumWelchTrace trace;

    auto total_ll = [&]() {
        double acc = 0.0;
        for (const auto &seq : data)
            acc += sequenceLogLikelihood(hmm, seq);
        return acc / static_cast<double>(data.size());
    };
    trace.logLikelihood.push_back(total_ll());

    for (uint32_t it = 0; it < max_iterations; ++it) {
        std::vector<double> pi(N, 0.0);
        std::vector<double> trans_num(size_t(N) * N, 0.0);
        std::vector<double> trans_den(N, 0.0);
        std::vector<double> emit_num(size_t(N) * M, 0.0);
        std::vector<double> emit_den(N, 0.0);

        for (const auto &seq : data) {
            ForwardBackward fb = forwardBackward(hmm, seq);
            if (fb.logLikelihood == kLogZero)
                continue;
            for (uint32_t s = 0; s < N; ++s)
                pi[s] += fb.gamma[0][s];
            for (size_t t = 0; t + 1 < seq.size(); ++t) {
                for (uint32_t i = 0; i < N; ++i) {
                    trans_den[i] += fb.gamma[t][i];
                    for (uint32_t j = 0; j < N; ++j)
                        trans_num[size_t(i) * N + j] +=
                            fb.xi[t][size_t(i) * N + j];
                }
            }
            for (size_t t = 0; t < seq.size(); ++t) {
                for (uint32_t s = 0; s < N; ++s) {
                    emit_den[s] += fb.gamma[t][s];
                    emit_num[size_t(s) * M + seq[t]] += fb.gamma[t][s];
                }
            }
        }

        std::vector<double> new_pi(N);
        double pi_total = 0.0;
        for (uint32_t s = 0; s < N; ++s)
            pi_total += pi[s] + smoothing;
        for (uint32_t s = 0; s < N; ++s)
            new_pi[s] = (pi[s] + smoothing) / pi_total;
        hmm.setInitial(new_pi);

        for (uint32_t i = 0; i < N; ++i) {
            std::vector<double> row(N);
            double denom = trans_den[i] + smoothing * N;
            for (uint32_t j = 0; j < N; ++j)
                row[j] =
                    (trans_num[size_t(i) * N + j] + smoothing) / denom;
            hmm.setTransitionRow(i, std::move(row));
        }
        for (uint32_t s = 0; s < N; ++s) {
            std::vector<double> row(M);
            double denom = emit_den[s] + smoothing * M;
            for (uint32_t m = 0; m < M; ++m)
                row[m] = (emit_num[size_t(s) * M + m] + smoothing) / denom;
            hmm.setEmissionRow(s, std::move(row));
        }
        hmm.normalize();

        double ll = total_ll();
        trace.logLikelihood.push_back(ll);
        ++trace.iterations;
        double prev = trace.logLikelihood[trace.logLikelihood.size() - 2];
        if (ll - prev < tolerance)
            break;
    }
    return trace;
}

HmmPruneResult
pruneByPosterior(const Hmm &hmm, const std::vector<Sequence> &data,
                 double usage_threshold)
{
    reasonAssert(!data.empty(), "pruneByPosterior needs data");
    const uint32_t N = hmm.numStates();
    const uint32_t M = hmm.numSymbols();

    std::vector<double> trans_usage(size_t(N) * N, 0.0);
    std::vector<double> emit_usage(size_t(N) * M, 0.0);
    double total_trans = 0.0;
    double total_emit = 0.0;
    for (const auto &seq : data) {
        ForwardBackward fb = forwardBackward(hmm, seq);
        if (fb.logLikelihood == kLogZero)
            continue;
        for (size_t t = 0; t + 1 < seq.size(); ++t)
            for (size_t k = 0; k < trans_usage.size(); ++k) {
                trans_usage[k] += fb.xi[t][k];
                total_trans += fb.xi[t][k];
            }
        for (size_t t = 0; t < seq.size(); ++t)
            for (uint32_t s = 0; s < N; ++s) {
                emit_usage[size_t(s) * M + seq[t]] += fb.gamma[t][s];
                total_emit += fb.gamma[t][s];
            }
    }

    HmmPruneResult res;
    Hmm out = hmm;
    size_t active_trans = hmm.numActiveTransitions();
    size_t active_emit = hmm.numActiveEmissions();
    size_t params_before = active_trans + active_emit;

    // The threshold is a fraction of the *average* usage per active
    // entry of each type, so transition and emission pruning are
    // calibrated independently of their entry counts.
    double trans_cut =
        active_trans > 0
            ? usage_threshold * total_trans / double(active_trans)
            : 0.0;
    double emit_cut =
        active_emit > 0
            ? usage_threshold * total_emit / double(active_emit)
            : 0.0;

    for (uint32_t i = 0; i < N; ++i) {
        std::vector<double> row(N);
        uint32_t best = 0;
        for (uint32_t j = 0; j < N; ++j) {
            row[j] = hmm.transition(i, j);
            if (trans_usage[size_t(i) * N + j] >
                trans_usage[size_t(i) * N + best])
                best = j;
        }
        for (uint32_t j = 0; j < N; ++j) {
            if (j == best || row[j] == 0.0)
                continue;
            if (trans_usage[size_t(i) * N + j] < trans_cut) {
                row[j] = 0.0;
                ++res.transitionsRemoved;
            }
        }
        out.setTransitionRow(i, std::move(row));
    }
    for (uint32_t s = 0; s < N; ++s) {
        std::vector<double> row(M);
        uint32_t best = 0;
        for (uint32_t m = 0; m < M; ++m) {
            row[m] = hmm.emission(s, m);
            if (emit_usage[size_t(s) * M + m] >
                emit_usage[size_t(s) * M + best])
                best = m;
        }
        for (uint32_t m = 0; m < M; ++m) {
            if (m == best || row[m] == 0.0)
                continue;
            if (emit_usage[size_t(s) * M + m] < emit_cut) {
                row[m] = 0.0;
                ++res.emissionsRemoved;
            }
        }
        out.setEmissionRow(s, std::move(row));
    }
    out.normalize();

    size_t params_after =
        out.numActiveTransitions() + out.numActiveEmissions();
    res.parameterReduction =
        params_before == 0
            ? 0.0
            : 1.0 - static_cast<double>(params_after) /
                        static_cast<double>(params_before);
    res.pruned = std::move(out);
    return res;
}

} // namespace hmm
} // namespace reason
