#include "sys/engine.h"

#include <bit>
#include <cmath>

#include "pc/flat_cache.h"
#include "pc/pc.h"
#include "sys/fault.h"
#include "util/logging.h"

namespace reason {
namespace sys {

/**
 * Shared per-session state.  Exactly one of the two kinds is active:
 * circuit sessions carry the cached lowering (also their coalescing
 * key); program sessions carry the compiled program and a private
 * cycle-accurate accelerator, used only by the dispatcher.
 */
struct SessionState
{
    /** Circuit sessions: immutable shared lowering. */
    std::shared_ptr<const pc::FlatCircuit> lowering;

    /** Program sessions. */
    std::unique_ptr<arch::Accelerator> accel;
    compiler::Program program;
    uint32_t numInputs = 0;

    bool isProgram() const { return accel != nullptr; }
};

namespace {

/** Distinct lowerings each dispatcher keeps warm evaluators for. */
constexpr size_t kMaxCachedEvaluators = 32;

QueueOptions
queueOptionsFrom(const ServeOptions &options)
{
    QueueOptions q;
    q.capacity = options.queueCapacity;
    q.policy = options.queuePolicy;
    q.autoLinger = options.autoLingerWindow;
    return q;
}

} // namespace

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

RequestHandle
Session::finishRejected(std::shared_ptr<Request> request, int error) const
{
    request->error = error;
    request->state = RequestState::Done;
    return RequestHandle(std::move(request));
}

RequestHandle
Session::submit(pc::Assignment row)
{
    std::vector<pc::Assignment> rows;
    rows.push_back(std::move(row));
    return submitBatch(std::move(rows));
}

RequestHandle
Session::submitBatch(std::vector<pc::Assignment> rows)
{
    return submitBatch(std::move(rows), 0.0);
}

RequestHandle
Session::submit(pc::Assignment row, double accuracyBudget)
{
    std::vector<pc::Assignment> rows;
    rows.push_back(std::move(row));
    return submitBatch(std::move(rows), accuracyBudget);
}

RequestHandle
Session::submit(pc::Assignment row, double accuracyBudget,
                uint64_t deadlineNs)
{
    std::vector<pc::Assignment> rows;
    rows.push_back(std::move(row));
    return submitBatch(std::move(rows), accuracyBudget, deadlineNs);
}

RequestHandle
Session::submitBatch(std::vector<pc::Assignment> rows,
                     double accuracyBudget)
{
    return submitBatch(std::move(rows), accuracyBudget, 0);
}

RequestHandle
Session::submitBatch(std::vector<pc::Assignment> rows,
                     double accuracyBudget, uint64_t deadlineNs)
{
    auto request = std::make_shared<Request>();
    request->session = state_;
    if (engine_ == nullptr || state_ == nullptr || state_->isProgram())
        return finishRejected(std::move(request),
                              REASON_ERR_WRONG_SESSION);
    // NaN fails the >= comparison; infinities are explicit.  Budgets
    // are rejected, never clamped.
    if (!(accuracyBudget >= 0.0) || std::isinf(accuracyBudget))
        return finishRejected(std::move(request),
                              REASON_ERR_BAD_BUDGET);
    if (rows.empty())
        return finishRejected(std::move(request), REASON_ERR_BAD_BATCH);
    const pc::FlatCircuit &flat = *state_->lowering;
    for (const pc::Assignment &x : rows) {
        if (x.size() < flat.numVars)
            return finishRejected(std::move(request),
                                  REASON_ERR_BAD_ASSIGNMENT);
        for (uint32_t v = 0; v < flat.numVars; ++v)
            if (x[v] != pc::kMissing && x[v] >= flat.arity)
                return finishRejected(std::move(request),
                                      REASON_ERR_BAD_ASSIGNMENT);
    }
    // Tier selection: a positive budget routes to the approximate
    // tier; budget 0 (including -0.0) is the exact tier, so the
    // budgeted overloads degrade to the classic path bit for bit.
    if (accuracyBudget > 0.0) {
        request->mode = REASON_MODE_APPROX;
        request->accuracyBudget = accuracyBudget;
    } else {
        request->mode = REASON_MODE_PROBABILISTIC;
    }
    request->groupKey = state_->lowering.get();
    request->rows = std::move(rows);
    // Deadlines are relative at the API surface (clients think in
    // timeouts) and anchored to the steady clock here, so queue hops
    // never re-anchor them.
    if (deadlineNs != 0)
        request->deadlineNs = steadyNowNs() + deadlineNs;
    return engine_->enqueue(request);
}

RequestHandle
Session::submitProgram(int batch_size, const double *inputs, int mode)
{
    auto request = std::make_shared<Request>();
    request->session = state_;
    if (engine_ == nullptr || state_ == nullptr || !state_->isProgram())
        return finishRejected(std::move(request),
                              REASON_ERR_WRONG_SESSION);
    if (batch_size <= 0)
        return finishRejected(std::move(request), REASON_ERR_BAD_BATCH);
    if (inputs == nullptr)
        return finishRejected(std::move(request),
                              REASON_ERR_NULL_BUFFER);
    if (mode < REASON_MODE_PROBABILISTIC || mode > REASON_MODE_SPMSPM)
        return finishRejected(std::move(request), REASON_ERR_BAD_MODE);
    request->mode = ReasonMode(mode);
    request->groupKey = state_.get();
    // Program execution mutates the session accelerator: the shard
    // must serialize its in-flight groups across dispatchers.
    request->exclusive = true;
    request->batchSize = batch_size;
    request->inputs.assign(inputs,
                           inputs + size_t(batch_size) *
                                        state_->numInputs);
    return engine_->enqueue(request);
}

bool
Session::poll(const RequestHandle &handle) const
{
    reasonAssert(handle.valid(), "poll on an invalid handle");
    if (engine_ == nullptr) {
        // An invalid session can only have produced rejected-at-submit
        // handles; those completed synchronously and were never shared
        // with a dispatcher, so the unsynchronized read is safe.
        reasonAssert(handle.request_->state == RequestState::Done,
                     "poll on an invalid session");
        return true;
    }
    return engine_->queue_.pollDone(*handle.request_);
}

std::shared_ptr<const Request>
Session::wait(const RequestHandle &handle) const
{
    reasonAssert(handle.valid(), "wait on an invalid handle");
    if (engine_ == nullptr) {
        // See poll(): only already-completed rejection handles exist.
        reasonAssert(handle.request_->state == RequestState::Done,
                     "wait on an invalid session");
        return handle.request_;
    }
    engine_->queue_.waitDone(*handle.request_);
    return handle.request_;
}

// ---------------------------------------------------------------------------
// ReasonEngine
// ---------------------------------------------------------------------------

ReasonEngine::ReasonEngine(const ServeOptions &options)
    : options_(options), queue_(queueOptionsFrom(options))
{
    if (options_.maxBatch == 0)
        options_.maxBatch = 1;
    if (options_.dispatchers == 0)
        options_.dispatchers = 1;
    if (options_.startPaused)
        queue_.pause();
    // Disjoint pin layout: dispatcher d occupies the contiguous core
    // block [base, base + poolThreads).  The dispatcher thread takes
    // the block's first core — it is worker 0 of its own pool (the
    // parallelFor caller) — and the pool's spawned workers take the
    // rest, so pools of different dispatchers never stack on the same
    // low core indices.
    unsigned pin_base = 0;
    for (unsigned d = 0; d < options_.dispatchers; ++d) {
        auto disp = std::make_unique<Dispatcher>();
        disp->evalPool = std::make_unique<util::ThreadPool>(
            options_.serveThreads, options_.pinThreads, pin_base);
        disp->pinCore = pin_base;
        pin_base += disp->evalPool->numThreads();
        dispatchers_.push_back(std::move(disp));
    }
    for (unsigned d = 0; d < options_.dispatchers; ++d) {
        Dispatcher *disp = dispatchers_[d].get();
        disp->thread = std::thread([this, disp] {
            if (options_.pinThreads)
                util::pinCurrentThreadToCore(disp->pinCore);
            workerLoop(*disp);
        });
    }
}

ReasonEngine::~ReasonEngine()
{
    queue_.shutdown();
    for (auto &disp : dispatchers_)
        if (disp->thread.joinable())
            disp->thread.join();
}

Session
ReasonEngine::createSession(const pc::Circuit &circuit)
{
    auto state = std::make_shared<SessionState>();
    state->lowering = pc::cachedLowering(circuit);
    return Session(this, std::move(state));
}

Session
ReasonEngine::createSession(std::shared_ptr<const pc::FlatCircuit> lowering)
{
    reasonAssert(lowering != nullptr, "createSession: null lowering");
    auto state = std::make_shared<SessionState>();
    state->lowering = std::move(lowering);
    return Session(this, std::move(state));
}

Session
ReasonEngine::createSession(const arch::ArchConfig &config,
                            compiler::Program program)
{
    auto state = std::make_shared<SessionState>();
    state->accel = std::make_unique<arch::Accelerator>(config);
    state->program = std::move(program);
    uint32_t num_inputs = 0;
    for (const auto &p : state->program.inputs)
        num_inputs = std::max(num_inputs, p.inputTag + 1);
    state->numInputs = num_inputs;
    return Session(this, std::move(state));
}

void
ReasonEngine::pause()
{
    queue_.pause();
}

void
ReasonEngine::resume()
{
    queue_.resume();
}

bool
ReasonEngine::drain(uint64_t deadlineNs)
{
    queue_.beginDrain();
    return queue_.drainWait(steadyNowNs() + deadlineNs);
}

EngineStats
ReasonEngine::stats() const
{
    const QueueStats q = queue_.stats();
    EngineStats s;
    s.requests = q.requests;
    s.rows = q.rows;
    s.batches = q.batches;
    s.completed = q.completed;
    s.executed = q.executed;
    s.meanBatchOccupancy = q.meanBatchOccupancy();
    s.maxQueueDepth = q.maxQueueDepth;
    // Means are over *executed* requests: shed/rejected/shutdown
    // completions carry no latency and would bias the means low
    // exactly when the engine is overloaded.
    if (q.executed > 0) {
        s.meanQueueMs =
            double(q.totalQueueNs) / double(q.executed) * 1e-6;
        s.meanLatencyMs =
            double(q.totalLatencyNs) / double(q.executed) * 1e-6;
    }
    s.shedRequests = q.shedRequests;
    s.expired = q.expired;
    s.cancelled = q.cancelled;
    s.p50LatencyMs = q.p50LatencyMs;
    s.p99LatencyMs = q.p99LatencyMs;
    s.ewmaInterArrivalUs = q.ewmaInterArrivalUs;
    s.ewmaExecUs = q.ewmaExecUs;
    s.lastLingerUs = q.lastLingerUs;
    return s;
}

RequestHandle
ReasonEngine::enqueue(const std::shared_ptr<Request> &request)
{
    request->id = nextId_.fetch_add(1, std::memory_order_relaxed);
    queue_.push(request);
    return RequestHandle(request);
}

void
ReasonEngine::workerLoop(Dispatcher &disp)
{
    for (;;) {
        std::vector<std::shared_ptr<Request>> group =
            queue_.popGroup(options_.maxBatch,
                            options_.maxCoalesceWindowUs);
        if (group.empty())
            return; // shutdown
        // Fault-injection hook: a configured plan may stall this
        // dispatcher here, between pop and execution — the window in
        // which queued deadlines keep expiring.  Zero-cost when no
        // plan is installed (one relaxed atomic load).
        faultDispatchStall();
        executeGroup(disp, group);
        queue_.complete(group);
    }
}

void
ReasonEngine::executeGroup(
    Dispatcher &disp,
    const std::vector<std::shared_ptr<Request>> &group)
{
    if (group.front()->session->isProgram()) {
        // Program requests share a key only within one session; their
        // shard is exclusive (one in-flight group), so they execute
        // back to back, each exactly like a sequential REASON_execute
        // call — for any dispatcher count.
        for (const auto &r : group)
            executeProgramRequest(disp, *r);
        return;
    }
    if (group.front()->mode == REASON_MODE_APPROX) {
        executeApproxGroup(disp, group);
        return;
    }
    executeCircuitGroup(disp, group);
}

pc::CircuitEvaluator &
ReasonEngine::evaluatorFor(Dispatcher &disp,
                           const pc::FlatCircuit &flat,
                           std::shared_ptr<const pc::FlatCircuit>
                               keepAlive)
{
    auto it = disp.evaluators.find(&flat);
    if (it == disp.evaluators.end()) {
        // Bounded: in-flight requests pin their lowerings through the
        // session state, so dropping a warm evaluator is always safe.
        // Evict one victim, not the whole cache — the other warm
        // evaluators stay hot.
        if (disp.evaluators.size() >= kMaxCachedEvaluators)
            disp.evaluators.erase(disp.evaluators.begin());
        CachedEvaluator entry;
        entry.flat = std::move(keepAlive);
        entry.eval = std::make_unique<pc::CircuitEvaluator>(
            flat, disp.evalPool.get());
        it = disp.evaluators.emplace(&flat, std::move(entry)).first;
    }
    return *it->second.eval;
}

void
ReasonEngine::executeCircuitGroup(
    Dispatcher &disp,
    const std::vector<std::shared_ptr<Request>> &group)
{
    const pc::FlatCircuit &flat = *static_cast<const pc::FlatCircuit *>(
        group.front()->groupKey);
    pc::CircuitEvaluator &eval =
        evaluatorFor(disp, flat, group.front()->session->lowering);

    size_t total = 0;
    for (const auto &r : group)
        total += r->rows.size();

    // No padding needed: logLikelihoodBatch runs every row — tails
    // included — through the one canonical SIMD block kernel with
    // independent lanes, so each request's outputs are bit-identical
    // regardless of how it was coalesced.
    disp.groupRows.resize(total);
    size_t at = 0;
    for (const auto &r : group)
        for (const pc::Assignment &x : r->rows)
            disp.groupRows[at++].assign(x.begin(), x.end());

    disp.groupOut.resize(total);
    eval.logLikelihoodBatch(disp.groupRows,
                            {disp.groupOut.data(),
                             disp.groupOut.size()});

    at = 0;
    for (const auto &r : group) {
        r->outputs.assign(
            disp.groupOut.begin() + long(at),
            disp.groupOut.begin() + long(at + r->rows.size()));
        at += r->rows.size();
    }
}

pc::ApproxEvaluator &
ReasonEngine::approxEvaluatorFor(Dispatcher &disp,
                                 const pc::FlatCircuit &flat,
                                 double budget,
                                 std::shared_ptr<const pc::FlatCircuit>
                                     keepAlive)
{
    const ApproxKey key{&flat, std::bit_cast<uint64_t>(budget)};
    auto it = disp.approxEvaluators.find(key);
    if (it == disp.approxEvaluators.end()) {
        // Same bounded-cache discipline as the exact evaluators:
        // lowerings stay pinned by in-flight sessions, so evicting a
        // warm evaluator is always safe.
        if (disp.approxEvaluators.size() >= kMaxCachedEvaluators)
            disp.approxEvaluators.erase(disp.approxEvaluators.begin());
        CachedApprox entry;
        entry.flat = std::move(keepAlive);
        pc::ApproxOptions opts;
        opts.budget = budget;
        entry.eval = std::make_unique<pc::ApproxEvaluator>(flat, opts);
        it = disp.approxEvaluators.emplace(key, std::move(entry)).first;
    }
    return *it->second.eval;
}

void
ReasonEngine::executeApproxGroup(
    Dispatcher &disp,
    const std::vector<std::shared_ptr<Request>> &group)
{
    // An approx shard coalesces requests of one lowering but possibly
    // different budgets; each request runs against the evaluator built
    // for exactly its budget.  Queries are scalar and row-independent
    // (pc::ApproxEvaluator::queryBatch), so outputs and bounds are
    // bit-identical no matter how the group was coalesced — the same
    // contract as the exact tier.
    const pc::FlatCircuit &flat = *static_cast<const pc::FlatCircuit *>(
        group.front()->groupKey);
    for (const auto &r : group) {
        pc::ApproxEvaluator &eval = approxEvaluatorFor(
            disp, flat, r->accuracyBudget, r->session->lowering);
        eval.queryBatch(r->rows, disp.approxOut);
        const size_t n = r->rows.size();
        r->outputs.resize(n);
        r->boundLo.resize(n);
        r->boundHi.resize(n);
        for (size_t i = 0; i < n; ++i) {
            r->outputs[i] = disp.approxOut[i].value;
            r->boundLo[i] = disp.approxOut[i].lo;
            r->boundHi[i] = disp.approxOut[i].hi;
        }
    }
}

void
ReasonEngine::executeProgramRequest(Dispatcher &disp, Request &request)
{
    SessionState &s = *request.session;
    const double *in = request.inputs.data();
    const int batch_size = request.batchSize;
    request.outputs.resize(size_t(batch_size));

    uint64_t batch_cycles = 0;
    disp.inputRow.resize(s.numInputs);
    for (int b = 0; b < batch_size; ++b) {
        // Reused row buffer: batched serving must not allocate per item.
        disp.inputRow.assign(in + size_t(b) * s.numInputs,
                             in + size_t(b + 1) * s.numInputs);
        arch::ExecutionResult r =
            s.accel->run(s.program, disp.inputRow, /*preloaded=*/b > 0);
        request.outputs[size_t(b)] = r.rootValue;
        batch_cycles += r.cycles;
        if (b == batch_size - 1)
            request.exec = std::move(r);
    }
    request.execCycles = batch_cycles;
}

} // namespace sys
} // namespace reason
