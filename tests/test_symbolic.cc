/**
 * @file
 * Symbolic-engine tests (Sec. V-D/V-E): the cycle-stepped BCP pipeline
 * must reproduce software unit propagation exactly (implication fixpoint
 * and conflict detection), and the full accelerator solve must agree
 * with the reference CDCL solver on satisfiability.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "arch/symbolic.h"
#include "logic/cnf.h"
#include "logic/solver.h"
#include "util/rng.h"

using namespace reason;
using namespace reason::arch;
using namespace reason::logic;

namespace {

/** Reference software unit propagation to fixpoint. */
struct RefProp
{
    std::vector<LBool> assigns;
    bool conflict = false;

    explicit RefProp(const CnfFormula &f)
        : assigns(f.numVars(), LBool::Undef)
    {
    }

    LBool
    value(Lit l) const
    {
        LBool v = assigns[l.var()];
        if (v == LBool::Undef)
            return v;
        return l.negated() ? negate(v) : v;
    }

    void
    decide(const CnfFormula &f, Lit d)
    {
        if (value(d) == LBool::False) {
            conflict = true;
            return;
        }
        assigns[d.var()] = d.negated() ? LBool::False : LBool::True;
        bool changed = true;
        while (changed && !conflict) {
            changed = false;
            for (const auto &clause : f.clauses()) {
                bool sat = false;
                uint32_t free_count = 0;
                Lit unit;
                for (const Lit &l : clause) {
                    LBool v = value(l);
                    if (v == LBool::True) {
                        sat = true;
                        break;
                    }
                    if (v == LBool::Undef) {
                        ++free_count;
                        unit = l;
                    }
                }
                if (sat)
                    continue;
                if (free_count == 0) {
                    conflict = true;
                    break;
                }
                if (free_count == 1) {
                    assigns[unit.var()] =
                        unit.negated() ? LBool::False : LBool::True;
                    changed = true;
                }
            }
        }
    }
};

} // namespace

TEST(BcpPipeline, SimpleImplicationChain)
{
    CnfFormula f(3);
    f.addClause({-1, 2});  // x0 -> x1
    f.addClause({-2, 3});  // x1 -> x2
    ArchConfig cfg;
    BcpPipeline pipe(f, cfg);
    BcpResult r = pipe.decide(Lit::make(0, false));
    EXPECT_FALSE(r.conflict);
    ASSERT_EQ(r.implications.size(), 2u);
    EXPECT_EQ(pipe.value(1), LBool::True);
    EXPECT_EQ(pipe.value(2), LBool::True);
    EXPECT_GT(r.cycles, 0u);
}

TEST(BcpPipeline, ConflictDetectionAndFlush)
{
    CnfFormula f(3);
    f.addClause({-1, 2});
    f.addClause({-1, 3});
    f.addClause({-2, -3});
    ArchConfig cfg;
    BcpPipeline pipe(f, cfg);
    BcpResult r = pipe.decide(Lit::make(0, false), true);
    EXPECT_TRUE(r.conflict);
    EXPECT_GE(pipe.events().get("conflicts"), 1u);
    // The trace must contain a conflict event.
    bool saw_conflict = false;
    for (const auto &ev : r.trace)
        saw_conflict |= ev.unit == "conflict";
    EXPECT_TRUE(saw_conflict);
}

TEST(BcpPipeline, ResetClearsAssignments)
{
    CnfFormula f(2);
    f.addClause({-1, 2});
    ArchConfig cfg;
    BcpPipeline pipe(f, cfg);
    pipe.decide(Lit::make(0, false));
    EXPECT_EQ(pipe.value(1), LBool::True);
    pipe.reset();
    EXPECT_EQ(pipe.value(0), LBool::Undef);
    EXPECT_EQ(pipe.value(1), LBool::Undef);
}

TEST(BcpPipeline, TraceRecordsBroadcastAndReduce)
{
    CnfFormula f(2);
    f.addClause({-1, 2});
    ArchConfig cfg;
    BcpPipeline pipe(f, cfg);
    BcpResult r = pipe.decide(Lit::make(0, false), true);
    bool saw_broadcast = false, saw_reduce = false;
    for (const auto &ev : r.trace) {
        saw_broadcast |= ev.unit == "broadcast";
        saw_reduce |= ev.unit == "reduce";
    }
    EXPECT_TRUE(saw_broadcast);
    EXPECT_TRUE(saw_reduce);
}

TEST(BcpPipeline, TinySramTriggersDma)
{
    Rng rng(71);
    CnfFormula f = randomKSat(rng, 60, 260, 3);
    ArchConfig cfg;
    cfg.sramBytes = 256; // only a few clauses fit
    BcpPipeline pipe(f, cfg);
    for (uint32_t v = 0; v < 12; ++v) {
        if (pipe.value(v) != LBool::Undef)
            continue;
        BcpResult r = pipe.decide(Lit::make(v, rng.bernoulli(0.5)));
        if (r.conflict)
            break;
    }
    EXPECT_GT(pipe.events().get("dma_fetches"), 0u);
    EXPECT_GT(pipe.sram().misses(), 0u);
}

/**
 * Functional parity sweep: pipeline BCP fixpoint == software unit
 * propagation fixpoint (assignments when conflict-free; conflict flag
 * always).
 */
class BcpParity : public ::testing::TestWithParam<int>
{
};

TEST_P(BcpParity, MatchesSoftwarePropagation)
{
    Rng rng(GetParam() * 104659 + 11);
    uint32_t vars = 12 + GetParam() % 10;
    CnfFormula f = randomKSat(rng, vars,
                              static_cast<uint32_t>(3.6 * vars), 3);
    ArchConfig cfg;
    BcpPipeline pipe(f, cfg);
    RefProp ref(f);

    for (int step = 0; step < 6; ++step) {
        // Pick an unassigned variable (same choice for both engines).
        uint32_t var = ~0u;
        for (uint32_t v = 0; v < vars; ++v) {
            if (pipe.value(v) == LBool::Undef &&
                ref.assigns[v] == LBool::Undef) {
                var = v;
                break;
            }
        }
        if (var == ~0u)
            break;
        Lit d = Lit::make(var, rng.bernoulli(0.5));
        BcpResult hw = pipe.decide(d);
        ref.decide(f, d);
        ASSERT_EQ(hw.conflict, ref.conflict)
            << "conflict parity at step " << step;
        if (hw.conflict)
            break;
        for (uint32_t v = 0; v < vars; ++v)
            EXPECT_EQ(pipe.value(v), ref.assigns[v])
                << "variable " << v << " at step " << step;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BcpParity, ::testing::Range(0, 30));

/** Accelerator solve agrees with the reference CDCL solver. */
class AccelSolve : public ::testing::TestWithParam<int>
{
};

TEST_P(AccelSolve, ResultMatchesSoftwareCdcl)
{
    Rng rng(GetParam() * 28657 + 3);
    uint32_t vars = 16 + GetParam() % 10;
    CnfFormula f = randomKSat(rng, vars,
                              static_cast<uint32_t>(4.25 * vars), 3);
    SolveResult expect = solveCnf(f);
    ArchConfig cfg;
    SymbolicTiming t = solveOnAccelerator(f, cfg, 3);
    EXPECT_EQ(t.result, expect);
    EXPECT_GT(t.cycles, 0u);
    EXPECT_GT(t.seconds, 0.0);
    EXPECT_LE(t.peUtilization, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AccelSolve, ::testing::Range(0, 20));

TEST(AccelSolve, PigeonholeUnsatWithParallelCubes)
{
    ArchConfig cfg;
    SymbolicTiming t = solveOnAccelerator(pigeonhole(5), cfg, 4);
    EXPECT_EQ(t.result, SolveResult::Unsat);
    // Conquer work spreads over multiple PEs.
    size_t busy_pes = 0;
    for (uint64_t c : t.peBusyCycles)
        busy_pes += c > 0 ? 1 : 0;
    EXPECT_GT(busy_pes, 1u);
}

TEST(EstimateCycles, MonotoneInWork)
{
    ArchConfig cfg;
    SolverStats small, big;
    small.decisions = 10;
    small.propagations = 100;
    small.literalVisits = 500;
    big = small;
    big.propagations = 10000;
    big.conflicts = 50;
    big.learnedLiterals = 500;
    EXPECT_LT(estimateCdclCycles(small, 1 << 12, cfg),
              estimateCdclCycles(big, 1 << 12, cfg));
    // Larger clause DB -> more SRAM misses -> more cycles.
    EXPECT_LE(estimateCdclCycles(big, 1 << 10, cfg),
              estimateCdclCycles(big, 64 << 20, cfg));
}

TEST(EstimateCycles, FasterClockMeansFewerSeconds)
{
    ArchConfig slow, fast;
    fast.clockGhz = 1.0;
    SolverStats st;
    st.propagations = 10000;
    uint64_t cycles = estimateCdclCycles(st, 4096, slow);
    EXPECT_GT(double(cycles) * slow.cycleSeconds(),
              double(cycles) * fast.cycleSeconds());
}
