/**
 * @file
 * Tests for the HMM substrate: forward/backward against brute-force
 * path enumeration, posterior normalization, Viterbi optimality,
 * Baum-Welch improvement, and posterior-based pruning.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "hmm/hmm.h"
#include "util/numeric.h"
#include "util/rng.h"

using namespace reason;
using namespace reason::hmm;

namespace {

Hmm
weatherModel()
{
    // Classic 2-state (rainy/sunny), 3-symbol (walk/shop/clean) HMM.
    Hmm h(2, 3);
    h.setInitial({0.6, 0.4});
    h.setTransitionRow(0, {0.7, 0.3});
    h.setTransitionRow(1, {0.4, 0.6});
    h.setEmissionRow(0, {0.1, 0.4, 0.5});
    h.setEmissionRow(1, {0.6, 0.3, 0.1});
    return h;
}

} // namespace

TEST(Hmm, ForwardMatchesHandComputation)
{
    Hmm h = weatherModel();
    // P(obs = [walk]) = 0.6*0.1 + 0.4*0.6 = 0.30
    EXPECT_NEAR(std::exp(sequenceLogLikelihood(h, {0})), 0.30, 1e-12);
}

class HmmRandom : public ::testing::TestWithParam<int>
{
};

TEST_P(HmmRandom, ForwardMatchesBruteForce)
{
    Rng rng(GetParam() * 7 + 100);
    uint32_t states = 2 + GetParam() % 3;
    Hmm h = Hmm::random(rng, states, 4);
    Sequence obs;
    h.sample(rng, 6, &obs);
    double fwd = sequenceLogLikelihood(h, obs);
    double brute = bruteForceLogLikelihood(h, obs);
    EXPECT_NEAR(fwd, brute, 1e-9);
}

TEST_P(HmmRandom, ForwardBackwardAgree)
{
    Rng rng(GetParam() * 13 + 5);
    Hmm h = Hmm::random(rng, 3, 5);
    Sequence obs;
    h.sample(rng, 8, &obs);
    ForwardBackward fb = forwardBackward(h, obs);
    EXPECT_NEAR(fb.logLikelihood, sequenceLogLikelihood(h, obs), 1e-9);
    // Posteriors normalize per step.
    for (const auto &row : fb.gamma) {
        double total = 0.0;
        for (double g : row)
            total += g;
        EXPECT_NEAR(total, 1.0, 1e-9);
    }
    // Xi marginalizes to gamma.
    for (size_t t = 0; t + 1 < obs.size(); ++t) {
        for (uint32_t i = 0; i < h.numStates(); ++i) {
            double total = 0.0;
            for (uint32_t j = 0; j < h.numStates(); ++j)
                total += fb.xi[t][size_t(i) * h.numStates() + j];
            EXPECT_NEAR(total, fb.gamma[t][i], 1e-9);
        }
    }
}

TEST_P(HmmRandom, ViterbiIsOptimal)
{
    Rng rng(GetParam() * 37 + 11);
    uint32_t states = 2 + GetParam() % 2;
    Hmm h = Hmm::random(rng, states, 3);
    Sequence obs;
    h.sample(rng, 5, &obs);
    ViterbiResult v = viterbi(h, obs);

    // Enumerate all paths; none may beat the Viterbi score.
    uint64_t paths = 1;
    for (size_t t = 0; t < obs.size(); ++t)
        paths *= states;
    double best = kLogZero;
    for (uint64_t m = 0; m < paths; ++m) {
        uint64_t rest = m;
        std::vector<uint32_t> z(obs.size());
        for (size_t t = 0; t < obs.size(); ++t) {
            z[t] = rest % states;
            rest /= states;
        }
        double lp = std::log(h.initial(z[0])) +
                    std::log(h.emission(z[0], obs[0]));
        for (size_t t = 1; t < obs.size(); ++t)
            lp += std::log(h.transition(z[t - 1], z[t])) +
                  std::log(h.emission(z[t], obs[t]));
        best = std::max(best, lp);
    }
    EXPECT_NEAR(v.logProb, best, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HmmRandom, ::testing::Range(0, 12));

TEST(Hmm, BandedTransitionsRespectBand)
{
    Rng rng(3);
    uint32_t states = 12;
    uint32_t band = 2;
    Hmm h = Hmm::banded(rng, states, 6, band);
    for (uint32_t s = 0; s < states; ++s) {
        for (uint32_t t = 0; t < states; ++t) {
            uint32_t dist = std::min((s + states - t) % states,
                                     (t + states - s) % states);
            if (dist > band)
                EXPECT_EQ(h.transition(s, t), 0.0);
        }
    }
    // Rows remain distributions.
    for (uint32_t s = 0; s < states; ++s) {
        double total = 0.0;
        for (uint32_t t = 0; t < states; ++t)
            total += h.transition(s, t);
        EXPECT_NEAR(total, 1.0, 1e-9);
    }
}

TEST(Hmm, SampleShapes)
{
    Rng rng(4);
    Hmm h = Hmm::random(rng, 3, 5);
    Sequence obs;
    std::vector<uint32_t> states;
    h.sample(rng, 17, &obs, &states);
    EXPECT_EQ(obs.size(), 17u);
    EXPECT_EQ(states.size(), 17u);
    for (uint32_t o : obs)
        EXPECT_LT(o, 5u);
    for (uint32_t s : states)
        EXPECT_LT(s, 3u);
}

TEST(Hmm, ImpossibleObservationHasZeroLikelihood)
{
    Hmm h(2, 2);
    h.setInitial({1.0, 0.0});
    h.setTransitionRow(0, {1.0, 0.0});
    h.setTransitionRow(1, {0.0, 1.0});
    h.setEmissionRow(0, {1.0, 0.0}); // state 0 never emits symbol 1
    h.setEmissionRow(1, {0.5, 0.5});
    EXPECT_EQ(sequenceLogLikelihood(h, {1}), kLogZero);
}

TEST(BaumWelch, ImprovesLikelihood)
{
    Rng rng(6);
    Hmm truth = Hmm::random(rng, 3, 4, 0.3); // peaked rows
    std::vector<Sequence> data;
    for (int i = 0; i < 30; ++i) {
        Sequence s;
        truth.sample(rng, 20, &s);
        data.push_back(std::move(s));
    }
    Hmm model = Hmm::random(rng, 3, 4);
    BaumWelchTrace trace = baumWelch(model, data, 10);
    ASSERT_GE(trace.logLikelihood.size(), 2u);
    EXPECT_GT(trace.logLikelihood.back(), trace.logLikelihood.front());
}

TEST(PruneByPosterior, RemovesAndRenormalizes)
{
    Rng rng(8);
    Hmm h = Hmm::banded(rng, 8, 6, 2);
    std::vector<Sequence> data;
    for (int i = 0; i < 20; ++i) {
        Sequence s;
        h.sample(rng, 16, &s);
        data.push_back(std::move(s));
    }
    HmmPruneResult pr = pruneByPosterior(h, data, 0.05);
    EXPECT_GT(pr.transitionsRemoved + pr.emissionsRemoved, 0u);
    EXPECT_GT(pr.parameterReduction, 0.0);
    // Rows renormalized.
    for (uint32_t s = 0; s < pr.pruned.numStates(); ++s) {
        double total = 0.0;
        for (uint32_t t = 0; t < pr.pruned.numStates(); ++t)
            total += pr.pruned.transition(s, t);
        EXPECT_NEAR(total, 1.0, 1e-9);
    }
    // Pruned model still explains the data reasonably (finite LL and
    // bounded degradation).
    for (const auto &seq : data) {
        double before = sequenceLogLikelihood(h, seq);
        double after = sequenceLogLikelihood(pr.pruned, seq);
        EXPECT_GT(after, kLogZero);
        EXPECT_GT(after, before - 5.0);
    }
}

TEST(PruneByPosterior, KeepsAtLeastOneTransitionPerState)
{
    Rng rng(9);
    Hmm h = Hmm::random(rng, 5, 4);
    std::vector<Sequence> data;
    for (int i = 0; i < 10; ++i) {
        Sequence s;
        h.sample(rng, 12, &s);
        data.push_back(std::move(s));
    }
    // Aggressive threshold.
    HmmPruneResult pr = pruneByPosterior(h, data, 0.5);
    for (uint32_t s = 0; s < pr.pruned.numStates(); ++s) {
        size_t nonzero = 0;
        for (uint32_t t = 0; t < pr.pruned.numStates(); ++t)
            nonzero += pr.pruned.transition(s, t) > 0.0 ? 1 : 0;
        EXPECT_GE(nonzero, 1u);
    }
}
