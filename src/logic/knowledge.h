/**
 * @file
 * Knowledge compilation: CNF -> decision-DNNF, model counting, and
 * weighted model counting (WMC).
 *
 * This is the algorithmic bridge between REASON's logical and
 * probabilistic kernels: R2-Guard-style workloads (Table I) compile
 * first-order safety rules into probabilistic circuits and then reason
 * over them with PC marginals.  The compiler here is an exhaustive DPLL
 * with unit propagation, connected-component decomposition, and formula
 * caching — the textbook top-down d-DNNF construction (Darwiche's
 * c2d/Dsharp family) — producing a graph whose And nodes have
 * variable-disjoint children (decomposability) and whose Or nodes are
 * decisions on a single variable (determinism).  Those two properties
 * make model counting and WMC linear in graph size, and allow a direct
 * translation into a smooth, decomposable pc::Circuit
 * (pc/from_logic.h).
 */

#ifndef REASON_LOGIC_KNOWLEDGE_H
#define REASON_LOGIC_KNOWLEDGE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "logic/cnf.h"

namespace reason {
namespace logic {

/** Kind of a d-DNNF node. */
enum class NnfType : uint8_t
{
    True,  ///< neutral conjunct / satisfied residual
    False, ///< contradiction
    Lit,   ///< a single literal
    And,   ///< decomposable conjunction (children have disjoint vars)
    Or     ///< deterministic disjunction: decision on `decisionVar`
};

const char *nnfTypeName(NnfType type);

/** Node identifier inside a DnnfGraph. */
using NnfId = uint32_t;
inline constexpr NnfId kInvalidNnf = ~0u;

/** One d-DNNF node. */
struct NnfNode
{
    NnfType type = NnfType::True;
    /** Lit only: the literal. */
    Lit lit;
    /** Or only: the decision variable distinguishing the two branches. */
    uint32_t decisionVar = 0;
    /** And/Or children (Or always has exactly two). */
    std::vector<NnfId> children;
};

/** Per-literal weights for weighted model counting. */
struct LitWeights
{
    /** Weight of var=true, indexed by variable. */
    std::vector<double> pos;
    /** Weight of var=false, indexed by variable. */
    std::vector<double> neg;

    /** Uniform weights (0.5/0.5): wmc = modelCount / 2^numVars. */
    static LitWeights uniform(uint32_t num_vars);

    /** Indicator weights for one complete assignment (1 on the chosen
     * polarity, 0 on the other): wmc = 1 iff the assignment is a model. */
    static LitWeights indicator(const std::vector<bool> &assignment);

    /** Random positive weights in (0.1, 1); pos+neg normalized to 1. */
    static LitWeights random(Rng &rng, uint32_t num_vars);
};

/** Compilation effort counters. */
struct DnnfStats
{
    uint64_t decisions = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheEntries = 0;
    uint64_t componentSplits = 0;
    uint64_t unitPropagations = 0;
};

/**
 * A compiled decision-DNNF over the variables of the source formula.
 * Nodes are stored with children preceding parents.
 */
class DnnfGraph
{
  public:
    DnnfGraph() = default;

    uint32_t numVars() const { return numVars_; }
    size_t numNodes() const { return nodes_.size(); }
    size_t numEdges() const;
    NnfId root() const { return root_; }
    const NnfNode &node(NnfId id) const { return nodes_.at(id); }

    /** Compilation statistics of the producing run. */
    const DnnfStats &stats() const { return stats_; }

    /**
     * Exact model count of the source formula (free variables — those
     * mentioned nowhere — contribute a factor of 2 each).  Returned as a
     * double; exact for counts below 2^53.
     */
    double modelCount() const;

    /**
     * Weighted model count: sum over models of the product of literal
     * weights.  Smoothing is applied on the fly — variables missing from
     * a branch contribute (pos + neg).
     */
    double wmc(const LitWeights &weights) const;

    /**
     * Per-node weighted counts over each node's own scope (the wmc()
     * intermediate).  Or-node values include the smoothing factors for
     * scope gaps to their children; the root value excludes factors for
     * variables outside the root scope.  Consumed by pc/from_logic.
     */
    std::vector<double> weightedValues(const LitWeights &weights) const;

    /**
     * Evaluate the NNF under a complete assignment; by determinism +
     * decomposability this is true iff the assignment satisfies the
     * source formula.
     */
    bool isModel(const std::vector<bool> &assignment) const;

    /** Variables appearing at or below each node (sorted, deduped). */
    std::vector<std::vector<uint32_t>> scopes() const;

    /** Structural invariants (child ordering, Or arity); panic()s. */
    void validate() const;

    /** Human-readable dump (small graphs only). */
    std::string toString() const;

    /**
     * Assemble a graph from explicit nodes (children must precede
     * parents; validated).  Used by the c2d parser (nnf_io.h); stats
     * are left zeroed.
     */
    static DnnfGraph fromNodes(std::vector<NnfNode> nodes, NnfId root,
                               uint32_t num_vars);

  private:
    friend class DnnfCompiler;

    std::vector<NnfNode> nodes_;
    NnfId root_ = kInvalidNnf;
    uint32_t numVars_ = 0;
    DnnfStats stats_;
};

/**
 * Compile a CNF formula to decision-DNNF.
 *
 * Exhaustive DPLL: unit propagation at every node, connected-component
 * decomposition (And nodes), branching on the most-occurring variable
 * (Or decision nodes), with a cache keyed on the canonical residual
 * formula.  Exponential in the worst case — intended for the
 * rule-knowledge-base scale of the guardrail workloads (tens of
 * variables), not industrial SAT.
 */
DnnfGraph compileToDnnf(const CnfFormula &formula);

/** One-shot exact model count via compilation. */
double countModels(const CnfFormula &formula);

/** One-shot weighted model count via compilation. */
double weightedModelCount(const CnfFormula &formula,
                          const LitWeights &weights);

/**
 * Marginal probability P(var = true | formula) under the product
 * distribution induced by `weights`, conditioned on the formula holding:
 * wmc(formula ∧ var) / wmc(formula).  Returns -1 when the formula is
 * unsatisfiable (wmc == 0).
 */
double conditionalMarginal(const CnfFormula &formula,
                           const LitWeights &weights, uint32_t var);

} // namespace logic
} // namespace reason

#endif // REASON_LOGIC_KNOWLEDGE_H
