/**
 * @file
 * Symbolic-mode example: cube-and-conquer SAT solving on the REASON
 * fabric (Sec. V-D/V-E).
 *
 * A planted satisfiable instance and a pigeonhole refutation are solved
 * both in software (reference CDCL) and on the accelerator model, which
 * distributes conquer work across the tree PEs and charges cycles per
 * hardware event (broadcasts, watch-list traversals, FIFO, DMA).
 */

#include <cstdio>

#include "arch/symbolic.h"
#include "logic/cnf.h"
#include "logic/dpll.h"
#include "logic/implication_graph.h"
#include "logic/solver.h"
#include "util/rng.h"

using namespace reason;
using namespace reason::logic;

namespace {

void
solveOne(const char *name, const CnfFormula &formula)
{
    std::printf("=== %s: %u vars, %zu clauses ===\n", name,
                formula.numVars(), formula.numClauses());

    // Stage-2 pruning first (implication graph).
    CnfPruneResult pruned = pruneCnf(formula);
    std::printf("pruning: -%llu literals (%.1f%%), %llu failed literals\n",
                static_cast<unsigned long long>(pruned.literalsRemoved),
                pruned.literalReduction * 100.0,
                static_cast<unsigned long long>(pruned.failedLiterals));

    // Software reference.
    SolverStats sw_stats;
    SolveResult sw = solveCnf(pruned.pruned, nullptr, &sw_stats);

    // Accelerator solve (cube-and-conquer over the tree PEs).
    arch::ArchConfig cfg;
    arch::SymbolicTiming hw =
        arch::solveOnAccelerator(pruned.pruned, cfg, 4);

    auto verdict = [](SolveResult r) {
        return r == SolveResult::Sat
                   ? "SAT"
                   : (r == SolveResult::Unsat ? "UNSAT" : "UNKNOWN");
    };
    std::printf("software CDCL : %s  (%llu conflicts, %llu props)\n",
                verdict(sw),
                static_cast<unsigned long long>(sw_stats.conflicts),
                static_cast<unsigned long long>(sw_stats.propagations));
    std::printf("REASON        : %s  (%llu cycles = %.2f us, "
                "PE util %.0f%%)\n",
                verdict(hw.result),
                static_cast<unsigned long long>(hw.cycles),
                hw.seconds * 1e6, hw.peUtilization * 100.0);
    std::printf("agreement     : %s\n\n",
                sw == hw.result ? "yes" : "NO");
}

} // namespace

int
main()
{
    Rng rng(7);

    CnfFormula planted = plantedKSat(rng, 120, 500, 3);
    solveOne("planted 3-SAT (deduction step)", planted);

    CnfFormula php = pigeonhole(6);
    solveOne("pigeonhole PHP(7,6) (refutation)", php);

    // Show the cycle-level BCP pipeline on a small scripted formula
    // (the Fig. 9 mechanism at small scale).
    CnfFormula f(6);
    f.addClause({-1, 2});
    f.addClause({-1, 3});
    f.addClause({-2, -3, 4});
    f.addClause({-4, 5});
    f.addClause({-5, 6});
    arch::ArchConfig cfg;
    arch::BcpPipeline pipe(f, cfg);
    arch::BcpResult r = pipe.decide(Lit::make(0, false), true);
    std::printf("=== BCP pipeline trace (decision x0=1) ===\n");
    for (const auto &ev : r.trace)
        std::printf("  T%-4llu %-9s %s\n",
                    static_cast<unsigned long long>(ev.cycle),
                    ev.unit.c_str(), ev.detail.c_str());
    std::printf("implications: %zu, conflict: %s, cycles: %llu\n",
                r.implications.size(), r.conflict ? "yes" : "no",
                static_cast<unsigned long long>(r.cycles));
    return 0;
}
