/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All stochastic components of the repository (instance generators, random
 * DAGs, noise injection) draw from Rng so that every experiment is exactly
 * reproducible from a seed.  The core generator is xoshiro256**, seeded via
 * splitmix64.
 */

#ifndef REASON_UTIL_RNG_H
#define REASON_UTIL_RNG_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace reason {

/**
 * Seedable xoshiro256** generator with convenience distributions.
 *
 * Satisfies the UniformRandomBitGenerator requirements so it can also be
 * handed to <random> distributions if needed.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Construct from a 64-bit seed (expanded through splitmix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit value. */
    uint64_t operator()();

    /** Uniform integer in [lo, hi] inclusive.  Requires lo <= hi. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform01();

    /** Uniform double in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** Bernoulli draw with probability p of true. */
    bool bernoulli(double p);

    /** Standard normal via Box-Muller. */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Exponential with the given rate. */
    double exponential(double rate);

    /**
     * Sample an index according to unnormalized non-negative weights.
     * @return index in [0, weights.size()).
     */
    size_t categorical(const std::vector<double> &weights);

    /** Random probability vector of the given size (Dirichlet(alpha)). */
    std::vector<double> dirichlet(size_t size, double alpha = 1.0);

    /** Fisher-Yates shuffle of an index permutation [0, n). */
    std::vector<uint32_t> permutation(size_t n);

    /** Shuffle a vector in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = static_cast<size_t>(uniformInt(0, int64_t(i) - 1));
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    uint64_t s_[4];
    bool hasSpareGaussian_ = false;
    double spareGaussian_ = 0.0;
};

} // namespace reason

#endif // REASON_UTIL_RNG_H
