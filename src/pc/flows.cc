#include "pc/flows.h"

#include <algorithm>
#include <cmath>

#include "pc/flat_cache.h"
#include "pc/flat_pc.h"
#include "util/logging.h"
#include "util/numeric.h"

namespace reason {
namespace pc {

EdgeFlows
computeFlows(const Circuit &circuit, const Assignment &x)
{
    std::vector<double> val = circuit.evaluate(x);
    EdgeFlows ef;
    ef.nodeFlows.assign(circuit.numNodes(), 0.0);
    ef.flows.resize(circuit.numNodes());
    for (size_t i = 0; i < circuit.numNodes(); ++i)
        ef.flows[i].assign(circuit.node(i).children.size(), 0.0);

    NodeId root = circuit.root();
    if (val[root] == kLogZero)
        return ef; // zero-probability evidence carries no flow
    ef.nodeFlows[root] = 1.0;

    // Nodes are stored children-before-parents, so a reverse scan visits
    // parents before children.
    for (size_t idx = circuit.numNodes(); idx-- > 0;) {
        const PcNode &n = circuit.node(static_cast<NodeId>(idx));
        double fn = ef.nodeFlows[idx];
        if (fn == 0.0 || n.children.empty())
            continue;
        if (n.type == PcNodeType::Product) {
            for (size_t k = 0; k < n.children.size(); ++k) {
                ef.flows[idx][k] = fn;
                ef.nodeFlows[n.children[k]] += fn;
            }
        } else if (n.type == PcNodeType::Sum) {
            for (size_t k = 0; k < n.children.size(); ++k) {
                if (n.weights[k] <= 0.0)
                    continue;
                double child_val = val[n.children[k]];
                if (child_val == kLogZero)
                    continue;
                double frac = std::exp(std::log(n.weights[k]) +
                                       child_val - val[idx]);
                double flow = frac * fn;
                ef.flows[idx][k] = flow;
                ef.nodeFlows[n.children[k]] += flow;
            }
        }
    }
    return ef;
}

EdgeFlows
accumulateFlows(const Circuit &circuit,
                const std::vector<Assignment> &data)
{
    // Hot path: one cached flat lowering, then shard-parallel
    // allocation-free passes across samples (computeFlows stays as the
    // one-shot reference walker).
    std::shared_ptr<const FlatCircuit> flat = cachedLowering(circuit);
    DatasetFlows acc = accumulateDatasetFlows(*flat, data);

    EdgeFlows total;
    total.nodeFlows = std::move(acc.nodeFlow);
    total.flows.resize(circuit.numNodes());
    for (size_t i = 0; i < circuit.numNodes(); ++i) {
        const uint32_t lo = flat->edgeOffset[i];
        const uint32_t hi = flat->edgeOffset[i + 1];
        total.flows[i].assign(acc.edgeFlow.begin() + lo,
                              acc.edgeFlow.begin() + hi);
    }
    return total;
}

namespace {

/**
 * Rebuild the circuit keeping only the selected sum edges, dropping nodes
 * that become unreachable from the root.
 */
PcPruneResult
rebuildWithMask(const Circuit &circuit,
                const std::vector<std::vector<bool>> &keep_edge,
                double ll_bound)
{
    PcPruneResult res;
    res.logLikelihoodBound = ll_bound;

    // Mark reachable nodes from the root through kept edges.
    std::vector<bool> reachable(circuit.numNodes(), false);
    std::vector<NodeId> stack{circuit.root()};
    reachable[circuit.root()] = true;
    while (!stack.empty()) {
        NodeId id = stack.back();
        stack.pop_back();
        const PcNode &n = circuit.node(id);
        for (size_t k = 0; k < n.children.size(); ++k) {
            if (!keep_edge[id][k])
                continue;
            NodeId c = n.children[k];
            if (!reachable[c]) {
                reachable[c] = true;
                stack.push_back(c);
            }
        }
    }

    Circuit out(circuit.numVars(), circuit.arity());
    std::vector<NodeId> remap(circuit.numNodes(), kInvalidNode);
    size_t edges_before = circuit.numEdges();
    for (NodeId id = 0; id < circuit.numNodes(); ++id) {
        if (!reachable[id]) {
            ++res.nodesRemoved;
            continue;
        }
        const PcNode &n = circuit.node(id);
        switch (n.type) {
          case PcNodeType::Leaf:
            remap[id] = out.addLeaf(n.var, n.dist);
            break;
          case PcNodeType::Product: {
            std::vector<NodeId> children;
            for (size_t k = 0; k < n.children.size(); ++k) {
                reasonAssert(keep_edge[id][k],
                             "product edges are never pruned");
                children.push_back(remap[n.children[k]]);
            }
            remap[id] = out.addProduct(std::move(children));
            break;
          }
          case PcNodeType::Sum: {
            std::vector<NodeId> children;
            std::vector<double> weights;
            for (size_t k = 0; k < n.children.size(); ++k) {
                if (!keep_edge[id][k])
                    continue;
                children.push_back(remap[n.children[k]]);
                weights.push_back(n.weights[k]);
            }
            reasonAssert(!children.empty(),
                         "sum node must keep at least one child");
            remap[id] = out.addSum(std::move(children),
                                   std::move(weights));
            break;
          }
        }
    }
    out.markRoot(remap[circuit.root()]);
    out.validate();
    res.edgesRemoved = edges_before - out.numEdges();
    res.edgeReduction =
        edges_before == 0
            ? 0.0
            : static_cast<double>(res.edgesRemoved) /
                  static_cast<double>(edges_before);
    res.pruned = std::move(out);
    return res;
}

} // namespace

PcPruneResult
pruneByFlow(const Circuit &circuit, const std::vector<Assignment> &data,
            double flow_threshold)
{
    reasonAssert(!data.empty(), "flow pruning needs data");
    EdgeFlows total = accumulateFlows(circuit, data);
    double n = static_cast<double>(data.size());

    std::vector<std::vector<bool>> keep(circuit.numNodes());
    double removed_mass = 0.0;
    for (NodeId id = 0; id < circuit.numNodes(); ++id) {
        const PcNode &node = circuit.node(id);
        keep[id].assign(node.children.size(), true);
        if (node.type != PcNodeType::Sum)
            continue;
        // Keep the strongest edge unconditionally.
        size_t best = 0;
        for (size_t k = 1; k < node.children.size(); ++k)
            if (total.flows[id][k] > total.flows[id][best])
                best = k;
        for (size_t k = 0; k < node.children.size(); ++k) {
            if (k == best)
                continue;
            double avg_flow = total.flows[id][k] / n;
            if (avg_flow < flow_threshold) {
                keep[id][k] = false;
                removed_mass += avg_flow;
            }
        }
    }
    return rebuildWithMask(circuit, keep, removed_mass);
}

PcPruneResult
pruneFraction(const Circuit &circuit, const std::vector<Assignment> &data,
              double fraction)
{
    reasonAssert(fraction >= 0.0 && fraction < 1.0,
                 "prune fraction must be in [0,1)");
    EdgeFlows total = accumulateFlows(circuit, data);
    double n = static_cast<double>(data.size());

    struct EdgeRef
    {
        NodeId node;
        size_t child;
        double flow;
    };
    std::vector<EdgeRef> sum_edges;
    for (NodeId id = 0; id < circuit.numNodes(); ++id) {
        const PcNode &node = circuit.node(id);
        if (node.type != PcNodeType::Sum)
            continue;
        for (size_t k = 0; k < node.children.size(); ++k)
            sum_edges.push_back({id, k, total.flows[id][k]});
    }
    std::sort(sum_edges.begin(), sum_edges.end(),
              [](const EdgeRef &a, const EdgeRef &b) {
                  return a.flow < b.flow;
              });
    size_t target =
        static_cast<size_t>(fraction *
                            static_cast<double>(sum_edges.size()));

    std::vector<std::vector<bool>> keep(circuit.numNodes());
    std::vector<size_t> kept_children(circuit.numNodes(), 0);
    for (NodeId id = 0; id < circuit.numNodes(); ++id) {
        keep[id].assign(circuit.node(id).children.size(), true);
        kept_children[id] = circuit.node(id).children.size();
    }
    double removed_mass = 0.0;
    size_t removed = 0;
    for (const EdgeRef &e : sum_edges) {
        if (removed >= target)
            break;
        if (kept_children[e.node] <= 1)
            continue; // never orphan a sum node
        keep[e.node][e.child] = false;
        --kept_children[e.node];
        removed_mass += e.flow / n;
        ++removed;
    }
    return rebuildWithMask(circuit, keep, removed_mass);
}

} // namespace pc
} // namespace reason
