/**
 * @file
 * Flat CSR adapter for probabilistic circuits: the log-domain companion
 * of core/flat.h (REASON Sec. IV-A applied to the PC substrate).
 *
 * `Circuit::evaluate` walks per-node child vectors and heap-allocates a
 * full log-value buffer on every call; it also re-computes log(weight)
 * and log(dist) on every visit.  Every repeated-pass query —
 * likelihoods over a dataset, EM flows, entropy estimates, marginal
 * sweeps — pays that per sample.  `FlatCircuit` lowers the circuit once
 * into contiguous arrays with *pre-computed* edge log-weights and leaf
 * log-distributions; `CircuitEvaluator` and `FlowAccumulator` then run
 * upward/downward passes over reusable scratch, allocation-free, with
 * the hot inner loops expressed over the 8-lane SIMD layer
 * (util/simd.h) — one canonical kernel per pass, bit-identical across
 * batch shapes, thread counts, and SIMD backends.
 */

#ifndef REASON_PC_FLAT_PC_H
#define REASON_PC_FLAT_PC_H

#include <cstdint>
#include <span>
#include <vector>

#include "pc/pc.h"
#include "util/parallel.h"

namespace reason {
namespace pc {

/**
 * CSR lowering of a Circuit with log-space constants baked in.
 *
 * Besides the forward (child) CSR, the lowering computes two schedules
 * used by the thread-parallel evaluators:
 *
 *  - a **level (wavefront) schedule** over *all* nodes (leaves are
 *    level 0; an interior node sits one past its deepest child), so
 *    upward passes can evaluate each level as a data-parallel slice;
 *  - a **parent transpose** (CSC view) listing, per node, the forward
 *    edge ids arriving from its parents in *descending parent order*,
 *    plus flattened per-slot streams (parentNode, parentLogWeight), so
 *    the downward passes gather flows/derivatives with one writer per
 *    node, contiguous loads, and a deterministic fold order.
 *
 * FlatCircuit is immutable after construction and safe for concurrent
 * unsynchronized reads; many evaluators may share one instance.
 */
class FlatCircuit
{
  public:
    enum NodeType : uint8_t { kLeaf = 0, kSum = 1, kProduct = 2 };

    explicit FlatCircuit(const Circuit &circuit);

    /**
     * Empty circuit for direct builders (pc/from_logic's d-DNNF
     * lowering, the streaming `.nnf` loader): fill the CSR arrays
     * (types, edgeOffset/edgeTarget/edgeLogWeight, leaf arrays, root,
     * numVars, arity) with children at lower ids than their parents,
     * then call finalizeTopology() exactly once.
     */
    FlatCircuit() = default;

    /**
     * Derive the level schedule, parent transpose, and fan-in bounds
     * from the filled CSR arrays.  Identical to the tail of the
     * Circuit constructor, so a directly-built circuit is
     * indistinguishable from a lowered one.  Requires a valid root and
     * topological (child-before-parent) node order.
     */
    void finalizeTopology();

    size_t numNodes() const { return types.size(); }
    size_t numEdges() const { return edgeTarget.size(); }
    size_t numLeaves() const { return leafVar.size(); }
    size_t
    numLevels() const
    {
        return levelOffset.empty() ? 0 : levelOffset.size() - 1;
    }

    /** Per-node type (NodeType). */
    std::vector<uint8_t> types;
    /** CSR child offsets; size numNodes()+1. */
    std::vector<uint32_t> edgeOffset;
    /** Child node ids, order preserved. */
    std::vector<uint32_t> edgeTarget;
    /**
     * Per-edge log(weight) for sum edges with weight > 0, kLogZero for
     * non-positive weights (evaluators skip those) and non-sum edges.
     */
    std::vector<double> edgeLogWeight;
    /** Per-node leaf slot (dense leaf index), kInvalidNode otherwise. */
    std::vector<uint32_t> leafSlot;
    /** Per-leaf-slot variable index. */
    std::vector<uint32_t> leafVar;
    /** Packed per-leaf log distributions: [slot * arity + value]. */
    std::vector<double> leafLogDist;
    /** Wavefront offsets into levelNodes; size numLevels()+1. */
    std::vector<uint32_t> levelOffset;
    /** All nodes grouped by level (leaves in level 0). */
    std::vector<uint32_t> levelNodes;
    /** Transpose offsets: parents of node i are parentEdge[parentOffset[i]
     *  .. parentOffset[i+1]); size numNodes()+1. */
    std::vector<uint32_t> parentOffset;
    /** Forward edge ids into each node, descending parent order. */
    std::vector<uint32_t> parentEdge;
    /** Source (parent) node of each forward edge. */
    std::vector<uint32_t> edgeSource;
    /** Flattened transpose streams, aligned with parentEdge, so the
     *  gather passes stream contiguously instead of double-indirecting:
     *  parentNode[k] == edgeSource[parentEdge[k]],
     *  parentLogWeight[k] == edgeLogWeight[parentEdge[k]]. */
    std::vector<uint32_t> parentNode;
    std::vector<double> parentLogWeight;

    uint32_t numVars = 0;
    uint32_t arity = 0;
    uint32_t root = kInvalidNode;
    /** Largest child fan-in of any node (sum/product arity bound). */
    uint32_t maxFanIn = 0;
    /** Largest parent fan-in (transpose row width bound). */
    uint32_t maxParentFanIn = 0;
};

/**
 * Smallest wavefront (level slice) worth splitting across pool
 * workers; shared by every parallel pass over a FlatCircuit so the
 * grain is tuned in one place.
 */
inline constexpr size_t kMinWavefrontNodesPerChunk = 2048;

/**
 * Allocation-free log-domain evaluator.  Agrees with
 * Circuit::evaluate / Circuit::logLikelihood to the 1e-12 reference
 * contract.  The referenced FlatCircuit must outlive the evaluator.
 *
 * **One canonical kernel.**  The sum-layer two-pass logsumexp (max
 * scan, masked exp-accumulate, one log) is the *same* kernel on every
 * path: the blocked SoA batch runs it across `kBlock` SIMD lanes
 * (util/simd.h), batch tails re-run it with replicated row pointers
 * and masked stores, and single-assignment evaluate() runs the
 * identical expressions one lane at a time.  `-inf` terms are exact
 * additive identities (masked, not clamped).  Consequently every row's
 * log-likelihood is **bit-identical** regardless of batch size, batch
 * composition, tail position, thread count, or SIMD backend — the
 * guarantee the serving engine's coalescing relies on.
 *
 * **Threading.**  With a multi-worker pool (explicit or the global
 * pool), evaluate() runs each wavefront of the level schedule in
 * parallel (per-worker term scratch, one writer per node value) and
 * logLikelihoodBatch() splits the row-block dimension across workers
 * (one private SoA block buffer per worker).
 *
 * **Thread-safety contract.**  One CircuitEvaluator serves one caller
 * at a time; for concurrent queries create one evaluator per thread
 * over a shared FlatCircuit (immutable, concurrently readable).
 */
class CircuitEvaluator
{
  public:
    /**
     * @param flat  lowered circuit; must outlive the evaluator.
     * @param pool  worker pool; nullptr selects util::globalThreadPool().
     */
    explicit CircuitEvaluator(const FlatCircuit &flat,
                              util::ThreadPool *pool = nullptr);

    /**
     * Upward pass; returns per-node log values valid until the next
     * evaluate call.  kMissing variables are marginalized out.
     */
    std::span<const double> evaluate(const Assignment &x);

    /** log P(x), reusing internal scratch. */
    double logLikelihood(const Assignment &x);

    /**
     * Batched log-likelihoods: one output per assignment.  Rows are
     * processed in blocks of kBlock laid out structure-of-arrays
     * (value[node][row]) and evaluated with the 8-lane SIMD kernels;
     * a trailing partial block runs the *same* kernel with the last
     * row replicated into the unused lanes and only the live lanes
     * stored, so every row is bit-identical to any other batch shape.
     * Blocks are split across pool workers; zero allocations once
     * warm.
     */
    void logLikelihoodBatch(const std::vector<Assignment> &xs,
                            std::span<double> out);

    /** Rows per SoA block: one cache line and one simd::Pack of lanes. */
    static constexpr size_t kBlock = 8;

    const FlatCircuit &flat() const { return flat_; }
    /**
     * Per-node log values of the most recent evaluate().  Only
     * meaningful after evaluate(); logLikelihoodBatch() does not
     * update this view.
     */
    const std::vector<double> &values() const { return logv_; }

  private:
    static constexpr size_t kMinNodesPerChunk =
        kMinWavefrontNodesPerChunk;

    /** The explicit pool, or the (possibly reconfigured) global one. */
    util::ThreadPool &activePool() const;
    /**
     * Evaluate one SoA block: all kBlock row pointers are read (tail
     * callers replicate a live row), only out[0..n) is written.
     */
    void evaluateBlock(const Assignment *const *rows, size_t n,
                       double *out, double *block_val,
                       double *block_terms);
    /** Evaluate nodes [b, e) of the level schedule for assignment x. */
    void evaluateLevelSlice(const Assignment &x, size_t b, size_t e,
                            double *terms);

    const FlatCircuit &flat_;
    /** Explicit pool, or nullptr = resolve the global pool per call. */
    util::ThreadPool *pool_;
    std::vector<double> logv_;
    /** Per-sum-node term scratch (max fan-in), avoids a second gather;
     *  sized maxFanIn * numThreads, one stripe per worker. */
    std::vector<double> terms_;
    size_t maxFanIn_ = 0;
    /** Per-worker SoA scratch of the batched path (lazy). */
    std::vector<std::vector<double>> blockVal_;
    std::vector<std::vector<double>> blockTerms_;
};

/**
 * Log-space backward (derivative) pass over the flat circuit, writing
 * log dRoot/dv_n into `logd` (resized to numNodes).  `logv` must be the
 * upward pass for the same assignment.  Agrees with pc::logDerivatives
 * to the 1e-10 differential contract.
 *
 * The pass is a transpose *gather* with one shared per-node kernel:
 * each node collects its incoming derivative terms from its finalized
 * parents (flattened transpose streams, descending-parent order) into
 * a contiguous buffer and reduces them with the canonical two-pass
 * SIMD logsumexp (simd::logSumExpMasked — -inf terms are exact
 * identities); product parents use (zero count, finite sum) tables
 * tabulated lazily when the product's own derivative is finalized.
 * A 1-thread pool walks nodes in reverse id order (parents carry
 * higher ids, so they are always finalized first — sequential,
 * cache-friendly); a multi-worker pool walks the reverse level
 * schedule.  The kernel's result depends only on the parents, not the
 * traversal, so results are bit-identical for any thread count.  One
 * writer per logd entry, no atomics.
 */
void logDerivativesInto(const FlatCircuit &flat,
                        std::span<const double> logv,
                        std::vector<double> &logd,
                        util::ThreadPool *pool = nullptr);

struct DatasetFlows;
struct FlowShardOptions;

/**
 * Streaming top-down circuit-flow accumulator (Sec. IV-B): one upward
 * and one downward pass per sample over reused scratch.  Replaces the
 * per-sample EdgeFlows allocation pattern of accumulateFlows/emTrain.
 *
 * The downward pass is a transpose *gather* with one shared per-node
 * kernel: each node's incoming flow arguments are staged into a
 * contiguous buffer and the per-edge exp is computed by the masked
 * SIMD kernel (simd::expMulOrZero), then folded in descending parent
 * order.  A 1-thread pool walks nodes in reverse id order (parents
 * carry higher ids — sequential, cache-friendly); a multi-worker pool
 * walks the reverse level schedule.  Node flows, per-edge totals, and
 * leaf totals each have exactly one writer and the kernel depends
 * only on the finalized parents, so all totals are bit-identical for
 * any thread count (no atomics anywhere).
 *
 * **Thread-safety contract.**  One accumulator per caller; totals are
 * plain members.  Concurrent accumulation requires one accumulator per
 * thread over a shared FlatCircuit plus a caller-side merge.
 */
class FlowAccumulator
{
  public:
    /**
     * @param flat  lowered circuit; must outlive the accumulator.
     * @param pool  worker pool; nullptr selects util::globalThreadPool().
     */
    explicit FlowAccumulator(const FlatCircuit &flat,
                             util::ThreadPool *pool = nullptr);

    /** Accumulate the flows of one (possibly partial) assignment. */
    void add(const Assignment &x);

    /**
     * Fold another accumulator's totals into this one (element-wise
     * `this += other`), the merge step of sharded accumulation.  Both
     * accumulators must be lowered from the same FlatCircuit.
     */
    void mergeFrom(const FlowAccumulator &other);

    size_t count() const { return count_; }
    /** Total edge flows, CSR-aligned with FlatCircuit::edgeTarget. */
    const std::vector<double> &edgeFlow() const { return edgeTotal_; }
    /** Total per-node flows. */
    const std::vector<double> &nodeFlow() const { return nodeTotal_; }
    /**
     * Total leaf flow attributed to the observed value, packed as
     * [leaf slot * arity + value]; the EM leaf statistic.
     */
    const std::vector<double> &leafValueFlow() const { return leafTotal_; }

  private:
    static constexpr size_t kMinNodesPerChunk =
        kMinWavefrontNodesPerChunk;

    /** Moves totals out of shard accumulators instead of copying. */
    friend DatasetFlows accumulateDatasetFlows(
        const FlatCircuit &, const std::vector<Assignment> &,
        const FlowShardOptions &, util::ThreadPool *);

    const FlatCircuit &flat_;
    /** Explicit pool, or nullptr = resolve the global pool per call. */
    util::ThreadPool *pool_;
    CircuitEvaluator eval_;
    /** Per-sample downward flow scratch. */
    std::vector<double> flow_;
    /** Per-worker (arg, scale, flow) stripes of the masked exp kernel. */
    std::vector<double> argScratch_;
    std::vector<double> scaleScratch_;
    std::vector<double> flowScratch_;
    std::vector<double> edgeTotal_;
    std::vector<double> nodeTotal_;
    std::vector<double> leafTotal_;
    size_t count_ = 0;
};

/**
 * Sample-level sharding options for accumulateDatasetFlows.  Defaults
 * inherit the process-wide util::ReductionPolicy (the
 * --shards/--fast-reductions knob); explicit assignment overrides it.
 * See ReductionPolicy for the shard-resolution and determinism rules.
 */
struct FlowShardOptions
{
    /** 0 = auto (fixed count when deterministic, else pool workers). */
    unsigned shards = util::reductionPolicy().shards;
    /** Fixed reduction shape, bit-identical across thread counts. */
    bool deterministic = util::reductionPolicy().deterministic;
};

/** Dataset-level flow totals, same layouts as FlowAccumulator. */
struct DatasetFlows
{
    /** Total edge flows, CSR-aligned with FlatCircuit::edgeTarget. */
    std::vector<double> edgeFlow;
    /** Total per-node flows. */
    std::vector<double> nodeFlow;
    /** Observed-value leaf flow, packed [leaf slot * arity + value]. */
    std::vector<double> leafValueFlow;
    size_t count = 0;
    /** Shards actually used (diagnostics/tests). */
    unsigned shards = 1;
};

/**
 * Flow totals of a whole dataset with sample-level sharding: the sample
 * range is split into `shards` contiguous, deterministically-placed
 * slices, each accumulated left-to-right by one worker into a private
 * FlowAccumulator (its per-sample passes run serially — shard
 * parallelism replaces wavefront parallelism here), then merged by a
 * fixed-shape pairwise tree reduction (util::treeReduce) whose shape
 * depends only on the shard count.
 *
 * Determinism: with opts.deterministic (default) the shard count never
 * depends on the worker count, so totals are bit-identical for any
 * thread count; shards == 1 reproduces the legacy serial left fold
 * exactly.  Fast mode (deterministic = false) shards per worker,
 * changing only the reduction shape.
 */
DatasetFlows accumulateDatasetFlows(const FlatCircuit &flat,
                                    const std::vector<Assignment> &data,
                                    const FlowShardOptions &opts = {},
                                    util::ThreadPool *pool = nullptr);

} // namespace pc
} // namespace reason

#endif // REASON_PC_FLAT_PC_H
