/**
 * @file
 * Flat CSR adapter for probabilistic circuits: the log-domain companion
 * of core/flat.h (REASON Sec. IV-A applied to the PC substrate).
 *
 * `Circuit::evaluate` walks per-node child vectors and heap-allocates a
 * full log-value buffer on every call; it also re-computes log(weight)
 * and log(dist) on every visit.  Every repeated-pass query —
 * likelihoods over a dataset, EM flows, entropy estimates, marginal
 * sweeps — pays that per sample.  `FlatCircuit` lowers the circuit once
 * into contiguous arrays with *pre-computed* edge log-weights and leaf
 * log-distributions; `CircuitEvaluator` and `FlowAccumulator` then run
 * upward/downward passes over reusable scratch, allocation-free and
 * bit-identical to the reference walkers.
 */

#ifndef REASON_PC_FLAT_PC_H
#define REASON_PC_FLAT_PC_H

#include <cstdint>
#include <span>
#include <vector>

#include "pc/pc.h"
#include "util/parallel.h"

namespace reason {
namespace pc {

/**
 * CSR lowering of a Circuit with log-space constants baked in.
 *
 * Besides the forward (child) CSR, the lowering computes two schedules
 * used by the thread-parallel evaluators:
 *
 *  - a **level (wavefront) schedule** over *all* nodes (leaves are
 *    level 0; an interior node sits one past its deepest child), so
 *    upward passes can evaluate each level as a data-parallel slice;
 *  - a **parent transpose** (CSC view) listing, per node, the forward
 *    edge ids arriving from its parents in *descending parent order* —
 *    exactly the order the serial top-down flow scatter accumulates in,
 *    which lets the parallel downward pass gather flows with one writer
 *    per node and bit-identical floating-point results.
 *
 * FlatCircuit is immutable after construction and safe for concurrent
 * unsynchronized reads; many evaluators may share one instance.
 */
class FlatCircuit
{
  public:
    enum NodeType : uint8_t { kLeaf = 0, kSum = 1, kProduct = 2 };

    explicit FlatCircuit(const Circuit &circuit);

    size_t numNodes() const { return types.size(); }
    size_t numEdges() const { return edgeTarget.size(); }
    size_t numLeaves() const { return leafVar.size(); }
    size_t
    numLevels() const
    {
        return levelOffset.empty() ? 0 : levelOffset.size() - 1;
    }

    /** Per-node type (NodeType). */
    std::vector<uint8_t> types;
    /** CSR child offsets; size numNodes()+1. */
    std::vector<uint32_t> edgeOffset;
    /** Child node ids, order preserved. */
    std::vector<uint32_t> edgeTarget;
    /**
     * Per-edge log(weight) for sum edges with weight > 0, kLogZero for
     * non-positive weights (evaluators skip those) and non-sum edges.
     */
    std::vector<double> edgeLogWeight;
    /** Per-node leaf slot (dense leaf index), kInvalidNode otherwise. */
    std::vector<uint32_t> leafSlot;
    /** Per-leaf-slot variable index. */
    std::vector<uint32_t> leafVar;
    /** Packed per-leaf log distributions: [slot * arity + value]. */
    std::vector<double> leafLogDist;
    /** Wavefront offsets into levelNodes; size numLevels()+1. */
    std::vector<uint32_t> levelOffset;
    /** All nodes grouped by level (leaves in level 0). */
    std::vector<uint32_t> levelNodes;
    /** Transpose offsets: parents of node i are parentEdge[parentOffset[i]
     *  .. parentOffset[i+1]); size numNodes()+1. */
    std::vector<uint32_t> parentOffset;
    /** Forward edge ids into each node, descending parent order. */
    std::vector<uint32_t> parentEdge;
    /** Source (parent) node of each forward edge. */
    std::vector<uint32_t> edgeSource;

    uint32_t numVars = 0;
    uint32_t arity = 0;
    uint32_t root = kInvalidNode;
};

/**
 * Smallest wavefront (level slice) worth splitting across pool
 * workers; shared by every parallel pass over a FlatCircuit so the
 * grain is tuned in one place.
 */
inline constexpr size_t kMinWavefrontNodesPerChunk = 2048;

/**
 * Allocation-free log-domain evaluator.  Matches Circuit::evaluate /
 * Circuit::logLikelihood exactly (same operation order and expressions).
 * The referenced FlatCircuit must outlive the evaluator.
 *
 * **Threading.**  With a multi-worker pool (explicit or the global
 * pool), evaluate() runs each wavefront of the level schedule in
 * parallel (per-worker term scratch, one writer per node value) and
 * logLikelihoodBatch() splits the row-block dimension across workers
 * (one private SoA block buffer per worker).  Both paths keep every
 * per-node floating-point expression identical to the serial walk, so
 * results are bit-identical for any thread count.
 *
 * **Thread-safety contract.**  One CircuitEvaluator serves one caller
 * at a time; for concurrent queries create one evaluator per thread
 * over a shared FlatCircuit (immutable, concurrently readable).
 */
class CircuitEvaluator
{
  public:
    /**
     * @param flat  lowered circuit; must outlive the evaluator.
     * @param pool  worker pool; nullptr selects util::globalThreadPool().
     */
    explicit CircuitEvaluator(const FlatCircuit &flat,
                              util::ThreadPool *pool = nullptr);

    /**
     * Upward pass; returns per-node log values valid until the next
     * evaluate call.  kMissing variables are marginalized out.
     */
    std::span<const double> evaluate(const Assignment &x);

    /** log P(x), reusing internal scratch. */
    double logLikelihood(const Assignment &x);

    /**
     * Batched log-likelihoods: one output per assignment.  Rows are
     * processed in blocks of kBlock laid out structure-of-arrays
     * (value[node][row]), so every operand load fills a whole cache
     * line and the per-edge loops vectorize across rows; the tail uses
     * the scalar path.  Blocks are split across pool workers; zero
     * allocations once warm.
     */
    void logLikelihoodBatch(const std::vector<Assignment> &xs,
                            std::span<double> out);

    /** Rows per SoA block of the batched path (one cache line). */
    static constexpr size_t kBlock = 8;

    const FlatCircuit &flat() const { return flat_; }
    /**
     * Per-node log values of the most recent evaluate().  Only
     * meaningful after evaluate(); logLikelihoodBatch() does not
     * update this view.
     */
    const std::vector<double> &values() const { return logv_; }

  private:
    static constexpr size_t kMinNodesPerChunk =
        kMinWavefrontNodesPerChunk;

    /** The explicit pool, or the (possibly reconfigured) global one. */
    util::ThreadPool &activePool() const;
    /** Evaluate kBlock rows into one SoA block buffer. */
    void evaluateBlock(const Assignment *rows, double *out,
                       double *block_val, double *block_terms);
    /** Evaluate nodes [b, e) of the level schedule for assignment x. */
    void evaluateLevelSlice(const Assignment &x, size_t b, size_t e,
                            double *terms);

    const FlatCircuit &flat_;
    /** Explicit pool, or nullptr = resolve the global pool per call. */
    util::ThreadPool *pool_;
    std::vector<double> logv_;
    /** Per-sum-node term scratch (max fan-in), avoids a second gather;
     *  sized maxFanIn * numThreads, one stripe per worker. */
    std::vector<double> terms_;
    size_t maxFanIn_ = 0;
    /** Per-worker SoA scratch of the batched path (lazy). */
    std::vector<std::vector<double>> blockVal_;
    std::vector<std::vector<double>> blockTerms_;
};

/**
 * Log-space backward (derivative) pass over the flat circuit, writing
 * log dRoot/dv_n into `logd` (resized to numNodes).  `logv` must be the
 * upward pass for the same assignment.  Matches pc::logDerivatives.
 *
 * **Threading.**  With a multi-worker pool (nullptr selects the global
 * pool) the pass runs as a reverse-level wavefront: levels are walked
 * top-down and each node *gathers* its derivative from its finalized
 * parents through the parent transpose, logAdd-accumulating incoming
 * terms in the same descending-parent order the serial reverse scatter
 * uses.  Product-parent terms reuse per-node (zero count, finite sum)
 * tables precomputed in a parallel pre-pass with the serial pass's
 * expressions, so every logd entry has one writer and is bit-identical
 * to the serial path for any thread count.
 */
void logDerivativesInto(const FlatCircuit &flat,
                        std::span<const double> logv,
                        std::vector<double> &logd,
                        util::ThreadPool *pool = nullptr);

struct DatasetFlows;
struct FlowShardOptions;

/**
 * Streaming top-down circuit-flow accumulator (Sec. IV-B): one upward
 * and one downward pass per sample over reused scratch.  Replaces the
 * per-sample EdgeFlows allocation pattern of accumulateFlows/emTrain.
 *
 * **Threading.**  With a multi-worker pool both passes run as level
 * wavefronts: the upward pass through CircuitEvaluator, the downward
 * pass as a reverse-level *gather* over the parent transpose — node
 * flows, per-edge totals, and leaf totals each have exactly one
 * writer, and parent contributions are summed in the same descending
 * parent order as the serial scatter, so all totals are bit-identical
 * to the serial path for any thread count (no atomics anywhere).
 *
 * **Thread-safety contract.**  One accumulator per caller; totals are
 * plain members.  Concurrent accumulation requires one accumulator per
 * thread over a shared FlatCircuit plus a caller-side merge.
 */
class FlowAccumulator
{
  public:
    /**
     * @param flat  lowered circuit; must outlive the accumulator.
     * @param pool  worker pool; nullptr selects util::globalThreadPool().
     */
    explicit FlowAccumulator(const FlatCircuit &flat,
                             util::ThreadPool *pool = nullptr);

    /** Accumulate the flows of one (possibly partial) assignment. */
    void add(const Assignment &x);

    /**
     * Fold another accumulator's totals into this one (element-wise
     * `this += other`), the merge step of sharded accumulation.  Both
     * accumulators must be lowered from the same FlatCircuit.
     */
    void mergeFrom(const FlowAccumulator &other);

    size_t count() const { return count_; }
    /** Total edge flows, CSR-aligned with FlatCircuit::edgeTarget. */
    const std::vector<double> &edgeFlow() const { return edgeTotal_; }
    /** Total per-node flows. */
    const std::vector<double> &nodeFlow() const { return nodeTotal_; }
    /**
     * Total leaf flow attributed to the observed value, packed as
     * [leaf slot * arity + value]; the EM leaf statistic.
     */
    const std::vector<double> &leafValueFlow() const { return leafTotal_; }

  private:
    static constexpr size_t kMinNodesPerChunk =
        kMinWavefrontNodesPerChunk;

    /** Moves totals out of shard accumulators instead of copying. */
    friend DatasetFlows accumulateDatasetFlows(
        const FlatCircuit &, const std::vector<Assignment> &,
        const FlowShardOptions &, util::ThreadPool *);

    const FlatCircuit &flat_;
    /** Explicit pool, or nullptr = resolve the global pool per call. */
    util::ThreadPool *pool_;
    CircuitEvaluator eval_;
    /** Per-sample downward flow scratch. */
    std::vector<double> flow_;
    std::vector<double> edgeTotal_;
    std::vector<double> nodeTotal_;
    std::vector<double> leafTotal_;
    size_t count_ = 0;
};

/**
 * Sample-level sharding options for accumulateDatasetFlows.  Defaults
 * inherit the process-wide util::ReductionPolicy (the
 * --shards/--fast-reductions knob); explicit assignment overrides it.
 * See ReductionPolicy for the shard-resolution and determinism rules.
 */
struct FlowShardOptions
{
    /** 0 = auto (fixed count when deterministic, else pool workers). */
    unsigned shards = util::reductionPolicy().shards;
    /** Fixed reduction shape, bit-identical across thread counts. */
    bool deterministic = util::reductionPolicy().deterministic;
};

/** Dataset-level flow totals, same layouts as FlowAccumulator. */
struct DatasetFlows
{
    /** Total edge flows, CSR-aligned with FlatCircuit::edgeTarget. */
    std::vector<double> edgeFlow;
    /** Total per-node flows. */
    std::vector<double> nodeFlow;
    /** Observed-value leaf flow, packed [leaf slot * arity + value]. */
    std::vector<double> leafValueFlow;
    size_t count = 0;
    /** Shards actually used (diagnostics/tests). */
    unsigned shards = 1;
};

/**
 * Flow totals of a whole dataset with sample-level sharding: the sample
 * range is split into `shards` contiguous, deterministically-placed
 * slices, each accumulated left-to-right by one worker into a private
 * FlowAccumulator (its per-sample passes run serially — shard
 * parallelism replaces wavefront parallelism here), then merged by a
 * fixed-shape pairwise tree reduction (util::treeReduce) whose shape
 * depends only on the shard count.
 *
 * Determinism: with opts.deterministic (default) the shard count never
 * depends on the worker count, so totals are bit-identical for any
 * thread count; shards == 1 reproduces the legacy serial left fold
 * exactly.  Fast mode (deterministic = false) shards per worker,
 * changing only the reduction shape.
 */
DatasetFlows accumulateDatasetFlows(const FlatCircuit &flat,
                                    const std::vector<Assignment> &data,
                                    const FlowShardOptions &opts = {},
                                    util::ThreadPool *pool = nullptr);

} // namespace pc
} // namespace reason

#endif // REASON_PC_FLAT_PC_H
