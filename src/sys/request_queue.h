/**
 * @file
 * Submission queue of the async serving engine (sys::ReasonEngine):
 * request records, their lifecycle, the error-code contract shared
 * with the Listing-1 compatibility shim, and the coalescing pop that
 * turns independent queued requests into one batched evaluation.
 *
 * The queue is the synchronization hub of the engine: clients push
 * requests and block on completion, the dispatcher pops *groups* of
 * requests that share a coalescing key (circuit lowering fingerprint +
 * reasoning mode), and every state transition happens under one mutex
 * so poll/wait observe a consistent lifecycle.
 */

#ifndef REASON_SYS_REQUEST_QUEUE_H
#define REASON_SYS_REQUEST_QUEUE_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "arch/accelerator.h"
#include "pc/pc.h"

namespace reason {
namespace sys {

/** Execution status returned by REASON_check_status. */
enum ReasonStatus : int { REASON_IDLE = 0, REASON_EXECUTION = 1 };

/** Reasoning mode selector (Sec. V-B). */
enum ReasonMode : int
{
    REASON_MODE_PROBABILISTIC = 0,
    REASON_MODE_SYMBOLIC = 1,
    REASON_MODE_SPMSPM = 2
};

/**
 * Error codes of the serving engine and the Listing-1 interface
 * (REASON_execute returns these directly; engine submissions surface
 * them through Request::error).  All failures are negative and
 * distinct; REASON_OK is zero.
 */
enum ReasonError : int
{
    REASON_OK = 0,
    /** batch_size <= 0, or an empty row set. */
    REASON_ERR_BAD_BATCH = -1,
    /** Null neural or symbolic buffer. */
    REASON_ERR_NULL_BUFFER = -2,
    /** reasoning_mode is not a ReasonMode value. */
    REASON_ERR_BAD_MODE = -3,
    /** batch_id was already executed (duplicate resubmission). */
    REASON_ERR_DUPLICATE_BATCH = -4,
    /** An assignment row is too short or holds an out-of-range value. */
    REASON_ERR_BAD_ASSIGNMENT = -5,
    /** Submission kind does not match the session kind (or no session). */
    REASON_ERR_WRONG_SESSION = -6,
    /** Engine shut down before the request could execute. */
    REASON_ERR_SHUTDOWN = -7
};

/** Lifecycle of a request inside the engine. */
enum class RequestState : uint8_t
{
    /** Waiting in the submission queue. */
    Queued,
    /** Popped by the dispatcher, evaluation in flight. */
    Running,
    /** Finished: outputs (or error) are final, waiters are released. */
    Done
};

struct SessionState;

/**
 * One serving request.  Owned jointly by the submitting RequestHandle
 * and the queue/dispatcher (shared_ptr), so a handle stays readable
 * even after the engine is destroyed.
 *
 * Mutable fields are written under the RequestQueue mutex (state,
 * timestamps) or exclusively by the dispatcher while Running (outputs,
 * exec, error); clients must read them only after poll()/wait()
 * reports completion.
 */
struct Request
{
    uint64_t id = 0;
    /**
     * Coalescing key: requests with the same key (and mode) may share
     * one batched evaluation.  Circuit sessions use the cached lowering
     * pointer (structural fingerprint identity via pc::cachedLowering);
     * program sessions use their private session state, so Listing-1
     * batches never coalesce across sessions.
     */
    const void *groupKey = nullptr;
    ReasonMode mode = REASON_MODE_PROBABILISTIC;
    /** Owning session; keeps the lowering / accelerator alive. */
    std::shared_ptr<SessionState> session;

    /** Circuit-mode payload: one assignment per requested row. */
    std::vector<pc::Assignment> rows;
    /** Program-mode payload: row-major inputs, batchSize rows. */
    std::vector<double> inputs;
    int batchSize = 0;

    /** One output per row: log-likelihoods (circuit) or root values. */
    std::vector<double> outputs;
    /** Program mode: execution result of the final row. */
    arch::ExecutionResult exec;
    /** Program mode: simulated cycles summed over the batch rows. */
    uint64_t execCycles = 0;
    /** REASON_OK or a ReasonError; final once state is Done. */
    int error = REASON_OK;

    RequestState state = RequestState::Queued;
    /** steady_clock nanoseconds; zero until the stage is reached. */
    uint64_t enqueuedNs = 0;
    uint64_t startedNs = 0;
    uint64_t completedNs = 0;

    /** Rows requested (either payload kind). */
    size_t numRows() const
    {
        return rows.empty() ? size_t(batchSize) : rows.size();
    }
    /** Enqueue-to-completion latency; meaningful once Done. */
    uint64_t latencyNs() const { return completedNs - enqueuedNs; }
};

/** Counters accumulated by the queue since engine construction. */
struct QueueStats
{
    /** Requests enqueued (excludes submissions rejected at validation). */
    uint64_t requests = 0;
    /** Rows across enqueued requests. */
    uint64_t rows = 0;
    /** Coalesced groups handed to the dispatcher. */
    uint64_t batches = 0;
    /** Rows across those groups (batchedRows / batches = occupancy). */
    uint64_t batchedRows = 0;
    /** Deepest pending-queue depth observed at enqueue time. */
    uint64_t maxQueueDepth = 0;
    /** Sum of enqueue-to-start times over completed requests. */
    uint64_t totalQueueNs = 0;
    /** Sum of enqueue-to-completion times over completed requests. */
    uint64_t totalLatencyNs = 0;
    /** Requests completed (including shutdown failures). */
    uint64_t completed = 0;

    /** Mean rows per coalesced batch (the occupancy statistic). */
    double
    meanBatchOccupancy() const
    {
        return batches == 0 ? 0.0
                            : double(batchedRows) / double(batches);
    }
};

/**
 * Thread-safe submission queue with cross-request coalescing.
 *
 * Clients push requests and wait on completion; one dispatcher pops
 * coalesced groups.  popGroup takes the FIFO head, then scans the
 * remaining queue for requests with the same (groupKey, mode) until
 * `maxRows` rows are gathered — requests with other keys keep their
 * relative order and are simply skipped.  When the group is still
 * short of maxRows and `lingerUs` is nonzero, the pop lingers up to
 * that long for matching late arrivals before dispatching.
 */
class RequestQueue
{
  public:
    RequestQueue() = default;
    RequestQueue(const RequestQueue &) = delete;
    RequestQueue &operator=(const RequestQueue &) = delete;

    /**
     * Enqueue a request (state must be Queued).  After shutdown() the
     * request is immediately completed with REASON_ERR_SHUTDOWN.
     */
    void push(const std::shared_ptr<Request> &request);

    /**
     * Block until work is available (or shutdown), then pop one
     * coalesced group and mark it Running.  Returns an empty vector
     * only at shutdown with an empty queue — the dispatcher's exit
     * signal.  Single-dispatcher use only.
     */
    std::vector<std::shared_ptr<Request>> popGroup(size_t maxRows,
                                                   unsigned lingerUs);

    /** Mark an executed group Done and release its waiters. */
    void complete(const std::vector<std::shared_ptr<Request>> &group);

    /** True once the request has completed (never blocks). */
    bool pollDone(const Request &request) const;

    /** Block until the request completes. */
    void waitDone(const Request &request) const;

    /**
     * Stop dispatching: pending requests are completed with
     * REASON_ERR_SHUTDOWN, waiters and the dispatcher are woken.
     * A group already popped may still be complete()d normally.
     */
    void shutdown();

    /** Hold dispatching (queued work accumulates and coalesces). */
    void pause();
    /** Resume dispatching after pause(). */
    void resume();

    QueueStats stats() const;

  private:
    mutable std::mutex mutex_;
    /** Wakes the dispatcher: new work, resume, shutdown. */
    std::condition_variable workCv_;
    /** Wakes client waiters: request completion, shutdown. */
    mutable std::condition_variable doneCv_;
    std::deque<std::shared_ptr<Request>> pending_;
    bool shutdown_ = false;
    bool paused_ = false;
    QueueStats stats_;
};

} // namespace sys
} // namespace reason

#endif // REASON_SYS_REQUEST_QUEUE_H
