#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace reason {

void
StatAccumulator::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
StatAccumulator::merge(const StatAccumulator &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    uint64_t n = count_ + other.count_;
    double delta = other.mean_ - mean_;
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
    mean_ = (na * mean_ + nb * other.mean_) / static_cast<double>(n);
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ = n;
}

double
StatAccumulator::mean() const
{
    return count_ ? mean_ : 0.0;
}

double
StatAccumulator::variance() const
{
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double
StatAccumulator::stddev() const
{
    return std::sqrt(variance());
}

double
StatAccumulator::min() const
{
    return count_ ? min_ : 0.0;
}

double
StatAccumulator::max() const
{
    return count_ ? max_ : 0.0;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    reasonAssert(hi > lo && bins > 0, "invalid histogram bounds");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        size_t bin = static_cast<size_t>((x - lo_) / width_);
        bin = std::min(bin, counts_.size() - 1);
        ++counts_[bin];
    }
}

double
Histogram::percentile(double frac) const
{
    if (total_ == 0)
        return lo_;
    uint64_t target =
        static_cast<uint64_t>(std::ceil(frac * static_cast<double>(total_)));
    uint64_t acc = underflow_;
    if (acc >= target)
        return lo_;
    for (size_t i = 0; i < counts_.size(); ++i) {
        acc += counts_[i];
        if (acc >= target)
            return binLo(i) + width_;
    }
    return hi_;
}

double
Histogram::binLo(size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

uint64_t &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

uint64_t
StatGroup::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
StatGroup::inc(const std::string &name, uint64_t delta)
{
    counters_[name] += delta;
}

void
StatGroup::clear()
{
    for (auto &kv : counters_)
        kv.second = 0;
}

std::string
StatGroup::toString() const
{
    std::ostringstream os;
    for (const auto &kv : counters_)
        os << kv.first << " = " << kv.second << "\n";
    return os.str();
}

} // namespace reason
