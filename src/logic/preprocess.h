/**
 * @file
 * CNF preprocessing: the clause-database reduction pass that complements
 * REASON's implication-graph literal pruning (Sec. IV-B).
 *
 * Implements the standard inprocessing repertoire — unit propagation to
 * fixpoint, pure-literal fixing, (self-)subsumption, failed-literal
 * probing, and bounded variable elimination (NiVER/SatELite-style) —
 * with model reconstruction so a model of the simplified formula can be
 * extended to the original variables.  Subsumption and self-subsuming
 * resolution are logical-equivalence-preserving; the other passes
 * preserve satisfiability only (tests cover both contracts).
 */

#ifndef REASON_LOGIC_PREPROCESS_H
#define REASON_LOGIC_PREPROCESS_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "logic/cnf.h"

namespace reason {
namespace logic {

/** Which passes run, and their effort limits. */
struct PreprocessConfig
{
    bool unitPropagation = true;
    bool pureLiterals = true;
    bool subsumption = true;
    bool selfSubsumption = true;
    bool failedLiteralProbing = true;
    bool variableElimination = true;
    /**
     * BVE eliminates a variable only when the count of non-tautological
     * resolvents does not exceed the removed-occurrence count plus this
     * slack (0 = never grow the formula).
     */
    uint32_t bveGrowthLimit = 0;
    /** Eliminate only variables with at most this many occurrences. */
    uint32_t bveOccurrenceLimit = 16;
    /** Fixpoint rounds over all enabled passes. */
    uint32_t maxRounds = 3;
    /** Upper bound on probing propagations per round. */
    uint64_t probeBudget = 200000;
};

/** What each pass did, for benches and logging. */
struct PreprocessStats
{
    uint64_t unitsFixed = 0;
    uint64_t pureLiteralsFixed = 0;
    uint64_t subsumedClauses = 0;
    uint64_t strengthenedClauses = 0;
    uint64_t failedLiterals = 0;
    uint64_t eliminatedVars = 0;
    uint64_t resolventsAdded = 0;
    uint64_t rounds = 0;
    size_t clausesBefore = 0;
    size_t clausesAfter = 0;
    size_t literalsBefore = 0;
    size_t literalsAfter = 0;
};

/**
 * One preprocessing run over a formula.
 *
 * Usage: construct, run(), then read simplified() / stats(); after an
 * external solver finds a model of simplified(), reconstructModel()
 * extends it to the original variable set.
 */
class Preprocessor
{
  public:
    explicit Preprocessor(const CnfFormula &formula,
                          PreprocessConfig config = {});

    /** Run all enabled passes to (bounded) fixpoint. */
    void run();

    /** True when preprocessing alone derived unsatisfiability. */
    bool knownUnsat() const { return unsat_; }

    /**
     * The simplified formula.  Variable numbering is preserved;
     * eliminated and fixed variables simply no longer occur.
     */
    CnfFormula simplified() const;

    const PreprocessStats &stats() const { return stats_; }

    /**
     * Extend a model of simplified() to satisfy the original formula:
     * replays fixed units, pure literals, and eliminated-variable
     * witnesses in reverse order.  `model` is indexed by original
     * variable; entries for non-surviving variables may hold anything.
     */
    std::vector<bool> reconstructModel(std::vector<bool> model) const;

  private:
    /** Reverse-replay entry for model reconstruction. */
    struct Witness
    {
        /** Fixed literal (units, pures, failed literals)... */
        Lit lit;
        /** ...or an eliminated variable with its occurrence clauses. */
        uint32_t var = ~0u;
        std::vector<Clause> clauses;
    };

    bool passUnits();
    bool passPures();
    bool passSubsumption();
    bool passProbing();
    bool passBve();

    /** Assign a literal: drop satisfied clauses, shrink falsified. */
    bool assignLit(Lit l);
    void removeClause(size_t idx);
    void addClause(Clause c);
    void rebuildOccurrences();
    uint64_t clauseSignature(const Clause &c) const;
    /** Unit-propagate `l` on a scratch assignment; true on conflict. */
    bool probeConflicts(Lit l, uint64_t &budget) const;

    PreprocessConfig config_;
    uint32_t numVars_;
    std::vector<Clause> clauses_;      // tombstoned via empty+dead flag
    std::vector<bool> dead_;           // clause tombstones
    std::vector<std::vector<size_t>> occur_; // lit code -> clause indices
    std::vector<LBool> fixed_;         // fixed polarity per var
    std::vector<bool> gone_;           // var eliminated or fixed
    std::vector<Witness> witnesses_;
    PreprocessStats stats_;
    bool unsat_ = false;
    bool ran_ = false;
};

/** One-shot convenience: preprocess and return the simplified formula. */
CnfFormula preprocessCnf(const CnfFormula &formula,
                         PreprocessStats *stats = nullptr,
                         PreprocessConfig config = {});

} // namespace logic
} // namespace reason

#endif // REASON_LOGIC_PREPROCESS_H
